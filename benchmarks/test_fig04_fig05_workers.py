"""Figures 4 and 5: worker availability and top-10% engagement."""

import numpy as np

from repro.reporting import format_seconds, render_series


def test_fig04_worker_availability(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig04_workers, rounds=2, iterations=1)
    switch = figures.regime_week
    workers = out["active_workers"][switch:]
    issued = figures.arrivals().instances_issued[switch:]
    active = workers > 0

    # Worker availability varies far less than load (§3.2 takeaway).
    cv_workers = workers[active].std() / workers[active].mean()
    cv_load = issued[active].std() / issued[active].mean()
    assert cv_workers < 0.6 * cv_load

    report(
        "Figure 4 — distinct active workers per week",
        render_series(out["active_workers"], title="active workers per week")
        + f"\ncoeff. of variation: workers {cv_workers:.2f} vs load {cv_load:.2f}"
        " (paper: availability is much steadier than load)",
    )


def test_fig05_engagement_split(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig05_engagement, rounds=1, iterations=1)
    switch = figures.regime_week

    top = out["tasks_top10"][switch:]
    bottom = out["tasks_bottom90"][switch:]

    # The top-10% handles most of the volume and most of the flux.
    assert top.sum() > 2 * bottom.sum()
    active = (top + bottom) > 0
    assert top[active].std() > bottom[active].std()

    # And they spend far more active time per week.
    att = out["active_time_top10"][switch:]
    atb = out["active_time_bottom90"][switch:]
    both = (att > 0) & (atb > 0)
    assert np.median(att[both]) > 1.5 * np.median(atb[both])

    report(
        "Figure 5 — top-10% vs bottom-90% workers (post regime)",
        f"tasks by top-10%: {int(top.sum()):,} vs bottom-90%: {int(bottom.sum()):,}\n"
        f"weekly flux (std): top {top[active].std():,.0f} vs bottom "
        f"{bottom[active].std():,.0f}\n"
        f"median active time per worker-week: top "
        f"{format_seconds(float(np.median(att[both])))} vs bottom "
        f"{format_seconds(float(np.median(atb[both])))}",
    )
