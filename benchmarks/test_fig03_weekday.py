"""Figure 3: distribution of issued instances over days of the week."""

import _paper as paper

from repro.reporting import render_bar_chart


def test_fig03_weekday(figures, benchmark, report):
    out = benchmark(figures.fig03_weekday)
    totals = out["instances"]

    # Shape: weekdays beat the weekend, Monday is the peak, declining week.
    assert out["weekday_weekend_ratio"] > 1.3
    assert totals[0] == max(totals)
    assert totals[0] > totals[4]

    report(
        "Figure 3 — day-of-week load",
        render_bar_chart(dict(zip(out["days"], totals)), sort=False)
        + "\n"
        + paper.ratio_line(
            "weekday/weekend ratio",
            paper.WEEKDAY_OVER_WEEKEND,
            out["weekday_weekend_ratio"],
        ),
    )
