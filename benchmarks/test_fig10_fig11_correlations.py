"""Figures 10 & 11: goal/operator/data co-occurrence breakdowns."""

from repro.reporting import render_table


def _matrix_rows(matrix):
    rows = []
    for row_label in sorted(matrix):
        breakdown = matrix[row_label]
        top = sorted(breakdown.items(), key=lambda kv: kv[1], reverse=True)[:4]
        rows.append(
            {
                "label": row_label,
                "top_correlates": ", ".join(f"{k} {v:.0f}%" for k, v in top),
            }
        )
    return rows


def test_fig10_correlations(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig10_correlations, rounds=2, iterations=1)

    op_goal = out["operator_given_goal"]
    # Transcription is extraction-dominated (the paper's "notable
    # exception"): Ext ranks in the top two operators for T.
    t_ranked = sorted(op_goal["T"], key=op_goal["T"].get, reverse=True)
    assert "Ext" in t_ranked[:2]
    # Filter/rate lead most other goals.  Heavy-hitter instance weighting
    # adds variance at this scale, so ask for a top-2 rank and allow one
    # exception across the five goals.
    misses = 0
    for goal in ("ER", "QA", "SA", "SR", "LU"):
        ranked = sorted(op_goal[goal], key=op_goal[goal].get, reverse=True)
        if not ({"Filt", "Rate"} & set(ranked[:2])):
            misses += 1
    assert misses <= 1
    # LU uses generate a significant fraction of the time (~16%).
    assert op_goal["LU"].get("Gen", 0) > 3
    # HB performs operations at external links (~13%).
    assert op_goal["HB"].get("Exter", 0) > 2

    data_goal = out["data_given_goal"]
    # Web data serves ER (~24%) and SR (~37%).
    assert data_goal["ER"].get("Web", 0) > 6
    assert data_goal["SR"].get("Web", 0) > 12
    # Social media matters for SA (~13%).
    assert data_goal["SA"].get("Social", 0) > 3

    report(
        "Figure 10 — operator|goal and data|goal breakdowns",
        "Operators per goal:\n"
        + render_table(_matrix_rows(op_goal))
        + "\n\nData types per goal:\n"
        + render_table(_matrix_rows(data_goal)),
    )


def test_fig11_correlations(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig11_correlations, rounds=2, iterations=1)

    # Filter and rate operators are applied to most types of data (Fig 11c).
    data_op = out["data_given_operator"]
    assert "Filt" in data_op and len(data_op["Filt"]) >= 4

    goal_op = out["goal_given_operator"]
    # Extraction work is dominated by transcription goals (top-2 rank).
    ext_ranked = sorted(goal_op["Ext"], key=goal_op["Ext"].get, reverse=True)
    assert "T" in ext_ranked[:2]

    report(
        "Figure 11 — goal|data, goal|operator, data|operator breakdowns",
        "Goals per operator:\n"
        + render_table(_matrix_rows(goal_op))
        + "\n\nData per operator:\n"
        + render_table(_matrix_rows(data_op)),
    )
