"""Figure 14 + Tables 1–3: the feature-metric correlation experiments."""

import _paper as paper

from repro.reporting import render_comparison_rows
from repro.stats.cdf import cdf_dominates

#: (feature, metric) -> paper's (median_low, median_high).
_PAPER_MEDIANS = {
    **{(f, "disagreement"): v for f, v in paper.TABLE1_DISAGREEMENT.items()},
    **{(f, "task_time"): v for f, v in paper.TABLE2_TASK_TIME.items()},
    **{(f, "pickup_time"): v for f, v in paper.TABLE3_PICKUP_TIME.items()},
}


def test_fig14_cdf_experiments(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig14_feature_cdfs, rounds=1, iterations=1)

    lines = []
    for entry in out:
        key = (entry["feature"], entry["metric"])
        reference = _PAPER_MEDIANS.get(key)
        if reference is None:
            continue
        paper_low, paper_high = reference
        paper_direction = "high_better" if paper_high < paper_low else "low_better"
        agrees = entry["direction"] == paper_direction
        lines.append(
            f"{entry['feature']:15s} {entry['metric']:13s} "
            f"paper {paper_low:>8.3g}/{paper_high:<8.3g} "
            f"measured {entry['median_low']:>8.3g}/{entry['median_high']:<8.3g} "
            f"direction {'OK' if agrees else 'MISMATCH'} p={entry['p_value']:.2g}"
        )
        # Every direction the paper reports must reproduce.
        assert agrees, f"direction mismatch for {key}"

    report("Figure 14 — feature-metric effects vs paper", "\n".join(lines))


def test_tables_1_2_3(figures, benchmark, report):
    tables = benchmark.pedantic(figures.tables_123, rounds=1, iterations=1)

    body = []
    for metric, title in (
        ("disagreement", "Table 1 — disagreement"),
        ("task_time", "Table 2 — median task time"),
        ("pickup_time", "Table 3 — median pickup time"),
    ):
        rows = tables[metric]
        body.append(f"{title}\n{render_comparison_rows(rows)}")

    # The paper's strongest effects must reach significance at this scale.
    significant = {
        (row["feature"], metric)
        for metric, rows in tables.items()
        for row in rows
    }
    for expected in (
        ("num_words", "disagreement"),
        ("num_items", "disagreement"),
        ("num_text_boxes", "disagreement"),
        ("num_items", "task_time"),
        ("num_text_boxes", "task_time"),
        ("num_images", "task_time"),
        ("num_examples", "pickup_time"),
        ("num_images", "pickup_time"),
    ):
        assert expected in significant, f"{expected} lost significance"

    report("Tables 1–3 — significant design effects", "\n\n".join(body))


def test_fig14_cdf_dominance(figures, benchmark, report):
    """The winning bin's CDF visibly dominates, as in the paper's plots."""
    from repro.analysis import taskdesign as td

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    checks = []
    for feature, metric in (
        ("num_words", "disagreement"),
        ("num_text_boxes", "task_time"),
        ("num_images", "pickup_time"),
    ):
        clusters = td.analysis_clusters(figures.enriched, metric=metric)
        c = td.bin_comparison(clusters, feature, metric)
        if c.direction == "high_better":
            dominated = cdf_dominates(c.cdf_high, c.cdf_low, slack=0.08)
        else:
            dominated = cdf_dominates(c.cdf_low, c.cdf_high, slack=0.08)
        checks.append(f"{feature}/{metric}: winner CDF dominates = {dominated}")
        assert dominated

    report("Figure 14 — CDF dominance checks", "\n".join(checks))
