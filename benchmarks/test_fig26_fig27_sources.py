"""Figures 26 & 27 + Table 4: labor sources, their load and quality."""

import numpy as np

import _paper as paper

from repro.reporting import render_table


def test_fig26_source_loads(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig26_sources, rounds=1, iterations=1)

    tasks_per_worker = out["tasks_per_worker"]
    # Dedicated vs on-demand spread: orders of magnitude (Figure 26a).
    assert tasks_per_worker.max() > 50 * np.median(tasks_per_worker)

    # Active source count is steady while load swings (Figure 26b).
    switch = figures.regime_week
    sources = out["active_sources_per_week"][switch:]
    load = out["instances_issued"][switch:]
    active = sources > 0
    cv_sources = sources[active].std() / sources[active].mean()
    cv_load = load[active].std() / load[active].mean()
    assert cv_sources < 0.5 * cv_load

    report(
        "Figure 26 — source loads",
        f"tasks/worker spread: median {np.median(tasks_per_worker):.0f}, "
        f"max {tasks_per_worker.max():.0f} (paper: some sources >10k, 40% <=20)\n"
        f"active sources/week CV {cv_sources:.2f} vs load CV {cv_load:.2f}",
    )


def test_fig27_source_quality(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig27_source_quality, rounds=1, iterations=1)

    # Top-10 sources dominate (paper: 95% of tasks, 86% of workers).
    assert out["top10_task_share"] > 0.80
    assert out["top10_worker_share"] > 0.70

    trust = out["mean_trust_all"]
    rel_time = out["mean_relative_time_all"]
    # ~10% of sources below 0.8 trust; some slower than 3x; a few 10x+.
    low_trust_fraction = float((trust < 0.8).mean())
    assert 0.02 <= low_trust_fraction <= 0.3
    assert (rel_time >= 3).sum() >= 1

    # amt is poor on both dimensions when sampled.
    rows = {r["source"]: r for r in out["top_by_workers"].to_rows()}
    amt_note = "amt not in top-10 by workers at this seed"
    if "amt" in rows:
        amt = rows["amt"]
        assert amt["mean_trust"] < 0.85
        assert amt["mean_relative_task_time"] > 2.0
        amt_note = (
            f"amt: trust {amt['mean_trust']:.2f} (paper {paper.AMT_TRUST}), "
            f"relative time {amt['mean_relative_task_time']:.1f} "
            f"(paper > {paper.AMT_RELATIVE_TIME_MIN})"
        )

    display = [
        {
            "source": r["source"],
            "workers": r["num_workers"],
            "tasks": r["num_tasks"],
            "trust": round(r["mean_trust"], 3),
            "rel_time": round(r["mean_relative_task_time"], 2),
        }
        for r in out["top_by_workers"].to_rows()
    ]
    report(
        "Figure 27 — top sources and quality",
        render_table(display)
        + "\n"
        + paper.ratio_line(
            "top-10 task share", paper.TOP10_SOURCE_TASK_SHARE, out["top10_task_share"]
        )
        + "\n"
        + paper.ratio_line(
            "top-10 worker share",
            paper.TOP10_SOURCE_WORKER_SHARE,
            out["top10_worker_share"],
        )
        + f"\nsources with mean trust < 0.8: {low_trust_fraction:.0%} (paper ~10%)\n"
        + amt_note,
    )


def test_table4_sources(figures, benchmark, report):
    out = benchmark.pedantic(figures.table4_sources, rounds=2, iterations=1)
    assert out["num_sources"] == paper.NUM_SOURCES
    # Nearly every source appears in the medium-scale sample.
    assert out["num_observed"] > 100

    report(
        "Table 4 — labor sources",
        f"{out['num_sources']} sources defined (paper: 139); "
        f"{out['num_observed']} observed in the released sample.",
    )
