"""Micro-benchmarks of the substrate layers (table engine, minhash, tree).

These are honest performance benches (pytest-benchmark timings), not paper
reproductions — they document the cost structure of the library.

Benches named ``*_naive`` re-run the pre-vectorization algorithm (per-group
Python loops, per-document minhash) on the same inputs as their fast
counterpart.  ``scripts/bench_guard.py`` pairs them up to compute and guard
the fast-vs-naive speedup ratios recorded in ``BENCH_substrate.json``.
"""

import time
import zlib

import numpy as np

from repro import obs
from repro.enrichment.clustering import (
    _permutation_params,
    _shingle_array,
    _shingle_hash,
    _tokens,
    cluster_batches,
    minhash_signature,
    minhash_signatures,
    shingle_arrays,
    shingles,
)
from repro.ml import DecisionTreeClassifier
from repro.tables import DictColumn, Table, col, group_by, hash_join


def _synthetic_table(n: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "key": rng.integers(0, n // 100 + 1, size=n),
            "value": rng.normal(size=n),
            "weight": rng.exponential(size=n),
        },
        copy=False,
    )


def test_perf_group_by_median(benchmark):
    table = _synthetic_table(200_000)

    def run():
        return group_by(table, "key").agg(
            {"med": ("value", "median"), "total": ("weight", "sum")}
        )

    out = benchmark(run)
    assert out.num_rows == len(set(table["key"]))


def test_perf_group_by_median_naive(benchmark):
    """Verbatim seed algorithm: ``np.unique`` factorize + re-factorize +
    int64 stable argsort for grouping, then a per-group ``np.median`` call
    per segment (``sum`` used ``reduceat`` then as now)."""
    table = _synthetic_table(200_000)

    def run():
        _, codes = np.unique(table["key"], return_inverse=True)
        _, group_codes = np.unique(codes, return_inverse=True)
        order = np.argsort(group_codes, kind="stable")
        sorted_codes = group_codes[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )
        ends = np.r_[starts[1:], len(order)]
        ordered_v = table["value"][order]
        med = np.array(
            [np.median(ordered_v[s:e]) for s, e in zip(starts, ends)]
        )
        ordered_w = table["weight"][order]
        tot = np.add.reduceat(ordered_w, starts)
        return med, tot

    med, _ = benchmark(run)
    assert len(med) == len(set(table["key"]))


def test_perf_hash_join(benchmark):
    left = _synthetic_table(50_000, seed=1)
    right = group_by(_synthetic_table(50_000, seed=2), "key").agg(
        {"right_total": ("weight", "sum")}
    )

    def run():
        return hash_join(left, right, on="key")

    out = benchmark(run)
    assert out.num_rows > 0


def test_perf_table_filter(benchmark):
    table = _synthetic_table(500_000)

    def run():
        return table.filter(table["value"] > 0.5)

    out = benchmark(run)
    assert 0 < out.num_rows < table.num_rows


_DICT_KEY_CARDINALITY = 40


def _string_key_table(n: int, seed: int = 3) -> tuple[Table, Table]:
    """The same table with a dictionary-encoded and a plain-object string
    key column (long descriptive keys like the §3.1 traffic sources,
    group-by shaped like the per-source rollups)."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, _DICT_KEY_CARDINALITY, size=n).astype(np.int32)
    uniques = np.array(
        [
            f"traffic-source/{i:03d}/landing-page-campaign-{i * 7919:08x}"
            for i in range(_DICT_KEY_CARDINALITY)
        ],
        dtype=object,
    )
    value = rng.normal(size=n)
    encoded = Table(
        {"key": DictColumn(codes, uniques), "value": value}, copy=False
    )
    plain = Table(
        {"key": uniques[codes], "value": value}, copy=False
    )
    return encoded, plain


def test_perf_dict_group_by(benchmark):
    """Group-by on a dictionary-encoded string key: the kernel densifies
    int32 codes and never hashes a row's string."""
    encoded, plain = _string_key_table(400_000)

    def run():
        return group_by(encoded, "key").agg(
            {"n": ("value", "count"), "mean": ("value", "mean")}
        )

    out = benchmark(run)
    assert out.num_rows == _DICT_KEY_CARDINALITY
    ref = group_by(plain, "key").agg(
        {"n": ("value", "count"), "mean": ("value", "mean")}
    )
    assert list(out["key"]) == list(ref["key"])


def test_perf_dict_group_by_naive(benchmark):
    """Seed path: the same group-by over a plain ``object`` key column,
    which factorizes by hashing every row's string."""
    _encoded, plain = _string_key_table(400_000)

    def run():
        return group_by(plain, "key").agg(
            {"n": ("value", "count"), "mean": ("value", "mean")}
        )

    out = benchmark(run)
    assert out.num_rows == _DICT_KEY_CARDINALITY


def _filter_chain_table(n: int = 500_000) -> Table:
    rng = np.random.default_rng(5)
    return Table(
        {
            "key": rng.integers(0, n // 100 + 1, size=n),
            "value": rng.normal(size=n),
            "weight": rng.exponential(size=n),
            "label": np.array(
                [f"l{int(v)}" for v in rng.integers(0, 30, size=n)],
                dtype=object,
            ),
        },
        copy=False,
    )


def test_perf_fused_filter_project(benchmark):
    """Three chained filters + projection as one lazy fused kernel: one
    full-length mask, later predicates on compressed columns, one gather."""
    table = _filter_chain_table()

    def run():
        return (
            table.lazy()
            .filter(col("value") > -1.0)
            .filter(col("weight") < 2.0)
            .filter(col("value") < 1.0)
            .select(["key", "value"])
            .collect()
        )

    out = benchmark(run)
    assert 0 < out.num_rows < table.num_rows
    assert out.column_names == ["key", "value"]


def test_perf_fused_filter_project_naive(benchmark):
    """Seed path: each filter materializes a full intermediate table (every
    column gathered per step) before the final projection."""
    table = _filter_chain_table()

    def run():
        step1 = table.filter(table["value"] > -1.0)
        step2 = step1.filter(step1["weight"] < 2.0)
        step3 = step2.filter(step2["value"] < 1.0)
        return step3.select(["key", "value"])

    out = benchmark(run)
    assert 0 < out.num_rows < table.num_rows


def test_perf_minhash_signature(benchmark):
    tokens = " ".join(f"tok{i % 997}" for i in range(3_000))
    shingle_set = shingles(f"<div>{tokens}</div>")

    def run():
        return minhash_signature(shingle_set)

    signature = benchmark(run)
    assert len(signature) == 64


def _bench_corpus(num_docs: int = 300, tokens_per_doc: int = 400) -> dict[int, str]:
    """Synthetic HTML corpus shaped like real batch pages: many documents of
    a few hundred tokens with heavy cross-document vocabulary overlap."""
    rng = np.random.default_rng(9)
    docs = {}
    for d in range(num_docs):
        base = rng.integers(0, 400)
        words = " ".join(
            f"tok{int(base) + (i % 311)}" for i in range(tokens_per_doc)
        )
        docs[d] = f"<div class='doc-{d % 7}'>{words}</div>"
    return docs


def test_perf_minhash_batch(benchmark):
    """One batched ``minimum.reduceat`` pass over every document's shingle
    array — the signature stage of the vectorized clustering pipeline."""
    corpus = _bench_corpus()
    arrays = [_shingle_array(doc) for doc in corpus.values()]

    def run():
        return minhash_signatures(arrays)

    signatures = benchmark(run)
    assert signatures.shape == (len(corpus), 64)


def test_perf_minhash_batch_naive(benchmark):
    """Verbatim seed algorithm: shingle *sets* of Python ints converted per
    document, hashed per document with a 64-bit ``%`` reduction."""
    corpus = _bench_corpus()
    shingle_sets = [
        set(map(int, _shingle_array(doc))) for doc in corpus.values()
    ]
    mersenne = np.uint64((1 << 61) - 1)

    def seed_signature(shingle_set, num_perm=64, seed=1234):
        values = np.fromiter(
            ((s & 0xFFFFFFFFFFFFFFFF) for s in shingle_set), dtype=np.uint64
        )
        a, b = _permutation_params(num_perm, seed)
        with np.errstate(over="ignore"):
            hashed = (values[None, :] * a[:, None] + b[:, None]) % mersenne
        return hashed.min(axis=1)

    def run():
        return [seed_signature(s) for s in shingle_sets]

    signatures = benchmark(run)
    assert len(signatures) == len(corpus)
    assert np.array_equal(
        signatures[0],
        minhash_signatures([_shingle_array(next(iter(corpus.values())))])[0],
    )


def test_perf_shingle_extraction(benchmark):
    """Batched shingling of the bench corpus: one byte-level tokenize +
    CRC32 pass over the whole chunk, flat polynomial windows, grouped
    row-wise dedup (the ``shingle_corpus`` chunk kernel)."""
    corpus = _bench_corpus()
    docs = list(corpus.values())

    def run():
        return shingle_arrays(docs)

    arrays = benchmark(run)
    assert len(arrays) == len(corpus)
    assert all(
        np.array_equal(a, _shingle_array(d)) for a, d in zip(arrays[:3], docs[:3])
    )


def test_perf_shingle_extraction_naive(benchmark):
    """Pre-vectorization reference: per-token ``zlib.crc32`` and a pure
    Python polynomial hash per shingle window."""
    corpus = _bench_corpus()

    def naive_shingles(html, k=4):
        token_hashes = [zlib.crc32(t.encode()) for t in _tokens(html)]
        if len(token_hashes) < k:
            return {_shingle_hash(token_hashes)}
        return {
            _shingle_hash(token_hashes[i:i + k])
            for i in range(len(token_hashes) - k + 1)
        }

    def run():
        return [naive_shingles(doc) for doc in corpus.values()]

    sets = benchmark(run)
    assert len(sets) == len(corpus)


def test_perf_cluster_batches(benchmark):
    """End-to-end clustering of a synthetic near-duplicate corpus."""
    corpus = _bench_corpus(num_docs=120, tokens_per_doc=800)

    def run():
        return cluster_batches(corpus)

    mapping = benchmark(run)
    assert len(mapping) == len(corpus)
    assert max(mapping.values()) < len(corpus)


def test_perf_cluster_batches_traced(benchmark):
    """End-to-end clustering with span tracing *enabled* — the tracing-on
    cost, read against ``cluster_batches`` in ``BENCH_substrate.json``."""
    corpus = _bench_corpus(num_docs=120, tokens_per_doc=800)
    obs.enable(name="bench")
    try:
        mapping = benchmark(lambda: cluster_batches(corpus))
    finally:
        obs.finish()
    assert len(mapping) == len(corpus)


def test_perf_shard_merge_groupby(benchmark):
    """Streaming mergeable group-by over 8 partitions of the synthetic
    table — the out-of-core merge kernel (:mod:`repro.shard.merge`)."""
    from repro.shard.merge import merge_group_by

    table = _synthetic_table(200_000)
    parts = [
        table.take(np.arange(i, table.num_rows, 8)) for i in range(8)
    ]
    spec = {"med": ("value", "median"), "total": ("weight", "sum")}

    def run():
        return merge_group_by(parts, "key", spec)

    out = benchmark(run)
    assert out.num_rows == len(set(table["key"]))


def test_perf_cluster_two_level(benchmark):
    """Two-level (per-shard, then representatives) clustering of the bench
    corpus over 4 shards — the scalable alternative the sharded pipeline
    offers next to the exact pooled pass (:mod:`repro.shard.cluster`)."""
    from repro.shard.cluster import cluster_batches_two_level

    corpus = _bench_corpus(num_docs=120, tokens_per_doc=800)

    def run():
        return cluster_batches_two_level(corpus, num_shards=4)

    mapping = benchmark(run)
    assert len(mapping) == len(corpus)
    assert max(mapping.values()) < len(corpus)


#: Skewed-shard scheduling workload: one straggler shard carrying 8x the
#: mean work plus 15 unit shards, two workers.  Sleep-based so the bench
#: measures *scheduler wall time* (sleeps overlap across pool workers even
#: on a single-CPU box) rather than CPU throughput, and is deterministic.
_SKEW_UNIT_S = 0.012
_SKEW_SIZES = (16,) + (1,) * 15
_SKEW_WORKERS = 2


def _skew_sleep(units: int) -> int:
    time.sleep(units * _SKEW_UNIT_S)
    return int(units)


def _skew_sleep_group(group: tuple) -> list:
    return [_skew_sleep(units) for units in group]


def test_perf_shard_sched_skewed(benchmark):
    """Work-stealing schedule of the skewed shard set: chunks flow through
    the as-completed dispatcher (:mod:`repro.parallel`), so the straggler
    pins one worker while the other drains every small shard — wall time
    approaches max(straggler, rest) = 16 units instead of 23."""
    from repro.parallel import map_chunks

    items = list(_SKEW_SIZES)

    def run():
        return map_chunks(
            _skew_sleep, items,
            workers=_SKEW_WORKERS, chunk_size=1, min_items=2,
        )

    out = benchmark(run)
    assert out == items


def test_perf_shard_sched_skewed_naive(benchmark):
    """Static placement of the same skewed shard set: shards pinned
    round-robin to a worker up front (shard ``i`` -> worker ``i % 2``, the
    ``batch_id % K`` discipline), so the shards stuck behind the straggler
    wait on it even while the other worker sits idle — wall time is the
    heaviest pinned group, 16 + 7 = 23 units."""
    from repro.parallel import map_chunks

    groups = [
        _SKEW_SIZES[w::_SKEW_WORKERS] for w in range(_SKEW_WORKERS)
    ]

    def run():
        return map_chunks(
            _skew_sleep_group, groups,
            workers=_SKEW_WORKERS, chunk_size=1, min_items=2,
        )

    out = benchmark(run)
    assert sorted(u for g in out for u in g) == sorted(_SKEW_SIZES)


def _best_time(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _disabled_primitive_costs(loops: int = 100_000) -> tuple[float, float]:
    """Per-call cost of a disabled ``obs.span`` and an ``obs.counter`` inc.

    Measured directly rather than by differencing two noisy kernel timings:
    the instrumented kernels perform a *fixed, small* number of these
    operations per call, so per-primitive cost × operation count bounds the
    real overhead far more stably than an A/B timing comparison.
    """
    assert not obs.enabled()

    def spans():
        for _ in range(loops):
            with obs.span("overhead.probe"):
                pass

    probe = obs.counter("overhead.probe")

    def incs():
        for _ in range(loops):
            probe.inc()

    return _best_time(spans) / loops, _best_time(incs) / loops


def test_tracing_disabled_overhead_under_3_percent():
    """Acceptance: with tracing disabled, the instrumentation left inside
    ``group_by`` and ``minhash_signatures`` costs <3% of either kernel.

    Per call, ``group_by(...).agg(...)`` executes at most a handful of
    counter increments (``groupby.calls`` plus the fast-path/sort-strategy
    counters) and zero spans; ``minhash_signatures`` one increment.  Both
    bounds are asserted with a generous operation-count margin.
    """
    span_cost, inc_cost = _disabled_primitive_costs()

    table = _synthetic_table(200_000)
    group_by_time = _best_time(
        lambda: group_by(table, "key").agg(
            {"med": ("value", "median"), "total": ("weight", "sum")}
        )
    )
    # ≤8 counter incs + room for 2 disabled spans per group_by call.
    group_by_overhead = 8 * inc_cost + 2 * span_cost
    assert group_by_overhead < 0.03 * group_by_time, (
        f"group_by instrumentation {group_by_overhead * 1e6:.2f} us is not "
        f"<3% of the {group_by_time * 1e3:.2f} ms kernel"
    )

    corpus = _bench_corpus()
    arrays = [_shingle_array(doc) for doc in corpus.values()]
    minhash_time = _best_time(lambda: minhash_signatures(arrays))
    # 1 counter inc inside minhash_signatures + room for 2 enclosing spans.
    minhash_overhead = inc_cost + 2 * span_cost
    assert minhash_overhead < 0.03 * minhash_time, (
        f"minhash instrumentation {minhash_overhead * 1e6:.2f} us is not "
        f"<3% of the {minhash_time * 1e3:.2f} ms kernel"
    )


def test_sampler_enabled_overhead_under_3_percent():
    """Acceptance: at the default 50 ms interval, continuous resource
    sampling costs <3% of wall time on any kernel.

    Measured as per-tick cost against the sampling period rather than an
    A/B kernel timing: the daemon thread performs exactly one
    ``sample_once`` per interval regardless of workload, so tick cost /
    interval bounds the steady-state overhead deterministically.
    """
    from repro.obs.sampler import DEFAULT_INTERVAL_MS, ResourceSampler

    sampler = ResourceSampler(interval_ms=DEFAULT_INTERVAL_MS)
    sampler.sample_once()  # warm the /proc readers and the cache-dir import
    tick_cost = _best_time(sampler.sample_once, repeats=20)
    interval_s = DEFAULT_INTERVAL_MS / 1000.0
    assert tick_cost < 0.03 * interval_s, (
        f"one resource sample costs {tick_cost * 1e6:.0f} us, not <3% of "
        f"the {DEFAULT_INTERVAL_MS:.0f} ms sampling period"
    )


def test_perf_serve_metrics(benchmark):
    """Scrape latency of the live ``/metrics`` endpoint: full round trip
    (socket connect, handler dispatch, registry snapshot, Prometheus
    rendering) against a server in this process."""
    import urllib.request

    from repro.obs.live import TelemetryServer

    server = TelemetryServer(port=0).start()
    try:
        url = f"{server.url}/metrics"

        def run():
            with urllib.request.urlopen(url, timeout=5) as resp:
                return resp.read()

        body = benchmark(run)
        assert b"repro_serve_requests_total" in body
    finally:
        server.stop()


#: Fastest steady client the dashboard ships: the live panel re-fetches
#: ``/metrics`` every 2 s, but the overhead bound is asserted against a far
#: more aggressive 250 ms poller so third-party scrapers have headroom.
_SERVE_POLL_PERIOD_S = 0.25
#: Absolute throughput floor on ``/metrics`` scrapes.
_SERVE_METRICS_MIN_RPS = 100.0


def test_serve_overhead_under_3_percent():
    """Acceptance: a client polling ``/metrics`` every 250 ms steals <3% of
    the observed build's wall time, and scrape throughput stays above the
    req/s floor.

    Measured as per-request cost against the polling period rather than an
    A/B build timing: the handler thread does one registry snapshot + one
    render per scrape regardless of workload, so request cost / polling
    period bounds the steady-state overhead deterministically (the same
    argument the sampler bound uses).  The timed round trip includes the
    client side, so the server-side cost the build actually pays is
    strictly smaller.
    """
    import urllib.request

    from repro.obs.live import TelemetryServer

    server = TelemetryServer(port=0).start()
    try:
        url = f"{server.url}/metrics"

        def scrape():
            with urllib.request.urlopen(url, timeout=5) as resp:
                resp.read()

        scrape()  # warm the socket path and the exposition renderer
        cost = _best_time(scrape, repeats=20)
    finally:
        server.stop()
    assert cost < 0.03 * _SERVE_POLL_PERIOD_S, (
        f"one /metrics scrape costs {cost * 1e3:.2f} ms, not <3% of the "
        f"{_SERVE_POLL_PERIOD_S * 1e3:.0f} ms polling period"
    )
    assert 1.0 / cost > _SERVE_METRICS_MIN_RPS, (
        f"/metrics sustains only {1.0 / cost:.0f} req/s, below the "
        f"{_SERVE_METRICS_MIN_RPS:.0f} req/s floor"
    )


def test_perf_decision_tree_fit(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(size=(4_000, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)

    def run():
        return DecisionTreeClassifier(max_depth=8).fit(X, y)

    model = benchmark(run)
    assert (model.predict(X[:100]) == y[:100]).mean() > 0.8


# --------------------------------------------------------------------- #
# Incremental ingest service (repro.service)
# --------------------------------------------------------------------- #

_SERVICE_ROWS = 20_000
_SERVICE_BATCHES = 200


def _service_config():
    from repro.simulator.config import SimulationConfig

    return SimulationConfig.preset("tiny", seed=7)


def _service_payload(config, n_rows: int = _SERVICE_ROWS, id_base: int = 0,
                     seed: int = 0) -> dict:
    """A synthetic wire micro-batch with the released instance schema."""
    from repro import cache as study_cache
    from repro.service.codec import WIRE_SCHEMA_VERSION, encode_table

    rng = np.random.default_rng(seed)
    sources = np.array(["own", "chan-a", "chan-b"], dtype=object)
    countries = np.array(["US", "IN", "GB", "PH"], dtype=object)
    start = rng.integers(0, 10**6, size=n_rows)
    table = Table({
        "instance_id": np.arange(id_base, id_base + n_rows, dtype=np.int64),
        "batch_id": rng.integers(0, _SERVICE_BATCHES, size=n_rows),
        "item_id": rng.integers(0, 1_000, size=n_rows),
        "worker_id": rng.integers(0, 50, size=n_rows),
        "source": sources[rng.integers(0, len(sources), size=n_rows)],
        "country": countries[rng.integers(0, len(countries), size=n_rows)],
        "start_time": start,
        "end_time": start + rng.integers(1, 3_600, size=n_rows),
        "trust": rng.random(size=n_rows),
        "response": np.array(
            [f"resp-{i}" for i in range(n_rows)], dtype=object
        ),
    }, copy=False)
    return {
        "schema": WIRE_SCHEMA_VERSION,
        "config_key": study_cache.study_key(config),
        "instances": encode_table(table),
    }


def test_perf_service_ingest(benchmark):
    """Full ingest path — decode, schema check, duplicate screening, and
    all four standing folds (table, rollup, CDF part, histogram) — for a
    20k-row micro-batch into a fresh standing state."""
    from repro.service.state import ServiceState

    config = _service_config()
    payload = _service_payload(config)

    def run():
        state = ServiceState(config)
        return state.ingest(payload)

    out = benchmark(run)
    assert out["accepted"]["instance_rows"] == _SERVICE_ROWS


def _service_server(tmp_path_factory=None):
    from repro.obs.live import TelemetryServer
    from repro.service import ServiceApp
    from repro.service.state import ServiceState

    config = _service_config()
    app = ServiceApp(config)
    app.state.ingest(_service_payload(config))
    server = TelemetryServer(port=0, app=app).start()
    return app, server


def test_perf_service_read_cached(benchmark):
    """Cached-read round trip: socket connect, dispatch, dependency-key
    lookup, ETag header, cached body write — the steady-state read the
    load harness sustains at >=1k req/s."""
    import urllib.request

    app, server = _service_server()
    try:
        url = f"{server.url}/tables/batch_rollup"
        with urllib.request.urlopen(url, timeout=5) as resp:
            warm = resp.read()  # render once; every timed read is a hit

        def run():
            with urllib.request.urlopen(url, timeout=5) as resp:
                return resp.read()

        body = benchmark(run)
        assert body == warm and body.startswith(b'{"num_rows"')
    finally:
        server.stop()


def test_perf_service_read_cached_naive(benchmark):
    """Seed replica of the read path with no response cache: every request
    re-finalizes the standing rollup and re-renders the body (the cache is
    dropped before each round trip)."""
    import urllib.request

    app, server = _service_server()
    try:
        url = f"{server.url}/tables/batch_rollup"
        with urllib.request.urlopen(url, timeout=5) as resp:
            warm = resp.read()

        def run():
            app.cache.clear()
            with urllib.request.urlopen(url, timeout=5) as resp:
                return resp.read()

        body = benchmark(run)
        assert body == warm
    finally:
        server.stop()
