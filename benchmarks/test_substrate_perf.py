"""Micro-benchmarks of the substrate layers (table engine, minhash, tree).

These are honest performance benches (pytest-benchmark timings), not paper
reproductions — they document the cost structure of the library.
"""

import numpy as np

from repro.enrichment.clustering import minhash_signature, shingles
from repro.ml import DecisionTreeClassifier
from repro.tables import Table, group_by, hash_join


def _synthetic_table(n: int, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {
            "key": rng.integers(0, n // 100 + 1, size=n),
            "value": rng.normal(size=n),
            "weight": rng.exponential(size=n),
        },
        copy=False,
    )


def test_perf_group_by_median(benchmark):
    table = _synthetic_table(200_000)

    def run():
        return group_by(table, "key").agg(
            {"med": ("value", "median"), "total": ("weight", "sum")}
        )

    out = benchmark(run)
    assert out.num_rows == len(set(table["key"]))


def test_perf_hash_join(benchmark):
    left = _synthetic_table(50_000, seed=1)
    right = group_by(_synthetic_table(50_000, seed=2), "key").agg(
        {"right_total": ("weight", "sum")}
    )

    def run():
        return hash_join(left, right, on="key")

    out = benchmark(run)
    assert out.num_rows > 0


def test_perf_table_filter(benchmark):
    table = _synthetic_table(500_000)

    def run():
        return table.filter(table["value"] > 0.5)

    out = benchmark(run)
    assert 0 < out.num_rows < table.num_rows


def test_perf_minhash_signature(benchmark):
    tokens = " ".join(f"tok{i % 997}" for i in range(3_000))
    shingle_set = shingles(f"<div>{tokens}</div>")

    def run():
        return minhash_signature(shingle_set)

    signature = benchmark(run)
    assert len(signature) == 64


def test_perf_decision_tree_fit(benchmark):
    rng = np.random.default_rng(3)
    X = rng.normal(size=(4_000, 4))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)

    def run():
        return DecisionTreeClassifier(max_depth=8).fit(X, y)

    model = benchmark(run)
    assert (model.predict(X[:100]) == y[:100]).mean() > 0.8
