"""Figures 28–30: geography, workloads, lifetimes and engagement."""

import numpy as np

import _paper as paper

from repro.reporting import render_bar_chart


def test_fig28_geography(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig28_geography, rounds=1, iterations=1)

    assert out["num_countries"] > 60  # paper: 148 (at 6x our worker count)
    assert 0.35 <= out["top5_share"] <= 0.70  # paper: ~0.50
    top_names = [r["country"] for r in out["top5"]]
    assert top_names[0] == "United States"
    assert set(top_names) & set(paper.TOP5_COUNTRIES)

    top12 = {
        r["country"]: r["num_workers"]
        for r in out["countries"].head(12).to_rows()
    }
    report(
        "Figure 28 — worker geography",
        render_bar_chart(top12)
        + "\n"
        + paper.ratio_line("top-5 country share", paper.TOP5_COUNTRY_SHARE,
                           out["top5_share"])
        + f"\ncountries observed: {out['num_countries']} (paper: 148)",
    )


def test_fig29_workload(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig29_workload, rounds=1, iterations=1)

    assert out["top10_task_share"] > paper.TOP10_WORKER_TASK_SHARE
    assert out["fraction_under_1h_per_day"] > 0.75  # paper: > 0.90

    curve = out["rank_curve"]
    # Rank curve spans orders of magnitude (Figure 29a, log-log).
    assert curve[0] > 100 * np.median(curve)

    report(
        "Figure 29 — workload distribution",
        paper.ratio_line(
            "top-10% worker task share",
            paper.TOP10_WORKER_TASK_SHARE,
            out["top10_task_share"],
        )
        + "\n"
        + paper.ratio_line(
            "workers under 1h per working day",
            paper.UNDER_ONE_HOUR_FRACTION,
            out["fraction_under_1h_per_day"],
        )
        + f"\nbusiest worker: {int(curve[0]):,} tasks; median worker: "
        f"{int(np.median(curve))} tasks",
    )


def test_fig30_lifetimes(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig30_lifetimes, rounds=1, iterations=1)

    assert 0.40 <= out["one_day_worker_fraction"] <= 0.70  # paper: 0.527
    assert out["one_day_task_share"] < 0.06  # paper: 0.024
    assert out["active_task_share"] > paper.ACTIVE_TASK_SHARE
    assert out["mean_trust_active"] > paper.ACTIVE_TRUST_MIN

    report(
        "Figure 30 — worker lifetimes and engagement",
        "\n".join(
            [
                paper.ratio_line(
                    "one-day worker fraction",
                    paper.ONE_DAY_WORKER_FRACTION,
                    out["one_day_worker_fraction"],
                ),
                paper.ratio_line(
                    "one-day workers' task share",
                    paper.ONE_DAY_TASK_SHARE,
                    out["one_day_task_share"],
                ),
                paper.ratio_line(
                    "active (>10 working days) task share",
                    paper.ACTIVE_TASK_SHARE,
                    out["active_task_share"],
                ),
                paper.ratio_line(
                    "mean trust of active workers", 0.91, out["mean_trust_active"]
                ),
            ]
        ),
    )
