"""Figure 25: feature-metric drill-downs within label categories."""

from repro.reporting import render_table


def test_fig25_drilldowns(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig25_drilldowns, rounds=1, iterations=1)

    rows = []
    ok = 0
    for entry in out:
        row = {
            "feature": entry["feature"],
            "metric": entry["metric"],
            "label": f"{entry['category']}={entry['label']}",
            "status": entry["status"],
        }
        if entry["status"] == "ok":
            ok += 1
            row["medians"] = f"{entry['median_low']:.3g} / {entry['median_high']:.3g}"
            row["p"] = f"{entry['p_value']:.2g}"
        rows.append(row)

    # At medium scale nearly all drill-downs have enough labeled clusters.
    assert ok >= 6

    # The paper's headline drill-down: for gather tasks, more items cut
    # disagreement sharply (Figure 25e).
    gather_items = next(
        e for e in out
        if e["feature"] == "num_items" and e["label"] == "Gat"
        and e["metric"] == "disagreement"
    )
    if gather_items["status"] == "ok":
        assert gather_items["median_high"] < gather_items["median_low"]

    # Images accelerate pickup within the extract-operator subset (Fig 25g).
    extract_images = next(
        e for e in out
        if e["feature"] == "num_images" and e["label"] == "Ext"
    )
    if extract_images["status"] == "ok":
        assert extract_images["median_high"] < extract_images["median_low"]

    report("Figure 25 — label drill-downs", render_table(rows))
