"""The paper's published numbers, used as reference points in every bench.

Sources: the figure captions, running text, and Tables 1–3 of
arXiv:1701.06207.  Benchmarks compare *shapes and ratios* against these —
the simulation runs at roughly 1/12 of the real dataset's volume, so
absolute counts are not expected to match.
"""

# §3.1 — daily load variation (post Jan 2015).
LOAD_MEDIAN_DAILY = 30_000
LOAD_BUSIEST_OVER_MEDIAN = 30.0
LOAD_LIGHTEST_OVER_MEDIAN = 0.0004
WEEKDAY_OVER_WEEKEND = 2.0  # "up to 2x"

# §3.3 — cluster structure.
MEDIAN_TASKS_PER_CLUSTER = 400

# §4.1 — latency decomposition: pickup dominates by orders of magnitude.
PICKUP_DOMINANCE_MIN = 10.0

# Tables 1–3: (feature, metric) -> (median_low_bin, median_high_bin).
TABLE1_DISAGREEMENT = {
    "num_words": (0.147, 0.108),
    "num_items": (0.169, 0.086),
    "num_text_boxes": (0.102, 0.160),
    "num_examples": (0.128, 0.101),
}
TABLE2_TASK_TIME = {
    "num_items": (230.0, 136.0),
    "num_text_boxes": (119.0, 285.7),
    "num_images": (183.6, 129.0),
}
TABLE3_PICKUP_TIME = {
    "num_items": (4521.0, 8132.0),
    "num_examples": (6303.0, 1353.0),
    "num_images": (7838.0, 2431.0),
}

# §4.9 — prediction accuracies.
PREDICTION_RANGE_EXACT = {
    "disagreement": 0.39,
    "task_time": 0.95,
    "pickup_time": 0.98,
}
PREDICTION_RANGE_WITHIN_ONE_DISAGREEMENT = 0.62
PREDICTION_PERCENTILE_EXACT = {
    "disagreement": 0.20,
    "task_time": 0.16,
    "pickup_time": 0.15,
}
PREDICTION_PERCENTILE_WITHIN_ONE = {
    "disagreement": 0.44,
    "task_time": 0.40,
    "pickup_time": 0.39,
}

# §5.1 — sources.
NUM_SOURCES = 139
TOP10_SOURCE_TASK_SHARE = 0.95
TOP10_SOURCE_WORKER_SHARE = 0.86
AMT_TRUST = 0.75
AMT_RELATIVE_TIME_MIN = 5.0
INTERNAL_TASK_SHARE = 0.02

# §5.1 — geography.
NUM_COUNTRIES = 148
TOP5_COUNTRY_SHARE = 0.50
TOP5_COUNTRIES = ["United States", "Venezuela", "Great Britain", "India", "Canada"]

# §5.2–5.4 — workers.
TOP10_WORKER_TASK_SHARE = 0.80
ONE_DAY_WORKER_FRACTION = 0.527
ONE_DAY_TASK_SHARE = 0.024
ACTIVE_TASK_SHARE = 0.83  # workers with > 10 working days
UNDER_ONE_HOUR_FRACTION = 0.90
ACTIVE_TRUST_MIN = 0.84


def ratio_line(name: str, paper: float, measured: float) -> str:
    """One comparison line: paper value, measured value, measured/paper."""
    ratio = measured / paper if paper else float("nan")
    return f"{name:42s} paper {paper:>10.4g}   measured {measured:>10.4g}   x{ratio:.2f}"
