"""Benchmark fixtures: one medium-scale study shared across all benches.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper at the ``medium`` scale (≈2.3M released instances) and writes a
paper-vs-measured report to ``bench_report.txt`` in the repository root.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import build_study

REPORT_PATH = Path(__file__).resolve().parent.parent / "bench_report.txt"

#: The scale and seed every figure/table is regenerated at.
BENCH_SCALE = "medium"
BENCH_SEED = 7


@pytest.fixture(scope="session")
def study():
    return build_study(BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def figures(study):
    return study.figures


@pytest.fixture(scope="session", autouse=True)
def _reset_report():
    REPORT_PATH.write_text(
        f"Paper-vs-measured report (scale={BENCH_SCALE}, seed={BENCH_SEED})\n"
        f"{'=' * 66}\n"
    )
    yield


@pytest.fixture()
def report():
    """Append a titled block to the report file (and echo to stdout)."""

    def _write(title: str, body: str) -> None:
        block = f"\n## {title}\n{body}\n"
        with REPORT_PATH.open("a") as handle:
            handle.write(block)
        print(block)

    return _write
