"""Cross-seed stability: the reproduction is not a single-seed accident.

Runs the full pipeline at the ``small`` scale for three fresh seeds and
requires the validation checklist (headline claims + effect directions) to
pass for each.  This is the guard against calibration overfit to the
benchmark seed.
"""

from repro import build_study
from repro.reporting import render_table
from repro.validation import validate_study

SEEDS = (101, 202, 303)


def test_cross_seed_stability(benchmark, report):
    def run():
        results = {}
        for seed in SEEDS:
            study = build_study("small", seed=seed)
            results[seed] = validate_study(study)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for seed, outcome in results.items():
        effects = [c for c in outcome.checks if c.name.startswith("effect")]
        headline = [c for c in outcome.checks if not c.name.startswith("effect")]
        rows.append(
            {
                "seed": seed,
                "headline": f"{sum(c.ok for c in headline)}/{len(headline)}",
                "effects": f"{sum(c.ok for c in effects)}/{len(effects)}",
                "verdict": "PASS" if outcome.ok else "FAIL",
            }
        )
        # Headline claims must hold at every seed.
        failing = [c.render() for c in headline if not c.ok]
        assert not failing, (seed, failing)
        # At most one of nine effect-direction checks may miss per seed
        # (small-scale medians wobble; the medium benchmark pins all nine).
        assert sum(not c.ok for c in effects) <= 1, (seed,
            [c.render() for c in effects if not c.ok])

    report("Cross-seed stability (small scale)", render_table(rows))
