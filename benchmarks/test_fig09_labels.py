"""Figure 9: label distributions over goals, data types, operators."""

import _paper as paper

from repro.reporting import render_bar_chart


def test_fig09_label_distributions(figures, benchmark, report):
    out = benchmark.pedantic(
        figures.fig09_label_distributions, rounds=2, iterations=1
    )
    goals = out["goals"]
    data = out["data_types"]
    operators = out["operators"]

    total_goal = sum(goals.values())
    # Complex understanding goals are very common: LU ~17%, T ~13% (Fig 9a).
    # LU leads or nearly leads (heavy-hitter weighting adds variance).
    assert goals.get("LU", 0) / total_goal > 0.10
    assert goals.get("T", 0) / total_goal > 0.07
    assert goals["LU"] >= 0.85 * max(goals.values())

    total_data = sum(data.values())
    # Text ~40% and image ~26% dominate (Fig 9b); Text leads or nearly
    # leads under heavy-hitter variance.
    assert data.get("Text", 0) >= 0.8 * max(data.values())
    assert data.get("Text", 0) / total_data > 0.22
    assert data.get("Image", 0) / total_data > 0.12

    total_ops = sum(operators.values())
    # Filter ~33% and rate ~13% dominate (Fig 9c).  Instance weighting under
    # a handful of heavy-hitter clusters adds variance, so allow Filter to
    # trail the leader slightly.
    assert operators.get("Filt", 0) >= 0.8 * max(operators.values())
    assert operators.get("Filt", 0) / total_ops > 0.18

    report(
        "Figure 9 — instance-weighted label distributions",
        "Goals:\n" + render_bar_chart(goals)
        + "\n\nData types:\n" + render_bar_chart(data)
        + "\n\nOperators:\n" + render_bar_chart(operators)
        + "\n\npaper: LU 17% / T 13% of goals; Text 40% / Image 26% of data;"
        " Filt 33% / Rate 13% of operators",
    )
