"""Figure 12: cumulative simple-vs-complex cluster trends."""

from repro.reporting import render_table


def test_fig12_simple_complex_trends(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig12_trends, rounds=2, iterations=1)

    goals = out["goals"]
    operators = out["operators"]
    data = out["data_types"]

    # Complex goals far outnumber simple goals (paper: 620 vs 80 by Jan'16).
    assert goals["complex"][-1] > 2 * goals["simple"][-1]
    # Non-text data outnumbers text (paper: 510 vs 240).
    assert data["complex"][-1] > data["simple"][-1]
    # Operators are comparable (paper: 410 complex vs 340 simple).
    ratio = operators["complex"][-1] / max(operators["simple"][-1], 1)
    assert 0.5 <= ratio <= 2.5

    rows = [
        {
            "category": name,
            "simple_final": int(series["simple"][-1]),
            "complex_final": int(series["complex"][-1]),
            "paper": reference,
        }
        for name, series, reference in (
            ("goals", goals, "80 vs 620"),
            ("operators", operators, "340 vs 410"),
            ("data_types", data, "240 vs 510"),
        )
    ]
    report("Figure 12 — cumulative simple vs complex clusters", render_table(rows))
