"""Figures 6–8: cluster sizes, tasks per cluster, heavy hitters."""

import numpy as np

import _paper as paper

from repro.reporting import format_count, render_table


def test_fig06_cluster_sizes(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig06_cluster_sizes, rounds=2, iterations=1)
    sizes = out["cluster_sizes"]

    # Power-law shape: most tasks are one-off, a few span 100+ batches.
    assert np.median(sizes) <= 10
    assert out["clusters_over_100_batches"] >= 1

    report(
        "Figure 6 — batches per cluster (log-binned)",
        render_table(
            [{"bin_lower_edge": e, "clusters": c} for e, c in out["histogram"]]
        )
        + f"\nclusters with >100 batches: {out['clusters_over_100_batches']} "
        "(paper: >10 at ~6x our task count)",
    )


def test_fig07_tasks_per_cluster(figures, benchmark, report):
    out = benchmark.pedantic(
        figures.fig07_tasks_per_cluster, rounds=2, iterations=1
    )
    counts = out["instances_per_cluster"]

    # Wide variation: small one-off clusters coexist with bulky ones
    # (paper: 204 clusters < 10 tasks, 3 clusters > 1M, median 400).
    assert out["clusters_under_10_instances"] >= 1
    assert counts.max() > 100 * np.median(counts)

    report(
        "Figure 7 — instances per cluster (log-binned)",
        render_table(
            [{"bin_lower_edge": e, "clusters": c} for e, c in out["histogram"]]
        )
        + "\n"
        + paper.ratio_line(
            "median instances per cluster",
            paper.MEDIAN_TASKS_PER_CLUSTER,
            out["median_instances_per_cluster"],
        )
        + f"\nlargest cluster: {format_count(counts.max())} instances",
    )


def test_fig08_heavy_hitters(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig08_heavy_hitters, rounds=2, iterations=1)
    curves = out["curves"]
    assert len(curves) >= 3

    lines = []
    steady = bursty = 0
    for cluster, series in curves.items():
        active_weeks = int(np.sum(np.diff(np.r_[0.0, series]) > 0))
        total = series[-1]
        kind = "burst" if active_weeks <= 8 else "steady"
        if kind == "burst":
            bursty += 1
        else:
            steady += 1
        lines.append(
            f"cluster {cluster}: {format_count(total)} instances over "
            f"{active_weeks} active weeks ({kind})"
        )
    # Paper: heavy hitters show both uniform and bursty availability.
    assert steady >= 1 and bursty >= 1

    report("Figure 8 — heavy-hitter cumulative curves", "\n".join(lines))
