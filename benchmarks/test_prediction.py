"""§4.9: decision-tree bucket prediction, range and percentile bucketizations."""

import _paper as paper

from repro.reporting import render_table


def test_prediction_study(figures, benchmark, report):
    out = benchmark.pedantic(figures.prediction_study, rounds=1, iterations=1)

    by_key = {(e["metric"], e["strategy"]): e for e in out}

    rows = []
    for (metric, strategy), entry in sorted(by_key.items()):
        if strategy == "range":
            paper_exact = paper.PREDICTION_RANGE_EXACT[metric]
            paper_within = (
                paper.PREDICTION_RANGE_WITHIN_ONE_DISAGREEMENT
                if metric == "disagreement"
                else None
            )
        else:
            paper_exact = paper.PREDICTION_PERCENTILE_EXACT[metric]
            paper_within = paper.PREDICTION_PERCENTILE_WITHIN_ONE[metric]
        rows.append(
            {
                "metric": metric,
                "strategy": strategy,
                "exact": f"{entry['exact_accuracy']:.2f}",
                "paper_exact": paper_exact,
                "within_1": f"{entry['within_one_accuracy']:.2f}",
                "paper_within_1": paper_within if paper_within else "-",
            }
        )

    # Shape assertions from §4.9:
    # 1. Range bucketization on the skewed time metrics is near-trivial.
    assert by_key[("task_time", "range")]["exact_accuracy"] > 0.80
    assert by_key[("pickup_time", "range")]["exact_accuracy"] > 0.80
    # 2. Disagreement is much harder exactly, decent within one bucket.
    disagreement_range = by_key[("disagreement", "range")]
    assert disagreement_range["exact_accuracy"] < 0.9
    assert (
        disagreement_range["within_one_accuracy"]
        > disagreement_range["exact_accuracy"]
    )
    # 3. Percentile bucketization is much harder than range for time metrics.
    for metric in ("task_time", "pickup_time"):
        assert (
            by_key[(metric, "percentile")]["exact_accuracy"]
            < by_key[(metric, "range")]["exact_accuracy"]
        )
    # 4. Percentile predictions still beat uniform guessing (0.1 exact).
    for metric in ("disagreement", "task_time", "pickup_time"):
        assert by_key[(metric, "percentile")]["exact_accuracy"] > 0.10

    report("§4.9 — prediction accuracies vs paper", render_table(rows))


def test_prediction_bucket_distributions(figures, benchmark, report):
    """The range bucketization's skew matches the paper's reported counts."""
    out = benchmark.pedantic(figures.prediction_study, rounds=1, iterations=1)
    lines = []
    for entry in out:
        counts = entry["bucket_counts"]
        lines.append(
            f"{entry['metric']:13s} {entry['strategy']:10s} "
            f"counts={list(counts)}"
        )
        if entry["strategy"] == "range" and entry["metric"] != "disagreement":
            # Paper: [2842, 120, 8, ...] — bucket 0 holds almost everything.
            assert counts[0] / counts.sum() > 0.8
        if entry["strategy"] == "percentile":
            # Paper: ~equal counts per bucket.
            assert counts.min() > 0.5 * counts.mean()
    report("§4.9 — bucket distributions", "\n".join(lines))
