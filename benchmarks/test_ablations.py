"""Ablations of the paper's methodology choices (DESIGN.md §5).

These benches re-run an analysis under a variant of a §4 design decision and
show why the paper's choice is the right one.
"""

import numpy as np

from repro.analysis import taskdesign as td
from repro.enrichment.clustering import cluster_batches
from repro.reporting import render_table
from repro.stats.ttest import welch_t_test
from repro.tables import Table


def test_ablation_disagreement_prune_rule(figures, benchmark, report):
    """§4.1: prune disagreement > 0.5 vs keeping everything.

    Without the prune, subjective free-text clusters (disagreement near 1)
    pile into the text-box bin and wildly exaggerate the text-box effect.
    """

    def run():
        ct = figures.enriched.cluster_table
        labeled = np.array([g is not None and g != "" for g in ct["goals"]])
        finite = ~np.isnan(ct["disagreement"])
        base = ct.filter(labeled & finite)
        pruned = base.filter(~(base["disagreement"] > 0.5))
        return base, pruned

    base, pruned = benchmark.pedantic(run, rounds=1, iterations=1)

    def effect(clusters: Table) -> tuple[float, float]:
        has_tb = clusters["num_text_boxes"] > 0
        return (
            float(np.median(clusters["disagreement"][~has_tb])),
            float(np.median(clusters["disagreement"][has_tb])),
        )

    lo_raw, hi_raw = effect(base)
    lo_pruned, hi_pruned = effect(pruned)
    # The raw effect is inflated relative to the pruned one.
    assert (hi_raw - lo_raw) > (hi_pruned - lo_pruned)

    report(
        "Ablation — disagreement prune rule (>0.5)",
        render_table(
            [
                {"variant": "no prune", "median_no_tb": lo_raw,
                 "median_tb": hi_raw, "effect": hi_raw - lo_raw},
                {"variant": "paper prune", "median_no_tb": lo_pruned,
                 "median_tb": hi_pruned, "effect": hi_pruned - lo_pruned},
            ]
        )
        + "\nwithout pruning, subjective free-text tasks exaggerate the "
        "text-box penalty",
    )


def test_ablation_latency_metric(figures, benchmark, report):
    """§4.1: pickup-time vs end-to-end time as the latency metric.

    End-to-end time inherits task-size effects (it contains task time);
    pickup time isolates the marketplace's responsiveness.  We show the two
    metrics rank batches almost identically (pickup dominates), so the
    simpler, confound-free metric is justified.
    """

    def run():
        d = td.latency_decomposition(figures.enriched)
        rank_pickup = np.argsort(np.argsort(d.pickup_time))
        rank_end = np.argsort(np.argsort(d.end_to_end))
        n = len(rank_pickup)
        spearman = 1 - 6 * np.sum((rank_pickup - rank_end) ** 2.0) / (n * (n**2 - 1))
        return d, float(spearman)

    d, spearman = benchmark.pedantic(run, rounds=1, iterations=1)
    assert spearman > 0.95

    report(
        "Ablation — latency metric choice",
        f"Spearman rank correlation between pickup-time and end-to-end time "
        f"across batches: {spearman:.3f}\n"
        f"pickup dominates end-to-end by {d.pickup_dominance_ratio:.0f}x, so "
        "the two metrics agree and pickup-time is the cleaner choice.",
    )


def test_ablation_cluster_dedup(figures, benchmark, report):
    """§4.2: median-per-cluster vs per-batch analysis (heavy-hitter bias).

    Per-batch analysis lets heavy-hitter tasks vote once per batch; the
    paper's cluster-then-median step weights each distinct task once.
    """

    def run():
        bt = figures.enriched.batch_table
        finite = ~np.isnan(bt["disagreement"])
        pruned = finite & ~(bt["disagreement"] > 0.5)
        batches = bt.filter(pruned)

        # Per-batch (biased) experiment.
        has_tb = batches["num_text_boxes"] > 0
        per_batch = welch_t_test(
            batches["disagreement"][~has_tb], batches["disagreement"][has_tb]
        )

        # Cluster-level (paper) experiment.
        clusters = td.analysis_clusters(figures.enriched, metric="disagreement")
        per_cluster = td.bin_comparison(clusters, "num_text_boxes", "disagreement")
        return batches, per_batch, per_cluster

    batches, per_batch, per_cluster = benchmark.pedantic(run, rounds=1, iterations=1)

    # Heavy hitters inflate the per-batch sample size substantially.
    assert batches.num_rows > 2 * (per_cluster.count_low + per_cluster.count_high)

    report(
        "Ablation — cluster dedup (per-batch vs per-cluster)",
        f"per-batch sample: {batches.num_rows} rows, t-test p={per_batch.p_value:.2g}\n"
        f"per-cluster sample: {per_cluster.count_low + per_cluster.count_high} "
        f"rows, t-test p={per_cluster.t_test.p_value:.2g}\n"
        "per-batch analysis lets the few heavy-hitter tasks dominate the "
        "sample; the paper's dedup weights each distinct task once.",
    )


def test_ablation_clustering_threshold(figures, benchmark, report):
    """§3.3: sensitivity of batch clustering to the Jaccard threshold."""
    html = figures.released.batch_html
    subset_ids = sorted(html)[:600]
    subset = {b: html[b] for b in subset_ids}
    truth = len(
        {int(figures.state.batches.task_idx[b]) for b in subset_ids}
    )

    results = {}
    for threshold in (0.3, 0.6, 0.9):
        results[threshold] = len(
            set(cluster_batches(subset, threshold=threshold).values())
        )

    def run():
        return cluster_batches(subset, threshold=0.6)

    benchmark.pedantic(run, rounds=1, iterations=1)

    # The paper "tuned the threshold of a match": mid thresholds recover the
    # truth; extreme thresholds under- or over-split.
    assert results[0.6] == truth
    assert results[0.3] <= results[0.6] <= results[0.9]

    report(
        "Ablation — clustering threshold sensitivity",
        render_table(
            [
                {"threshold": t, "clusters": n, "truth": truth}
                for t, n in sorted(results.items())
            ]
        ),
    )
