"""Figure 13: pickup time dominates end-to-end latency."""

import numpy as np

import _paper as paper

from repro.reporting import format_seconds


def test_fig13_latency_decomposition(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig13_latency, rounds=2, iterations=1)

    assert out["pickup_dominance_ratio"] > paper.PICKUP_DOMINANCE_MIN

    # Pickup tracks end-to-end time; task time is a small additive term.
    end_to_end = out["end_to_end"]
    pickup = out["pickup_time"]
    share = pickup / np.maximum(end_to_end, 1e-9)
    assert np.median(share) > 0.8

    report(
        "Figure 13 — latency decomposition (batch level)",
        f"median pickup time    {format_seconds(out['median_pickup'])}\n"
        f"median task time      {format_seconds(out['median_task_time'])}\n"
        f"dominance ratio       {out['pickup_dominance_ratio']:.1f}x "
        "(paper: orders of magnitude)\n"
        f"median pickup share of end-to-end: {np.median(share):.0%}",
    )
