"""Extension benches: §3.2 internal/external overlay, §4.1 completion
profile, §7 future-work A/B testing, and worker-learning recovery."""

import numpy as np

from repro.abtest import TaskDesign, run_ab_test
from repro.analysis.learning import learning_curve
from repro.analysis.marketplace import internal_external_split, weekly_backlog
from repro.analysis.taskdesign import batch_completion_profile
from repro.analysis.workers import session_statistics
from repro.reporting import format_count, format_seconds, render_table


def test_internal_external_overlay(figures, benchmark, report):
    """§3.2: "the internal workers account for a very small fraction"."""

    def run():
        return internal_external_split(
            figures.released, num_weeks=figures.num_weeks
        )

    internal, external = benchmark.pedantic(run, rounds=1, iterations=1)
    total = internal.sum() + external.sum()
    share = internal.sum() / total
    assert share < 0.05  # paper: ~2%
    assert external.std() > 10 * internal.std()

    report(
        "§3.2 extension — internal vs external workload",
        f"internal pool share of tasks: {share:.2%} (paper: ~2%)\n"
        f"weekly flux (std): external {external.std():,.0f} vs internal "
        f"{internal.std():,.0f} — external labor absorbs the variation",
    )


def test_batch_completion_profile(figures, benchmark, report):
    """Requester-facing turnaround is pickup-dominated at every quantile."""
    profile = benchmark.pedantic(
        lambda: batch_completion_profile(figures.released), rounds=1, iterations=1
    )
    medians = profile.medians()
    median_task_time = float(np.median(figures.enriched.batch_table["task_time"]))
    assert medians["time_to_half"] > 5 * median_task_time

    report(
        "§4.1 extension — batch completion profile",
        "\n".join(
            [
                f"median time to 50% complete: {format_seconds(medians['time_to_half'])}",
                f"median time to 90% complete: {format_seconds(medians['time_to_90'])}",
                f"median time to 100% complete: {format_seconds(medians['time_to_full'])}",
                f"median per-instance task time: {format_seconds(median_task_time)}",
            ]
        ),
    )


def test_ab_testing_confirms_section4(benchmark, report):
    """§7 future work: causal confirmation of the §4.8 recommendations."""

    def run():
        base = TaskDesign(num_examples=0, num_text_boxes=2)
        results = {
            "add examples": run_ab_test(
                base, base.varied(num_examples=2), num_batches=50, seed=17
            ),
            "drop text boxes": run_ab_test(
                base, base.varied(num_text_boxes=0), num_batches=50, seed=17
            ),
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    examples = results["add examples"]
    assert examples["pickup_time"].significant
    assert examples["pickup_time"].median_b < examples["pickup_time"].median_a

    text_boxes = results["drop text boxes"]
    assert text_boxes["task_time"].significant
    assert text_boxes["task_time"].median_b < text_boxes["task_time"].median_a
    assert text_boxes["disagreement"].median_b < text_boxes["disagreement"].median_a

    rows = []
    for name, result in results.items():
        for comparison in result.comparisons.values():
            rows.append(
                {
                    "experiment": name,
                    "metric": comparison.metric,
                    "A": f"{comparison.median_a:.3g}",
                    "B": f"{comparison.median_b:.3g}",
                    "change": f"{comparison.relative_change:+.0%}",
                    "p": f"{comparison.t_test.p_value:.2g}",
                }
            )
    report("§7 future work — A/B tests of §4.8 recommendations", render_table(rows))


def test_weekly_backlog(figures, benchmark, report):
    """§3.1 extension: the open-work backlog the push mechanism clears."""

    def run():
        return weekly_backlog(
            figures.released, figures.enriched, num_weeks=figures.num_weeks
        )

    backlog = benchmark.pedantic(run, rounds=1, iterations=1)
    assert backlog.min() >= -1e-6
    assert backlog[-1] == 0.0
    peak_week = int(np.argmax(backlog))
    assert peak_week >= figures.regime_week  # backlog peaks post-switch

    report(
        "§3.1 extension — weekly open-work backlog",
        f"peak backlog {format_count(backlog.max())} instances at week "
        f"{peak_week}; fully drained by the calendar horizon.",
    )


def test_attention_spans(figures, benchmark, report):
    """§1/§2.5 goal: worker attention spans, as work sessions."""
    stats = benchmark.pedantic(
        lambda: session_statistics(figures.released), rounds=1, iterations=1
    )
    assert stats.num_sessions > 0
    # Most sessions are short (paper §5.4: most workers < 1h per day).
    assert stats.median_session_minutes() < 90

    report(
        "§1 goal — worker attention spans (sessions, 30-min gap)",
        "\n".join(
            [
                f"sessions: {stats.num_sessions:,}",
                f"median session length: {stats.median_session_minutes():.1f} min",
                f"median tasks per session: {stats.median_tasks_per_session():.0f}",
                f"p90 session length: "
                f"{np.percentile(stats.session_lengths_seconds, 90) / 60:.0f} min",
            ]
        ),
    )


def test_worker_learning_recovery(figures, benchmark, report):
    """§7 future work: the within-batch learning curve is recoverable."""
    curve = benchmark.pedantic(
        lambda: learning_curve(figures.released), rounds=1, iterations=1
    )
    truth = figures.state.config.calibration.within_batch_learning_exponent
    assert abs(curve.learning_exponent - truth) < 0.03

    speedups = ", ".join(
        f"#{rank + 1}: {value:.0%}" for rank, value in curve.speedup_at.items()
    )
    report(
        "§7 future work — worker learning curve",
        f"fitted exponent {curve.learning_exponent:.3f} "
        f"(generative truth {truth})\n"
        f"duration relative to a worker's first instance of a batch: {speedups}",
    )
