"""Figure 1: distinct tasks sampled vs all issued, by week."""

import numpy as np

from repro.reporting import render_series


def test_fig01_sampling(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig01_sampling, rounds=2, iterations=1)

    all_counts = out["all"]
    sampled = out["sampled"]
    active = all_counts > 0

    # The sample covers a significant fraction of distinct tasks every week
    # (paper: "in general we have a significant fraction of tasks from each
    # week"; overall 76% of distinct tasks).
    coverage = sampled[active].sum() / all_counts[active].sum()
    assert 0.5 <= coverage <= 1.0
    assert np.all(sampled <= all_counts)

    report(
        "Figure 1 — distinct tasks sampled vs all (weekly)",
        render_series(all_counts, title="all distinct tasks per week")
        + "\n"
        + render_series(sampled, title="sampled distinct tasks per week")
        + f"\noverall weekly coverage: {coverage:.2f} (paper: 0.76 of tasks)",
    )
