"""Figure 2 + §3.1 headline: task-instance arrivals, pickup, load variation."""

import numpy as np

import _paper as paper

from repro.reporting import render_series


def test_fig02_arrivals(figures, benchmark, report):
    out = benchmark.pedantic(figures.fig02_arrivals, rounds=2, iterations=1)
    switch = figures.regime_week

    issued = out["instances_issued"]
    # Regime switch: sparse before Jan 2015, heavy after (Figure 2a).
    assert issued[switch:].sum() > 10 * issued[:switch].sum()

    # Batches and distinct tasks fluctuate along with instances (Figure 2b).
    post_issued = issued[switch:]
    post_batches = out["batches_issued"][switch:]
    active = (post_issued > 0) & (post_batches > 0)
    correlation = np.corrcoef(
        np.log1p(post_issued[active]), np.log1p(post_batches[active])
    )[0, 1]
    assert correlation > 0.3

    # Pickup time moves inversely with load (Figure 2a red line).
    pickup = out["median_pickup_time"][switch:]
    ok = active & ~np.isnan(pickup)
    pickup_corr = np.corrcoef(
        np.log1p(post_issued[ok]), np.log1p(pickup[ok])
    )[0, 1]
    assert pickup_corr < 0.05

    report(
        "Figure 2 — weekly arrivals vs pickup time",
        render_series(issued, title="instances issued per week")
        + f"\nlog-log corr(instances, batches) = {correlation:.2f} (positive)"
        + f"\nlog-log corr(instances, median pickup) = {pickup_corr:.2f} "
        "(paper: negative — busy weeks move faster)",
    )


def test_headline_load_variation(figures, benchmark, report):
    out = benchmark.pedantic(
        figures.headline_load_variation, rounds=2, iterations=1
    )
    assert out["busiest_over_median"] > 10
    assert out["lightest_over_median"] < 0.05

    report(
        "§3.1 takeaway — daily load variation (post regime switch)",
        "\n".join(
            [
                paper.ratio_line(
                    "median daily instances",
                    paper.LOAD_MEDIAN_DAILY,
                    out["median_daily_instances"],
                ),
                paper.ratio_line(
                    "busiest day / median",
                    paper.LOAD_BUSIEST_OVER_MEDIAN,
                    out["busiest_over_median"],
                ),
                paper.ratio_line(
                    "lightest day / median",
                    paper.LOAD_LIGHTEST_OVER_MEDIAN,
                    out["lightest_over_median"],
                ),
            ]
        ),
    )
