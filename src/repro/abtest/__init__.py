"""Controlled A/B experiments over the simulated marketplace.

The paper's §7 closes with: *"with full-fledged A/B testing, we may be able
to solidify our correlation and predictive claims with further
causation-based evidence."*  This subpackage supplies that harness: two
task designs are issued as matched batch sets to the *same* simulated
worker pool over the same calendar window, and the three §4.1 metrics are
compared arm-against-arm with Welch t-tests.

Because both arms share workers, calendar, and allocation machinery — and
the design targets are composed noise-free — any metric difference is
*caused* by the design change, turning §4's correlational findings into
causal estimates (inside the model).
"""

from repro.abtest.harness import ABTestResult, MetricComparison, TaskDesign, run_ab_test

__all__ = ["ABTestResult", "MetricComparison", "TaskDesign", "run_ab_test"]
