"""The A/B experiment harness: matched batches, shared workers, t-tested arms."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.enrichment.metrics import compute_batch_metrics
from repro.dataset.release import ReleasedDataset
from repro.simulator.arrivals import BatchSchedule
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import simulate_instances
from repro.simulator.rng import StreamFactory
from repro.simulator.sources import generate_sources
from repro.simulator.tasks import (
    TEXT_RESPONSE_OPERATORS,
    TaskPopulation,
    compose_disagreement_target,
    compose_pickup_base,
    compose_task_time_base,
)
from repro.simulator.workers import generate_workers
from repro.stats.timeseries import DAY_SECONDS, WEEK_SECONDS
from repro.stats.ttest import TTestResult, welch_t_test
from repro.tables import Table
from repro.taxonomy.labels import DataType, Goal, Operator


@dataclass(frozen=True)
class TaskDesign:
    """A concrete task design — the treatment unit of an A/B test."""

    goal: Goal = Goal.LANGUAGE_UNDERSTANDING
    operators: tuple[Operator, ...] = (Operator.FILTER,)
    data_types: tuple[DataType, ...] = (DataType.TEXT,)
    num_words: int = 466
    num_text_boxes: int = 0
    num_examples: int = 0
    num_images: int = 0
    num_items: int = 40
    num_choices: int = 3
    redundancy: int = 3
    subjective: bool = False

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("a design needs at least one operator")
        if self.num_items < 1 or self.redundancy < 1:
            raise ValueError("num_items and redundancy must be positive")
        if self.num_choices < 2:
            raise ValueError("need at least 2 answer choices")

    def varied(self, **changes) -> "TaskDesign":
        """A copy with the given fields changed (the 'B' arm builder)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class MetricComparison:
    """One metric's arm-vs-arm outcome."""

    metric: str
    median_a: float
    median_b: float
    t_test: TTestResult

    @property
    def significant(self) -> bool:
        return self.t_test.significant()

    @property
    def relative_change(self) -> float:
        """(B - A) / A on the medians; negative means B improved the cost."""
        if self.median_a == 0:
            return float("nan")
        return (self.median_b - self.median_a) / self.median_a


@dataclass(frozen=True)
class ABTestResult:
    """A full experiment outcome: one comparison per §4.1 metric."""

    design_a: TaskDesign
    design_b: TaskDesign
    num_batches_per_arm: int
    comparisons: dict[str, MetricComparison] = field(repr=False)

    def __getitem__(self, metric: str) -> MetricComparison:
        return self.comparisons[metric]

    def summary(self) -> str:
        lines = [
            f"A/B test: {self.num_batches_per_arm} batches per arm",
        ]
        for comparison in self.comparisons.values():
            verdict = "SIGNIFICANT" if comparison.significant else "no effect"
            lines.append(
                f"  {comparison.metric:13s} A={comparison.median_a:10.3g} "
                f"B={comparison.median_b:10.3g} "
                f"({comparison.relative_change:+.0%}, p={comparison.t_test.p_value:.2g}) "
                f"{verdict}"
            )
        return "\n".join(lines)


def _design_population(
    config: SimulationConfig, designs: tuple[TaskDesign, TaskDesign]
) -> TaskPopulation:
    """A two-task population, one per arm, with noise-free targets."""
    num_words = np.array([d.num_words for d in designs], dtype=np.int64)
    text_boxes = np.array([d.num_text_boxes for d in designs], dtype=np.int64)
    examples = np.array([d.num_examples for d in designs], dtype=np.int64)
    images = np.array([d.num_images for d in designs], dtype=np.int64)
    items = np.array([float(d.num_items) for d in designs])

    target_disagreement = np.array(
        [
            compose_disagreement_target(
                config,
                operator=d.operators[0],
                num_words=d.num_words,
                num_text_boxes=d.num_text_boxes,
                num_examples=d.num_examples,
                items_median=float(d.num_items),
                subjective=d.subjective,
            )
            for d in designs
        ]
    )
    base_task_time = np.array(
        [
            compose_task_time_base(
                config,
                operator=d.operators[0],
                num_text_boxes=d.num_text_boxes,
                num_images=d.num_images,
                items_median=float(d.num_items),
            )
            for d in designs
        ]
    )
    base_pickup = np.array(
        [
            compose_pickup_base(
                config,
                num_examples=d.num_examples,
                num_images=d.num_images,
                items_median=float(d.num_items),
            )
            for d in designs
        ]
    )

    subjective = np.array(
        [
            d.subjective and d.operators[0] in TEXT_RESPONSE_OPERATORS
            and d.num_text_boxes > 0
            for d in designs
        ]
    )

    return TaskPopulation(
        goal=np.array([d.goal for d in designs], dtype=object),
        goals=[(d.goal,) for d in designs],
        operators=[d.operators for d in designs],
        data_types=[d.data_types for d in designs],
        title=np.array(["arm A", "arm B"], dtype=object),
        num_words=num_words,
        num_text_boxes=text_boxes,
        num_examples=examples,
        num_images=images,
        items_median=items,
        cluster_size=np.array([1, 1], dtype=np.int64),  # unused by the engine
        start_week=np.zeros(2, dtype=np.int64),
        duration_weeks=np.ones(2, dtype=np.int64),
        burst=np.zeros(2, dtype=bool),
        subjective=subjective,
        num_choices=np.array([d.num_choices for d in designs], dtype=np.int64),
        redundancy=np.array([d.redundancy for d in designs], dtype=np.int64),
        target_disagreement=target_disagreement,
        base_task_time=base_task_time,
        base_pickup_time=base_pickup,
        template_salt=np.array([11, 22], dtype=np.int64),
    )


def _matched_batches(
    config: SimulationConfig,
    designs: tuple[TaskDesign, TaskDesign],
    num_batches: int,
    rng: np.random.Generator,
) -> BatchSchedule:
    """Interleaved batch schedule: both arms posted into the same window."""
    window_start = config.regime_switch_week + 10
    window_weeks = 8
    n = 2 * num_batches
    task_idx = np.tile(np.array([0, 1], dtype=np.int64), num_batches)
    weeks = window_start + rng.integers(0, window_weeks, size=n)
    offsets = rng.integers(8 * 3600, 20 * 3600, size=n) + rng.integers(
        0, 5, size=n
    ) * DAY_SECONDS
    start_time = weeks * WEEK_SECONDS + offsets

    items = np.array(
        [
            max(1, int(round(designs[t].num_items * float(np.exp(rng.normal(0, 0.1))))))
            for t in task_idx
        ],
        dtype=np.int64,
    )
    redundancy = np.array([designs[t].redundancy for t in task_idx], dtype=np.int64)

    order = np.argsort(start_time, kind="stable")
    return BatchSchedule(
        task_idx=task_idx[order],
        start_time=start_time[order].astype(np.int64),
        num_items=items[order],
        redundancy=redundancy[order],
        num_instances=(items * redundancy)[order],
    )


def run_ab_test(
    design_a: TaskDesign,
    design_b: TaskDesign,
    *,
    num_batches: int = 40,
    seed: int = 0,
    config: SimulationConfig | None = None,
) -> ABTestResult:
    """Run a matched A/B experiment and compare the §4.1 metrics.

    Both arms are issued as ``num_batches`` batches each, interleaved over
    the same calendar window and served by the same simulated worker pool.
    Returns per-metric medians, Welch t-tests, and relative changes.
    """
    if num_batches < 5:
        raise ValueError("need at least 5 batches per arm for a t-test")
    config = config or SimulationConfig(
        seed=seed, num_distinct_tasks=2, num_workers=1500, instance_scale=0.5
    )
    streams = StreamFactory(seed ^ 0x5EED)
    rng = streams.stream("batches")

    designs = (design_a, design_b)
    tasks = _design_population(config, designs)
    batches = _matched_batches(config, designs, num_batches, rng)
    sources = generate_sources(streams)
    envelope = np.ones(config.num_weeks)
    workers = generate_workers(config, sources, envelope, streams)

    log = simulate_instances(config, tasks, batches, workers, streams)

    catalog = Table(
        {
            "batch_id": np.arange(batches.num_batches, dtype=np.int64),
            "title": np.array(
                ["arm A" if t == 0 else "arm B" for t in batches.task_idx],
                dtype=object,
            ),
            "created_at": batches.start_time,
            "sampled": np.ones(batches.num_batches, dtype=bool),
        },
        copy=False,
    )
    instances = Table(
        {
            "batch_id": log.batch_idx,
            "item_id": log.item_id,
            "worker_id": log.worker_id,
            "start_time": log.start_time,
            "end_time": log.end_time,
            "trust": log.trust,
            "response": log.response,
        },
        copy=False,
    )
    released = ReleasedDataset(
        batch_catalog=catalog, batch_html={}, instances=instances
    )
    metrics = compute_batch_metrics(released)

    arm_of_batch = batches.task_idx[metrics["batch_id"]]
    comparisons: dict[str, MetricComparison] = {}
    for metric in ("disagreement", "task_time", "pickup_time"):
        values = metrics[metric]
        a = values[arm_of_batch == 0]
        b = values[arm_of_batch == 1]
        a = a[~np.isnan(a)]
        b = b[~np.isnan(b)]
        if a.size < 2 or b.size < 2:
            continue
        comparisons[metric] = MetricComparison(
            metric=metric,
            median_a=float(np.median(a)),
            median_b=float(np.median(b)),
            t_test=welch_t_test(a, b),
        )
    return ABTestResult(
        design_a=design_a,
        design_b=design_b,
        num_batches_per_arm=num_batches,
        comparisons=comparisons,
    )
