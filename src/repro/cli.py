"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Build a study and export the released dataset to a directory
    (CSV + HTML files, loadable with :func:`repro.dataset.load_dataset`).
``report``
    Build a study and print the headline findings of every paper section.
``abtest``
    Run a task-design A/B experiment on the simulator (vary one feature).
``learning``
    Estimate the within-batch worker learning curve.
``plan``
    Build a study and run a representative lazy query under
    ``explain(analyze=True)`` — the annotated operator tree plus a
    ranked operator-hotspot listing (see :mod:`repro.tables.plan`).
``trace``
    Summarize a JSON trace file written by a ``--trace`` run
    (``--json --top N`` adds a ``plan.op.*`` operator-hotspot listing).
``runs``
    Inspect the persistent run ledger (``list``/``show``/``diff``/
    ``check``/``report``); ``check`` exits nonzero on perf, fidelity,
    or peak-RSS drift (see :mod:`repro.obs.drift`).
``serve``
    Serve live telemetry over HTTP — ``/metrics`` (Prometheus text),
    ``/events`` (SSE), ``/runs``, and the auto-refreshing dashboard at
    ``/`` (see :mod:`repro.obs.live`).  Every study command also accepts
    ``--live [PORT]`` to serve the same endpoints while it builds,
    without changing a byte of its stdout.  ``--ingest`` adds the
    incremental data plane (:mod:`repro.service`): ``POST /ingest``
    folds schema-versioned micro-batches into standing aggregates, and
    ``GET /tables|/figures|/fidelity`` serve the study byte-identically
    to a one-shot batch build, with ETag-cached responses.

Every study-building command accepts ``--trace`` (or ``REPRO_TRACE=1``):
the run records a hierarchical span trace (see :mod:`repro.obs`), prints
the timing tree afterwards, and writes a JSON trace file for later
``repro trace`` / ``scripts/bench_guard.py --trace-diff`` consumption.

They also accept ``--faults SPEC`` (or ``REPRO_FAULTS``): deterministic
fault injection into the cache/pool/dataset failure paths (see
:mod:`repro.faults`) — a faulted run must still produce the identical
study, or fail loudly.

Independently of ``--trace``, every study-building command appends a run
record to the ledger (:mod:`repro.obs.ledger`) — silently, so command
output stays byte-stable — unless ``REPRO_NO_LEDGER`` is set.  The record
always carries the process peak RSS; with ``--sample MS`` (or
``REPRO_SAMPLE_MS``) a background sampler (:mod:`repro.obs.sampler`) adds
a continuous resource timeline and per-worker utilization intervals,
still without changing a byte of command output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

SCALES = ("tiny", "small", "medium", "large", "xlarge")

#: Commands that build a study and therefore record a ledger run.
_STUDY_COMMANDS = frozenset(
    {"simulate", "report", "learning", "figures", "validate", "workload",
     "plan"}
)

#: Default JSON trace path for ``--trace`` runs without ``--trace-out``.
DEFAULT_TRACE_OUT = "repro_trace.json"


def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", choices=SCALES, default="tiny",
        help="simulation scale preset (default: tiny)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="simulation seed (default: 7)"
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="build the study over N batch-partitioned shards "
        "(memory-bounded, byte-identical; see repro.shard; "
        "also REPRO_SHARDS)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk study cache (see repro.cache)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="record a span trace; print the timing tree and write a JSON "
        "trace file afterwards (also enabled by REPRO_TRACE=1)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help=f"where --trace writes the JSON trace "
        f"(default: {DEFAULT_TRACE_OUT})",
    )
    parser.add_argument(
        "--trace-mem", action="store_true",
        help="add tracemalloc allocation/peak numbers to every span "
        "(implies the cost of tracemalloc; also REPRO_TRACE_MEM=1)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject deterministic faults, e.g. "
        "'cache.write:fail@2,pool.spawn:fail' (see repro.faults; "
        "also REPRO_FAULTS)",
    )
    parser.add_argument(
        "--sample", nargs="?", const=50.0, type=float, default=None,
        metavar="MS",
        help="sample RSS/CPU/fds/spill every MS milliseconds into the run "
        "record's resource timeline (default interval 50; also "
        "REPRO_SAMPLE_MS; output stays byte-identical)",
    )
    parser.add_argument(
        "--live", nargs="?", const=0, type=int, default=None,
        metavar="PORT",
        help="serve live telemetry (/metrics, /events, dashboard) on "
        "localhost:PORT while the command runs (bare --live picks a free "
        "port; the URL goes to stderr, stdout stays byte-identical)",
    )


def _cache_arg(args: argparse.Namespace) -> bool | None:
    # Only --no-cache is an explicit choice; leaving it off defers to the
    # REPRO_NO_CACHE environment variable (repro.cache.cache_enabled).
    return False if args.no_cache else None


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import build_study
    from repro.dataset import save_dataset

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    path = save_dataset(study.released, args.out)
    print(
        f"wrote {study.released.instances.num_rows:,} instances across "
        f"{study.released.num_sampled_batches:,} sampled batches to {path}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro import build_study
    from repro.reporting import (
        format_count,
        format_seconds,
        render_comparison_rows,
    )

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    figures = study.figures

    load = figures.headline_load_variation()
    print("== Section 3: marketplace dynamics ==")
    print(
        f"median daily load {format_count(load['median_daily_instances'])}; "
        f"busiest {load['busiest_over_median']:.0f}x median; "
        f"lightest {load['lightest_over_median']:.2g}x"
    )
    weekday = figures.fig03_weekday()
    print(f"weekday/weekend load ratio {weekday['weekday_weekend_ratio']:.2f}")

    print("\n== Section 4: task design ==")
    latency = figures.fig13_latency()
    print(
        f"median pickup {format_seconds(latency['median_pickup'])} vs task "
        f"time {format_seconds(latency['median_task_time'])} "
        f"({latency['pickup_dominance_ratio']:.0f}x)"
    )
    for metric, title in (
        ("disagreement", "Table 1 (disagreement)"),
        ("task_time", "Table 2 (task time)"),
        ("pickup_time", "Table 3 (pickup time)"),
    ):
        rows = figures.tables_123()[metric]
        print(f"\n{title}:")
        print(render_comparison_rows(rows) if rows else "(none significant)")

    print("\n== Section 5: workers ==")
    lifetimes = figures.fig30_lifetimes()
    workload = figures.fig29_workload()
    geo = figures.fig28_geography()
    print(
        f"one-day workers {lifetimes['one_day_worker_fraction']:.0%} "
        f"(task share {lifetimes['one_day_task_share']:.1%}); "
        f"top-10% of workers do {workload['top10_task_share']:.0%} of tasks; "
        f"{geo['num_countries']} countries, top-5 share {geo['top5_share']:.0%}"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """EXPLAIN ANALYZE a representative study query (``repro plan``)."""
    from repro import build_study
    from repro.tables import col, profile_hotspots

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    # The §4 batch rollup: filter + fused projection + group_by + sort +
    # head, so every major operator shows up in the profile.
    frame = (
        study.enriched.batch_table.lazy()
        .filter(col("num_instances") > 0)
        .filter(col("num_words") > 0)
        .group_by("cluster_id")
        .agg({
            "num_batches": ("batch_id", "count"),
            "num_instances": ("num_instances", "sum"),
        })
        .sort_by("num_instances", descending=True)
        .head(args.rows)
    )
    print(frame.explain(analyze=True))
    hotspots = profile_hotspots(frame.profile(), top=args.top)
    print()
    print(f"top {len(hotspots)} operators by wall time:")
    for prof in hotspots:
        print(
            f"  {prof.op:<14} {prof.wall_s * 1e3:>9.3f}ms "
            f"rows_out={prof.rows_out:,}  {prof.detail}"
        )
    return 0


def _cmd_abtest(args: argparse.Namespace) -> int:
    from repro.abtest import TaskDesign, run_ab_test

    base = TaskDesign()
    if not hasattr(base, args.feature):
        print(f"unknown design feature {args.feature!r}", file=sys.stderr)
        return 2
    variant = base.varied(**{args.feature: args.value})
    result = run_ab_test(
        base, variant, num_batches=args.batches, seed=args.seed
    )
    print(
        f"A = default design; B = default with {args.feature}={args.value}"
    )
    print(result.summary())
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro import build_study
    from repro.workloads import derive_workload

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    spec = derive_workload(study.enriched, min_support=args.min_support)
    if args.out:
        spec.save(args.out)
        print(f"wrote {spec.num_archetypes} archetypes to {args.out}")
    else:
        print(spec.to_json())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro import build_study
    from repro.validation import validate_study

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    report = validate_study(study)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro import build_study
    from repro.figures.render_svg import render_all_figures

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    paths = render_all_figures(study.figures, args.out)
    print(f"wrote {len(paths)} SVG figures to {args.out}")
    return 0


def _scale_name(config: dict) -> str:
    """Best-effort preset name for a cached config (else ``custom``)."""
    from repro.simulator.config import _PRESETS

    for name, preset in _PRESETS.items():
        if all(config.get(field) == value for field, value in preset.items()):
            return name
    return "custom"


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro import cache as study_cache, obs

    if args.clear:
        removed = study_cache.clear_cache()
        if args.json:
            print(json.dumps({
                "cache_dir": str(study_cache.cache_dir()),
                "removed": removed,
            }))
        else:
            print(
                f"removed {removed} cache entries from "
                f"{study_cache.cache_dir()}"
            )
        return 0
    entries = study_cache.list_entries()
    total_bytes = sum(entry.get("size_bytes", 0) for entry in entries)
    total_instances = sum(entry.get("num_instances", 0) for entry in entries)
    obs.gauge("cache.entries").set(len(entries))
    obs.gauge("cache.size_bytes").set(total_bytes)
    if args.json:
        print(json.dumps({
            "cache_dir": str(study_cache.cache_dir()),
            "num_entries": len(entries),
            "total_bytes": total_bytes,
            "total_instances": total_instances,
            "entries": [
                {
                    "key": entry.get("key"),
                    "scale": _scale_name(entry.get("config", {})),
                    "seed": entry.get("config", {}).get("seed"),
                    "num_instances": entry.get("num_instances"),
                    "size_bytes": entry.get("size_bytes", 0),
                    "path": entry.get("path"),
                }
                for entry in entries
            ],
            "session_counters": obs.nonzero_counters("cache."),
        }, indent=1))
        return 0
    print(
        f"cache dir: {study_cache.cache_dir()} "
        f"({len(entries)} entries, {total_bytes / 1e6:.1f} MB, "
        f"{total_instances:,} instances)"
    )
    for entry in entries:
        config = entry.get("config", {})
        print(
            f"  {entry['key'][:16]}  scale={_scale_name(config)} "
            f"seed={config.get('seed')} "
            f"tasks={config.get('num_distinct_tasks')} "
            f"instances={entry.get('num_instances'):,} "
            f"({entry.get('size_bytes', 0) / 1e6:.1f} MB)"
        )
    session = obs.nonzero_counters("cache.")
    if session:
        traffic = " ".join(f"{k.split('.', 1)[1]}={v}" for k, v in session.items())
        print(f"this process: {traffic}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        doc = obs.load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    metrics = doc.get("metrics", {})
    if args.json:
        by_name = obs.aggregate_by_name(doc)
        top_ops = sorted(
            (
                {"op": name.removeprefix("plan.op."), **agg}
                for name, agg in by_name.items()
                if name.startswith("plan.op.")
            ),
            key=lambda entry: -entry.get("wall_s", 0.0),
        )[:args.top]
        print(json.dumps({
            "schema": doc.get("schema"),
            "name": doc.get("name"),
            "created_unix": doc.get("created_unix"),
            "total_wall_s": doc.get("total_wall_s"),
            "num_spans": len(doc.get("spans", [])),
            "spans_by_name": by_name,
            "top_ops": top_ops,
            "counters": {
                k: v for k, v in metrics.get("counters", {}).items() if v
            },
            "gauges": {
                k: v
                for k, v in metrics.get("gauges", {}).items()
                if v is not None
            },
            "histograms": {
                k: v
                for k, v in metrics.get("histograms", {}).items()
                if v.get("count")
            },
        }, indent=1))
        return 0
    print(obs.summarize_trace(doc, top=args.top))
    if not args.no_tree:
        print()
        print(obs.render_tree(doc))
    counters = metrics.get("counters", {})
    nonzero = {name: value for name, value in counters.items() if value}
    if nonzero:
        print()
        print("counters:")
        for name, value in sorted(nonzero.items()):
            print(f"  {name:<36} {value:>12,}")
    histograms = obs.summarize_histograms(doc)
    if histograms:
        print()
        print(histograms)
    return 0


# --------------------------------------------------------------------- #
# repro runs — the persistent run ledger
# --------------------------------------------------------------------- #


def _read_ledger(args: argparse.Namespace) -> list[dict]:
    from repro import obs

    return obs.ledger.read_records(getattr(args, "ledger", None))


def _resolve_run(records: list[dict], ref: str) -> dict | None:
    from repro import obs

    record = obs.ledger.find_record(records, ref)
    if record is None:
        print(
            f"no unique run matching {ref!r} "
            f"({len(records)} records in the ledger)",
            file=sys.stderr,
        )
    return record


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro import obs

    records = _read_ledger(args)
    if not records:
        print(f"no runs recorded in {obs.ledger.ledger_path()}")
        return 0
    print(
        f"{'run id':<24} {'kind':<6} {'command':<9} {'scale':<7} "
        f"{'seed':>5} {'wall':>9}  {'faults'}"
    )
    for record in records:
        config = record.get("config") or {}
        print(
            f"{record.get('run_id', '?'):<24} "
            f"{record.get('kind', '?'):<6} "
            f"{record.get('command', '?'):<9} "
            f"{str(config.get('scale', '-')):<7} "
            f"{str(config.get('seed', '-')):>5} "
            f"{record.get('total_wall_s', 0.0):>8.3f}s  "
            f"{config.get('faults') or '-'}"
        )
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    records = _read_ledger(args)
    record = _resolve_run(records, args.run)
    if record is None:
        return 2
    config = record.get("config") or {}
    print(f"run {record['run_id']} ({record.get('kind')}/{record.get('command')})")
    print(f"  git sha:    {record.get('git_sha') or '-'}")
    print(
        f"  config:     scale={config.get('scale')} seed={config.get('seed')} "
        f"workers={config.get('workers')} shards={config.get('shards') or '-'} "
        f"cache={config.get('cache')} faults={config.get('faults') or '-'}"
    )
    print(f"  total wall: {record.get('total_wall_s', 0.0):.3f}s")
    cache = record.get("cache") or {}
    print(
        f"  cache:      {cache.get('entries', 0)} entries, "
        f"{cache.get('size_bytes', 0) / 1e6:.1f} MB"
    )
    phases = record.get("phases") or {}
    if phases:
        print(f"\n  {'phase':<34} {'count':>5} {'wall':>10} {'cpu':>10}")
        ranked = sorted(phases.items(), key=lambda kv: -kv[1].get("wall_s", 0))
        for name, agg in ranked:
            print(
                f"  {name:<34} {agg.get('count', 0):>5} "
                f"{agg.get('wall_s', 0.0):>9.3f}s {agg.get('cpu_s', 0.0):>9.3f}s"
            )
    counters = record.get("counters") or {}
    if counters:
        print("\n  counters:")
        for name, value in sorted(counters.items()):
            print(f"    {name:<34} {value:>12,}")
    fidelity = record.get("fidelity") or {}
    if fidelity:
        print(f"\n  {'fidelity probe':<34} {'paper':>10} {'measured':>10} {'dev':>7}")
        for name, probe in sorted(fidelity.items()):
            print(
                f"  {name:<34} {probe.get('paper'):>10g} "
                f"{probe.get('measured'):>10.4g} {probe.get('deviation'):>7.3f}"
            )
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro import obs

    records = _read_ledger(args)
    a = _resolve_run(records, args.run_a)
    b = _resolve_run(records, args.run_b)
    if a is None or b is None:
        return 2
    print(obs.drift.render_diff(a, b))
    return 0


def _cmd_runs_check(args: argparse.Namespace) -> int:
    from repro import obs

    records = _read_ledger(args)
    comparable = sum(
        1 for group in obs.drift.group_records(records).values()
        if len(group) >= 2
    )
    if not comparable:
        print(
            f"drift check: nothing to compare yet "
            f"({len(records)} run(s), no group has two)"
        )
        return 0
    findings = obs.drift.check_drift(records)
    if not findings:
        print(
            f"drift check: OK — {comparable} group(s) within tolerance "
            f"of their rolling baselines"
        )
        return 0
    print(f"drift check: {len(findings)} finding(s)")
    for finding in findings:
        print(f"  {finding.render()}")
    return 1


def _cmd_runs_report(args: argparse.Namespace) -> int:
    from repro import obs

    records = _read_ledger(args)
    path = obs.dashboard.write_dashboard(records, args.out)
    print(f"wrote run dashboard ({len(records)} runs) to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve live telemetry until interrupted (``repro serve``).

    With ``--ingest``, the server also hosts the incremental data plane
    (:mod:`repro.service`): ``POST /ingest`` folds micro-batches into
    standing aggregates and ``GET /tables|/figures|/fidelity`` serve the
    study with ETag-cached responses.
    """
    import time as time_mod

    from repro import obs

    app = None
    if args.ingest:
        from repro.service import ServiceApp
        from repro.simulator.config import SimulationConfig

        config = SimulationConfig.preset(args.scale, seed=args.seed)
        app = ServiceApp(config, scale=args.scale)
    server = obs.live.TelemetryServer(
        host=args.host, port=args.port, app=app
    ).start()
    print(f"serving live telemetry on {server.url} (Ctrl-C to stop)")
    print("endpoints: /  /metrics  /healthz  /runs  /runs/<id>  /events")
    if app is not None:
        print(
            "ingest endpoints: POST /ingest  /ingest/status  "
            "/tables[/<name>]  /figures[/<name>]  /fidelity"
        )
    try:
        if args.duration is not None:
            time_mod.sleep(args.duration)
        else:  # pragma: no cover - interactive foreground loop
            while True:
                time_mod.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()
        if app is not None and obs.ledger.ledger_enabled():
            record = obs.ledger.build_record(
                kind="service",
                command="serve",
                config={"scale": args.scale, "seed": args.seed},
                extra={"service": app.state.status()},
            )
            obs.ledger.append_record(record)
    return 0


def _cmd_learning(args: argparse.Namespace) -> int:
    from repro import build_study
    from repro.analysis.learning import learning_curve

    study = build_study(
        args.scale, seed=args.seed, cache=_cache_arg(args), shards=args.shards
    )
    curve = learning_curve(study.released)
    print(
        f"fitted within-batch learning exponent: {curve.learning_exponent:.3f}"
    )
    for rank, value in curve.speedup_at.items():
        print(f"  instance #{rank + 1} of a batch takes {value:.0%} of the first")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the VLDB'17 crowdsourcing-marketplace study.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="export a released dataset")
    _add_common(simulate)
    simulate.add_argument("--out", required=True, help="output directory")
    simulate.set_defaults(func=_cmd_simulate)

    report = sub.add_parser("report", help="print headline findings")
    _add_common(report)
    report.set_defaults(func=_cmd_report)

    plan = sub.add_parser(
        "plan", help="EXPLAIN ANALYZE a representative study query"
    )
    _add_common(plan)
    plan.add_argument(
        "--rows", type=int, default=10,
        help="result rows kept by the query's final head (default: 10)",
    )
    plan.add_argument(
        "--top", type=int, default=5,
        help="operators in the hotspot listing (default: 5)",
    )
    plan.set_defaults(func=_cmd_plan)

    abtest = sub.add_parser("abtest", help="run a design A/B experiment")
    abtest.add_argument(
        "--feature", default="num_examples",
        help="TaskDesign field to vary (default: num_examples)",
    )
    abtest.add_argument(
        "--value", type=int, default=2, help="variant value (default: 2)"
    )
    abtest.add_argument(
        "--batches", type=int, default=40, help="batches per arm (default: 40)"
    )
    abtest.add_argument("--seed", type=int, default=7)
    abtest.set_defaults(func=_cmd_abtest)

    learning = sub.add_parser("learning", help="estimate worker learning")
    _add_common(learning)
    learning.set_defaults(func=_cmd_learning)

    figures = sub.add_parser("figures", help="render all paper figures as SVG")
    _add_common(figures)
    figures.add_argument("--out", required=True, help="output directory")
    figures.set_defaults(func=_cmd_figures)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk study cache"
    )
    cache.add_argument("--clear", action="store_true", help="remove all entries")
    cache.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the text listing",
    )
    cache.set_defaults(func=_cmd_cache)

    trace = sub.add_parser(
        "trace", help="summarize a JSON trace written by a --trace run"
    )
    trace.add_argument(
        "path", nargs="?", default=DEFAULT_TRACE_OUT,
        help=f"trace file to read (default: {DEFAULT_TRACE_OUT})",
    )
    trace.add_argument(
        "--top", type=int, default=30,
        help="span names shown in the summary table (default: 30)",
    )
    trace.add_argument(
        "--no-tree", action="store_true", help="skip the full timing tree"
    )
    trace.add_argument(
        "--json", action="store_true",
        help="emit the per-span aggregates and metrics as JSON",
    )
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="serve live telemetry over HTTP (see repro.obs.live)",
    )
    serve.add_argument(
        "--port", type=int, default=8737,
        help="port to bind on localhost (default: 8737; 0 picks a free one)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="address to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="serve for S seconds then exit (default: until Ctrl-C)",
    )
    serve.add_argument(
        "--ingest", action="store_true",
        help="host the incremental ingest/read data plane (repro.service)",
    )
    serve.add_argument(
        "--scale", choices=SCALES, default="tiny",
        help="scale preset the ingest service expects (default: tiny)",
    )
    serve.add_argument(
        "--seed", type=int, default=7,
        help="seed the ingest service expects (default: 7)",
    )
    serve.set_defaults(func=_cmd_serve)

    runs = sub.add_parser(
        "runs", help="inspect the persistent run ledger (see repro.obs.ledger)"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _add_ledger_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger", default=None, metavar="PATH",
            help="ledger JSONL file (default: $REPRO_LEDGER_DIR/runs.jsonl "
            "or .repro-ledger/runs.jsonl)",
        )

    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    _add_ledger_arg(runs_list)
    runs_list.set_defaults(func=_cmd_runs_list)

    runs_show = runs_sub.add_parser("show", help="show one run in full")
    runs_show.add_argument("run", help="run id, unique prefix, or 'latest'")
    _add_ledger_arg(runs_show)
    runs_show.set_defaults(func=_cmd_runs_show)

    runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs (phase timings + fidelity)"
    )
    runs_diff.add_argument("run_a", help="baseline run id/prefix")
    runs_diff.add_argument("run_b", help="candidate run id/prefix or 'latest'")
    _add_ledger_arg(runs_diff)
    runs_diff.set_defaults(func=_cmd_runs_diff)

    runs_check = runs_sub.add_parser(
        "check",
        help="flag perf/fidelity drift vs rolling baselines (exit 1 on drift)",
    )
    _add_ledger_arg(runs_check)
    runs_check.set_defaults(func=_cmd_runs_check)

    runs_report = runs_sub.add_parser(
        "report", help="write a self-contained HTML dashboard"
    )
    runs_report.add_argument(
        "--out", default="repro_runs.html", help="output HTML path"
    )
    _add_ledger_arg(runs_report)
    runs_report.set_defaults(func=_cmd_runs_report)

    validate = sub.add_parser(
        "validate", help="check a simulated world against the paper's claims"
    )
    _add_common(validate)
    validate.set_defaults(func=_cmd_validate)

    workload = sub.add_parser(
        "workload", help="derive a crowdsourcing benchmark workload (JSON)"
    )
    _add_common(workload)
    workload.add_argument("--out", default=None, help="write JSON here")
    workload.add_argument(
        "--min-support", type=int, default=2,
        help="minimum clusters behind an archetype (default: 2)",
    )
    workload.set_defaults(func=_cmd_workload)

    return parser


def _run_config(args: argparse.Namespace, fault_spec: str | None) -> dict:
    """The configuration block a ledger record captures for this command."""
    import os

    from repro import cache as study_cache, faults, parallel

    from repro.shard.partition import SHARDS_ENV

    raw_workers = os.environ.get(parallel.WORKERS_ENV, "").strip()
    shards = getattr(args, "shards", None)
    if shards is None:
        raw_shards = os.environ.get(SHARDS_ENV, "").strip()
        shards = raw_shards or None
    return {
        "scale": getattr(args, "scale", None),
        "seed": getattr(args, "seed", None),
        "workers": raw_workers or None,
        "shards": shards,
        "faults": fault_spec or os.environ.get(faults.FAULTS_ENV, "").strip() or None,
        "cache": study_cache.cache_enabled(_cache_arg(args)),
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro import faults, obs

    fault_spec = getattr(args, "faults", None)
    if fault_spec is not None:
        try:
            faults.configure(fault_spec)
        except faults.FaultSpecError as exc:
            print(f"invalid --faults spec: {exc}", file=sys.stderr)
            return 2

    want_trace = bool(getattr(args, "trace", False)) or obs.env_enabled()
    if args.command == "trace":
        return args.func(args)
    # Study-building commands record a run in the persistent ledger even
    # without --trace: tracing is enabled internally so the record gets
    # per-phase timings, but nothing is printed or written unless asked.
    record_run = args.command in _STUDY_COMMANDS and obs.ledger.ledger_enabled()
    live_port = getattr(args, "live", None)
    if not want_trace and not record_run and live_port is None:
        return args.func(args)

    # --live serves telemetry for the duration of the command.  The URL
    # goes to stderr only — stdout must stay byte-identical to an unserved
    # run (reproduce_all.sh diffs exactly that) — and tracing is enabled
    # below either way, so span open/close events feed the SSE stream.
    server = None
    if live_port is not None:
        server = obs.live.TelemetryServer(port=live_port).start()
        print(f"live telemetry on {server.url}", file=sys.stderr)
    try:
        obs.enable(
            name=f"repro {args.command}",
            mem=True if getattr(args, "trace_mem", False) else None,
        )
        if record_run:
            obs.ledger.begin_collection()
        # Resource sampling (--sample / REPRO_SAMPLE_MS) rides along
        # silently; its timeline only lands in the ledger record, never on
        # stdout.
        obs.sampler.start(getattr(args, "sample", None))
        try:
            with obs.span(
                f"cli.{args.command}",
                scale=getattr(args, "scale", None),
                seed=getattr(args, "seed", None),
            ):
                rc = args.func(args)
        finally:
            timeline = obs.sampler.stop()
            trace = obs.finish()
            fidelity = obs.ledger.end_collection() if record_run else None
        if trace is None:
            return rc
        doc = obs.trace_to_dict(trace)
        if record_run:
            extra: dict = {"rc": rc}
            # getrusage peak is free and exact, so every run feeds the RSS
            # drift guard; a sampler timeline can only sharpen it upward.
            peak = obs.sampler.peak_rss_mb()
            util = obs.sampler.utilization_from_trace(doc)
            if timeline is not None:
                peak = max(peak, float(timeline.get("peak_rss_mb") or 0.0))
                if util is None:
                    util = obs.sampler.utilization_from_intervals(
                        timeline.get("worker_intervals") or []
                    )
                extra["timeline"] = timeline
            if peak > 0:
                extra["peak_rss_mb"] = round(peak, 3)
            if util is not None:
                extra["utilization"] = util
            record = obs.ledger.build_record(
                kind="study",
                command=args.command,
                config=_run_config(args, fault_spec),
                trace_doc=doc,
                fidelity=fidelity,
                extra=extra,
            )
            obs.ledger.append_record(record)
        if want_trace:
            out = getattr(args, "trace_out", None) or DEFAULT_TRACE_OUT
            path = obs.write_trace_json(doc, out)
            print()
            print("== trace ==")
            print(obs.render_tree(doc))
            print(f"trace written to {path}")
        return rc
    finally:
        if server is not None:
            server.stop()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
