"""Minimal HTML tokenizer, DOM, and task-interface feature extraction.

The marketplace released one sample task interface (raw HTML) per batch; the
paper derives its §4 *design parameters* (``#words``, ``#text-box``,
``#examples``, ``#images``) from that source.  This subpackage implements the
parsing and extraction from scratch — no external HTML libraries exist in
this environment.
"""

from repro.html.features import InterfaceFeatures, extract_features
from repro.html.parser import Element, TextNode, parse_html, tokenize

__all__ = [
    "Element",
    "InterfaceFeatures",
    "TextNode",
    "extract_features",
    "parse_html",
    "tokenize",
]
