"""Design-parameter extraction from task-interface HTML (paper §2.4, §4).

The features mirror the paper's definitions:

``num_words``
    Number of whitespace-separated words in the rendered text of the page
    ("the number of words in the HTML page").
``num_text_boxes``
    Count of free-form text inputs: ``<textarea>`` plus ``<input>`` whose
    ``type`` is ``text`` (or missing, the HTML default).
``num_examples``
    The paper counts occurrences of the word "example" *wrapped in a tag of
    its own*, i.e. prominently displayed — not mentions buried inside longer
    prose.  We count elements whose own text, stripped, is exactly the word
    "example"/"examples" (case-insensitive, optional trailing colon or
    numbering such as "Example 1:").
``num_images``
    Count of ``<img>`` tags.
``num_input_fields``
    All worker-facing inputs: text boxes, radios, checkboxes, selects.
``num_radio_buttons`` / ``num_checkboxes`` / ``num_selects``
    Individual input-mechanism counts.
``has_instructions``
    True when an element carries an ``instructions`` class/id or an
    ``<h1>–<h6>`` heading announcing instructions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.html.parser import Element, parse_html

_EXAMPLE_RE = re.compile(r"^examples?(\s+\d+)?\s*:?\s*$", re.IGNORECASE)
_INSTRUCTIONS_RE = re.compile(r"instruction", re.IGNORECASE)
_WORD_RE = re.compile(r"\S+")

#: Tags whose text is not shown to workers and is excluded from word counts.
_NON_RENDERED_TAGS = frozenset({"script", "style", "head", "title"})


@dataclass(frozen=True)
class InterfaceFeatures:
    """Design parameters of one task interface."""

    num_words: int
    num_text_boxes: int
    num_examples: int
    num_images: int
    num_radio_buttons: int
    num_checkboxes: int
    num_selects: int
    num_input_fields: int
    has_instructions: bool

    def as_dict(self) -> dict[str, int | bool]:
        return {
            "num_words": self.num_words,
            "num_text_boxes": self.num_text_boxes,
            "num_examples": self.num_examples,
            "num_images": self.num_images,
            "num_radio_buttons": self.num_radio_buttons,
            "num_checkboxes": self.num_checkboxes,
            "num_selects": self.num_selects,
            "num_input_fields": self.num_input_fields,
            "has_instructions": self.has_instructions,
        }


def _rendered_text(element: Element) -> str:
    if element.tag in _NON_RENDERED_TAGS:
        return ""
    parts: list[str] = []
    for child in element.children:
        if isinstance(child, Element):
            parts.append(_rendered_text(child))
        else:
            parts.append(child.text)
    return " ".join(parts)


def _count_words(root: Element) -> int:
    return len(_WORD_RE.findall(_rendered_text(root)))


def _is_example_marker(element: Element) -> bool:
    own = element.own_text().strip()
    return bool(own) and _EXAMPLE_RE.match(own) is not None


def _announces_instructions(element: Element) -> bool:
    if _INSTRUCTIONS_RE.search(element.attr("class")) or _INSTRUCTIONS_RE.search(
        element.attr("id")
    ):
        return True
    if element.tag in ("h1", "h2", "h3", "h4", "h5", "h6"):
        return _INSTRUCTIONS_RE.search(element.own_text()) is not None
    return False


def extract_features(html: str | Element) -> InterfaceFeatures:
    """Extract :class:`InterfaceFeatures` from HTML source or a parsed tree."""
    root = parse_html(html) if isinstance(html, str) else html

    num_text_boxes = 0
    num_radio = 0
    num_checkbox = 0
    num_select = 0
    num_images = 0
    num_examples = 0
    has_instructions = False

    for element in root.iter_elements():
        tag = element.tag
        if tag == "textarea":
            num_text_boxes += 1
        elif tag == "input":
            input_type = element.attr("type", "text").lower()
            if input_type in ("text", "", "search", "email", "url"):
                num_text_boxes += 1
            elif input_type == "radio":
                num_radio += 1
            elif input_type == "checkbox":
                num_checkbox += 1
        elif tag == "select":
            num_select += 1
        elif tag == "img":
            num_images += 1
        if _is_example_marker(element):
            num_examples += 1
        if not has_instructions and _announces_instructions(element):
            has_instructions = True

    return InterfaceFeatures(
        num_words=_count_words(root),
        num_text_boxes=num_text_boxes,
        num_examples=num_examples,
        num_images=num_images,
        num_radio_buttons=num_radio,
        num_checkboxes=num_checkbox,
        num_selects=num_select,
        num_input_fields=num_text_boxes + num_radio + num_checkbox + num_select,
        has_instructions=has_instructions,
    )
