"""A small, forgiving HTML parser.

Supports the subset of HTML that task interfaces use: nested elements with
attributes, void elements (``<img>``, ``<input>``, ``<br>``...), comments,
and text.  Mismatched close tags are recovered from by popping up the open
stack (browser-style), so slightly malformed requester HTML still parses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Union

#: Elements that never have children and need no close tag.
VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)

_TAG_RE = re.compile(r"<(/?)([a-zA-Z][a-zA-Z0-9-]*)((?:[^>\"']|\"[^\"]*\"|'[^']*')*?)(/?)>")
_ATTR_RE = re.compile(
    r"([a-zA-Z_:][-a-zA-Z0-9_:.]*)(?:\s*=\s*(\"[^\"]*\"|'[^']*'|[^\s\"'>]+))?"
)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DOCTYPE_RE = re.compile(r"<!DOCTYPE[^>]*>", re.IGNORECASE)


@dataclass
class TextNode:
    """A run of character data between tags."""

    text: str


@dataclass
class Element:
    """An HTML element with attributes and ordered children."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list[Union["Element", TextNode]] = field(default_factory=list)

    # ------------------------------------------------------------------ #

    def iter_elements(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter_elements()

    def find_all(self, tag: str) -> list["Element"]:
        """All descendant elements (including self) with the given tag."""
        tag = tag.lower()
        return [e for e in self.iter_elements() if e.tag == tag]

    def text_content(self) -> str:
        """Concatenated text of all descendant text nodes."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            else:
                parts.append(child.text_content())
        return "".join(parts)

    def own_text(self) -> str:
        """Text directly inside this element (not descendants)."""
        return "".join(c.text for c in self.children if isinstance(c, TextNode))

    def attr(self, name: str, default: str = "") -> str:
        return self.attributes.get(name.lower(), default)


def _parse_attributes(raw: str) -> dict[str, str]:
    attributes: dict[str, str] = {}
    for match in _ATTR_RE.finditer(raw):
        name = match.group(1).lower()
        value = match.group(2)
        if value is None:
            attributes[name] = ""
        elif value and value[0] in "\"'":
            attributes[name] = value[1:-1]
        else:
            attributes[name] = value
    return attributes


Token = tuple  # (kind, payload) pairs; see tokenize()


def tokenize(html: str) -> list[Token]:
    """Lex HTML into ``("open"|"close"|"selfclose", tag, attrs)`` and
    ``("text", payload)`` tokens.  Comments and doctype are discarded."""
    html = _COMMENT_RE.sub("", html)
    html = _DOCTYPE_RE.sub("", html)
    tokens: list[Token] = []
    pos = 0
    for match in _TAG_RE.finditer(html):
        if match.start() > pos:
            text = html[pos:match.start()]
            if text:
                tokens.append(("text", text))
        closing, tag, raw_attrs, self_closing = match.groups()
        tag = tag.lower()
        if closing:
            tokens.append(("close", tag, {}))
        elif self_closing or tag in VOID_ELEMENTS:
            tokens.append(("selfclose", tag, _parse_attributes(raw_attrs)))
        else:
            tokens.append(("open", tag, _parse_attributes(raw_attrs)))
        pos = match.end()
    if pos < len(html):
        tail = html[pos:]
        if tail:
            tokens.append(("text", tail))
    return tokens


def parse_html(html: str) -> Element:
    """Parse HTML into a tree rooted at a synthetic ``<root>`` element.

    Recovery rules for malformed input: a close tag with no matching open is
    ignored; a close tag matching a non-top open element pops everything
    above it (implicitly closing unclosed children).
    """
    root = Element(tag="root")
    stack: list[Element] = [root]
    for token in tokenize(html):
        kind = token[0]
        if kind == "text":
            text = token[1]
            if text.strip():
                stack[-1].children.append(TextNode(text))
        elif kind == "selfclose":
            _, tag, attrs = token
            stack[-1].children.append(Element(tag=tag, attributes=attrs))
        elif kind == "open":
            _, tag, attrs = token
            element = Element(tag=tag, attributes=attrs)
            stack[-1].children.append(element)
            stack.append(element)
        else:  # close
            tag = token[1]
            for depth in range(len(stack) - 1, 0, -1):
                if stack[depth].tag == tag:
                    del stack[depth:]
                    break
            # No match: stray close tag, ignored.
    return root
