"""repro — a full reproduction of the VLDB 2017 crowdsourcing-marketplace study.

The package reproduces *"Understanding Workers, Developing Effective Tasks,
and Enhancing Marketplace Dynamics: A Study of a Large Crowdsourcing
Marketplace"* (Jain, Das Sarma, Parameswaran, Widom).  The paper analyzed a
proprietary dump of a commercial marketplace; this package substitutes a
seeded generative simulator for that dataset and re-implements every analysis
in the paper on top of it.

Layered architecture (each layer only sees the ones below it):

1. Substrates — :mod:`repro.tables` (columnar engine), :mod:`repro.stats`
   (statistics), :mod:`repro.html` (HTML parsing/feature extraction),
   :mod:`repro.ml` (decision tree + CV), :mod:`repro.taxonomy` (label space).
2. Data generation — :mod:`repro.htmlgen` (task interface generator),
   :mod:`repro.simulator` (the marketplace model), :mod:`repro.dataset`
   (the released-data schema and sampling).
3. Enrichment — :mod:`repro.enrichment` (clustering, design parameters,
   performance metrics, simulated labeling).
4. Analyses — :mod:`repro.analysis` (marketplace, task design, prediction,
   workers) and :mod:`repro.figures` (one entry point per paper
   figure/table).

Quickstart::

    from repro import build_study

    study = build_study(scale="tiny", seed=7)
    fig3 = study.figures.fig03_weekday()
"""

from repro.study import Study, build_study

__version__ = "1.0.0"

__all__ = ["Study", "build_study", "__version__"]
