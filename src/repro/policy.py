"""Marketplace-policy experiments on the simulator.

The paper's §3.1–§3.2 discussion is aimed at marketplace *administrators*:
how should the platform balance its push/pull routing and its dedicated vs
on-demand labor pools?  ("Striking a good balance between the two task
routing mechanisms and worker pools is crucial...")

This module turns those questions into runnable experiments: a policy is a
set of calibration overrides (e.g. a bigger power-worker pool, a higher
casual share); :func:`run_policy_experiment` simulates each variant on the
same seed and reports the operational metrics an administrator watches —
median pickup latency, distinct active workers, and workload concentration.

Model limitation worth knowing: pickup times in the generative model are
driven by demand (weekly load) and task design, *not* by pool composition —
so policies move the workforce metrics but leave latency untouched.  The
latency columns are reported anyway so the invariance is visible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.analysis import workers as wk
from repro.dataset.release import release_dataset
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import simulate_marketplace
from repro.stats.timeseries import week_index


@dataclass(frozen=True)
class PolicyOutcome:
    """Operational metrics of one simulated policy."""

    name: str
    median_pickup_seconds: float
    p90_pickup_seconds: float
    mean_weekly_active_workers: float
    top10_task_share: float
    one_day_task_share: float

    def as_dict(self) -> dict[str, float | str]:
        return {
            "policy": self.name,
            "median_pickup_s": round(self.median_pickup_seconds, 1),
            "p90_pickup_s": round(self.p90_pickup_seconds, 1),
            "weekly_active_workers": round(self.mean_weekly_active_workers, 1),
            "top10_task_share": round(self.top10_task_share, 3),
            "one_day_task_share": round(self.one_day_task_share, 4),
        }


def _evaluate(name: str, config: SimulationConfig) -> PolicyOutcome:
    state = simulate_marketplace(config)
    released = release_dataset(state, config)
    instances = released.instances

    batch_created = np.zeros(
        int(released.batch_catalog["batch_id"].max()) + 1, dtype=np.float64
    )
    batch_created[released.batch_catalog["batch_id"]] = released.batch_catalog[
        "created_at"
    ]
    pickup = (
        instances["start_time"].astype(np.float64)
        - batch_created[instances["batch_id"]]
    )

    weeks = week_index(instances["start_time"])
    switch = config.regime_switch_week
    post = weeks >= switch
    active_per_week: list[int] = []
    for week in range(switch, config.num_weeks):
        mask = weeks == week
        if mask.any():
            active_per_week.append(len(np.unique(instances["worker_id"][mask])))

    profiles = wk.worker_profiles(released)
    concentration = wk.workload_concentration(profiles)

    return PolicyOutcome(
        name=name,
        median_pickup_seconds=float(np.median(pickup[post])),
        p90_pickup_seconds=float(np.percentile(pickup[post], 90)),
        mean_weekly_active_workers=float(np.mean(active_per_week))
        if active_per_week
        else 0.0,
        top10_task_share=concentration.top10_task_share,
        one_day_task_share=concentration.one_day_task_share,
    )


def run_policy_experiment(
    policies: Mapping[str, Mapping[str, object]],
    *,
    base: SimulationConfig | None = None,
    include_baseline: bool = True,
) -> list[PolicyOutcome]:
    """Simulate each policy and return its operational metrics.

    ``policies`` maps a policy name to :class:`Calibration` field overrides
    (e.g. ``{"bigger core": {"engagement_mix": (0.5, 0.33, 0.09, 0.08)}}``).
    All variants share the base config's seed, so differences are caused by
    the policy.
    """
    base = base or SimulationConfig.preset("tiny", seed=7)
    outcomes: list[PolicyOutcome] = []
    if include_baseline:
        outcomes.append(_evaluate("baseline", base))
    for name, overrides in policies.items():
        calibration = dataclasses.replace(base.calibration, **overrides)
        config = dataclasses.replace(base, calibration=calibration)
        outcomes.append(_evaluate(name, config))
    return outcomes
