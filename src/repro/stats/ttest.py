"""Welch's two-sample t-test, as used in the paper's §4.2 methodology.

The paper bins clusters at the median feature value and runs a t-test between
the two bins' metric values, rejecting the null (equal means) when
``p < 0.01``.  We implement the test from first principles: the t statistic
with Welch–Satterthwaite degrees of freedom, and the two-sided p-value via the
regularized incomplete beta function (evaluated with Lentz's continued
fraction, as in Numerical Recipes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: The significance threshold the paper uses throughout Section 4.
PAPER_SIGNIFICANCE_LEVEL = 0.01


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a Welch t-test between two samples."""

    statistic: float
    p_value: float
    dof: float
    mean_a: float
    mean_b: float

    def significant(self, alpha: float = PAPER_SIGNIFICANCE_LEVEL) -> bool:
        """True when the null hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz's method)."""
    max_iterations = 300
    epsilon = 3.0e-14
    tiny = 1.0e-300

    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            return h
    raise ArithmeticError("incomplete beta continued fraction did not converge")


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), the regularized incomplete beta function."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, dof: float) -> float:
    """Survival function P(T > t) of the Student-t distribution."""
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    if math.isinf(t):
        return 0.0 if t > 0 else 1.0
    x = dof / (dof + t * t)
    tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x)
    return tail if t >= 0 else 1.0 - tail


def welch_t_test(sample_a, sample_b) -> TTestResult:
    """Welch's unequal-variance t-test; two-sided p-value.

    NaNs are dropped.  Each sample needs at least two finite observations
    and at least one of the samples must have positive variance.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if a.size < 2 or b.size < 2:
        raise ValueError(
            f"welch_t_test needs >=2 observations per sample, got {a.size}, {b.size}"
        )
    mean_a, mean_b = float(a.mean()), float(b.mean())
    var_a = float(a.var(ddof=1))
    var_b = float(b.var(ddof=1))
    se_sq = var_a / a.size + var_b / b.size
    if se_sq == 0.0:
        # Identical constants: either exactly equal (p=1) or trivially
        # different (p=0).
        p = 1.0 if mean_a == mean_b else 0.0
        return TTestResult(
            statistic=0.0 if mean_a == mean_b
            else math.copysign(math.inf, mean_a - mean_b),
            p_value=p,
            dof=float(a.size + b.size - 2),
            mean_a=mean_a,
            mean_b=mean_b,
        )
    t_stat = (mean_a - mean_b) / math.sqrt(se_sq)
    denominator = (
        (var_a / a.size) ** 2 / (a.size - 1) + (var_b / b.size) ** 2 / (b.size - 1)
    )
    if denominator == 0.0:
        # Vanishing variances underflow the Welch–Satterthwaite terms; fall
        # back to the pooled degrees of freedom.
        dof = float(a.size + b.size - 2)
    else:
        dof = se_sq**2 / denominator
    p_value = 2.0 * student_t_sf(abs(t_stat), dof)
    p_value = min(1.0, max(0.0, p_value))
    return TTestResult(
        statistic=float(t_stat),
        p_value=float(p_value),
        dof=float(dof),
        mean_a=mean_a,
        mean_b=mean_b,
    )
