"""Descriptive statistics used throughout the analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _clean(values) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        array = array.ravel()
    return array[~np.isnan(array)]


def median(values) -> float:
    """Median ignoring NaNs; NaN for empty input."""
    array = _clean(values)
    if array.size == 0:
        return float("nan")
    return float(np.median(array))


def percentile(values, q: float) -> float:
    """q-th percentile (0–100) ignoring NaNs; NaN for empty input."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    array = _clean(values)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, q))


def iqr(values) -> float:
    """Interquartile range (P75 - P25)."""
    array = _clean(values)
    if array.size == 0:
        return float("nan")
    return float(np.percentile(array, 75) - np.percentile(array, 25))


def gini_coefficient(values) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal, →1 = skewed).

    Used to quantify workload concentration across workers ("top 10% of
    workers complete >80% of tasks").
    """
    array = _clean(values)
    if array.size == 0:
        return float("nan")
    if np.any(array < 0):
        raise ValueError("gini requires non-negative values")
    total = array.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(array)
    n = sorted_values.size
    cum = np.cumsum(sorted_values)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / cum[-1]) / n
    return float((n + 1 - 2 * cum.sum() / cum[-1]) / n)


def top_share(values, fraction: float) -> float:
    """Share of the total owned by the top ``fraction`` of entries.

    ``top_share(tasks_per_worker, 0.10)`` answers "what fraction of all tasks
    is done by the top-10% of workers" — the paper's §5.2 headline is ≈0.8.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    array = _clean(values)
    if array.size == 0:
        return float("nan")
    total = array.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(fraction * array.size)))
    top = np.sort(array)[::-1][:k]
    return float(top.sum() / total)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "max": self.maximum,
        }


def summarize(values) -> Summary:
    """Compute a :class:`Summary`; NaNs are ignored."""
    array = _clean(values)
    if array.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        p25=float(np.percentile(array, 25)),
        median=float(np.median(array)),
        p75=float(np.percentile(array, 75)),
        maximum=float(array.max()),
    )
