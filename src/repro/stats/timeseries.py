"""Calendar bucketing for the weekly/daily time-series plots.

All timestamps in the reproduction are seconds since the *marketplace epoch*,
which is defined to be **Monday, July 2, 2012, 00:00** — the start of the
first week covered by the dataset.  Keeping the epoch on a Monday makes
day-of-week arithmetic trivial.
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

DAY_SECONDS = 86_400
WEEK_SECONDS = 7 * DAY_SECONDS

#: Marketplace epoch as a real calendar date (Monday).
EPOCH_DATE = _dt.date(2012, 7, 2)

DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def week_index(timestamps) -> np.ndarray:
    """Week number (0-based) of each timestamp since the marketplace epoch."""
    t = np.asarray(timestamps, dtype=np.int64)
    if np.any(t < 0):
        raise ValueError("timestamps must be non-negative (seconds since epoch)")
    return t // WEEK_SECONDS


def day_index(timestamps) -> np.ndarray:
    """Day number (0-based) of each timestamp since the marketplace epoch."""
    t = np.asarray(timestamps, dtype=np.int64)
    if np.any(t < 0):
        raise ValueError("timestamps must be non-negative (seconds since epoch)")
    return t // DAY_SECONDS


def day_of_week(timestamps) -> np.ndarray:
    """0=Mon .. 6=Sun for each timestamp (the epoch is a Monday)."""
    return day_index(timestamps) % 7


def week_start_date(week: int) -> _dt.date:
    """Calendar date of the Monday starting the given week index."""
    return EPOCH_DATE + _dt.timedelta(weeks=int(week))


def date_to_timestamp(date: _dt.date) -> int:
    """Seconds since the marketplace epoch at midnight of ``date``."""
    delta = date - EPOCH_DATE
    if delta.days < 0:
        raise ValueError(f"{date} precedes the marketplace epoch {EPOCH_DATE}")
    return delta.days * DAY_SECONDS


def bucket_by_week(timestamps, *, num_weeks: int | None = None,
                   weights=None) -> np.ndarray:
    """Per-week totals: counts, or sums of ``weights`` when provided.

    The result has ``num_weeks`` entries (default: enough to cover the data).
    """
    weeks = week_index(timestamps)
    if num_weeks is None:
        num_weeks = int(weeks.max()) + 1 if weeks.size else 0
    if weights is None:
        return np.bincount(weeks, minlength=num_weeks).astype(np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    return np.bincount(weeks, weights=weights, minlength=num_weeks)


def bucket_by_day(timestamps, *, num_days: int | None = None,
                  weights=None) -> np.ndarray:
    """Per-day totals, analogous to :func:`bucket_by_week`."""
    days = day_index(timestamps)
    if num_days is None:
        num_days = int(days.max()) + 1 if days.size else 0
    if weights is None:
        return np.bincount(days, minlength=num_days).astype(np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    return np.bincount(days, weights=weights, minlength=num_days)


def day_of_week_totals(timestamps) -> np.ndarray:
    """Total event counts per weekday (length-7 array, Mon..Sun)."""
    return np.bincount(day_of_week(timestamps), minlength=7).astype(np.float64)


def cumulative_series(timestamps, *, num_weeks: int | None = None) -> np.ndarray:
    """Cumulative event count by the end of each week (Figures 8 and 12)."""
    weekly = bucket_by_week(timestamps, num_weeks=num_weeks)
    return np.cumsum(weekly)
