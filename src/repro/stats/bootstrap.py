"""Bootstrap confidence intervals for medians and arbitrary statistics.

The paper reports bin medians without uncertainty; when the reproduction's
sample sizes are small (drill-downs, A/B arms), a percentile-bootstrap CI
communicates how solid a median difference is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    num_resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @ {self.confidence:.0%}"
        )


def bootstrap_interval(
    sample,
    statistic: Callable[[np.ndarray], float] = np.median,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Percentile-bootstrap CI of ``statistic`` over ``sample``.

    NaNs are dropped.  Requires at least 3 finite observations.
    """
    if not 0.5 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0.5, 1), got {confidence}")
    if num_resamples < 100:
        raise ValueError(f"num_resamples must be >= 100, got {num_resamples}")
    array = np.asarray(sample, dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size < 3:
        raise ValueError(
            f"bootstrap needs >= 3 finite observations, got {array.size}"
        )
    rng = rng or np.random.default_rng(0)

    indices = rng.integers(0, array.size, size=(num_resamples, array.size))
    replicates = np.array([statistic(array[row]) for row in indices])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(statistic(array)),
        low=float(np.percentile(replicates, 100 * alpha)),
        high=float(np.percentile(replicates, 100 * (1 - alpha))),
        confidence=confidence,
        num_resamples=num_resamples,
    )


def bootstrap_difference(
    sample_a,
    sample_b,
    statistic: Callable[[np.ndarray], float] = np.median,
    *,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """CI for ``statistic(B) - statistic(A)`` under independent resampling.

    A CI excluding zero corroborates a significant difference (the §4.2
    t-tests compare means; this is the median-level counterpart).
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if a.size < 3 or b.size < 3:
        raise ValueError("bootstrap_difference needs >= 3 observations per sample")
    rng = rng or np.random.default_rng(0)

    idx_a = rng.integers(0, a.size, size=(num_resamples, a.size))
    idx_b = rng.integers(0, b.size, size=(num_resamples, b.size))
    replicates = np.array(
        [statistic(b[rb]) - statistic(a[ra]) for ra, rb in zip(idx_a, idx_b)]
    )
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(statistic(b) - statistic(a)),
        low=float(np.percentile(replicates, 100 * alpha)),
        high=float(np.percentile(replicates, 100 * (1 - alpha))),
        confidence=confidence,
        num_resamples=num_resamples,
    )
