"""Statistics substrate: descriptive stats, Welch's t-test, CDFs, histograms.

Everything here is implemented from first principles on numpy (the t-test's
p-value uses an incomplete-beta evaluation of the Student-t survival
function); tests cross-check against scipy where it is available.
"""

from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_difference,
    bootstrap_interval,
)
from repro.stats.cdf import EmpiricalCDF, cdf_dominates
from repro.stats.descriptive import (
    gini_coefficient,
    iqr,
    median,
    percentile,
    summarize,
    top_share,
)
from repro.stats.histogram import Histogram, linear_histogram, log_histogram
from repro.stats.timeseries import (
    WEEK_SECONDS,
    bucket_by_day,
    bucket_by_week,
    cumulative_series,
    day_of_week,
    week_index,
)
from repro.stats.ttest import TTestResult, welch_t_test

__all__ = [
    "BootstrapInterval",
    "EmpiricalCDF",
    "bootstrap_difference",
    "bootstrap_interval",
    "Histogram",
    "TTestResult",
    "WEEK_SECONDS",
    "bucket_by_day",
    "bucket_by_week",
    "cdf_dominates",
    "cumulative_series",
    "day_of_week",
    "gini_coefficient",
    "iqr",
    "linear_histogram",
    "log_histogram",
    "median",
    "percentile",
    "summarize",
    "top_share",
    "week_index",
    "welch_t_test",
]
