"""Linear- and log-binned histograms for the paper's distribution plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """Bin edges plus counts; ``edges`` has one more entry than ``counts``."""

    edges: np.ndarray = field(repr=False)
    counts: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise ValueError(
                f"{len(self.edges)} edges incompatible with {len(self.counts)} counts"
            )

    @property
    def num_bins(self) -> int:
        return int(self.counts.size)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def bin_centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def fractions(self) -> np.ndarray:
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def as_pairs(self) -> list[tuple[float, int]]:
        """(bin lower edge, count) pairs — convenient for text reporting."""
        return [(float(e), int(c)) for e, c in zip(self.edges[:-1], self.counts)]

    @classmethod
    def merge(cls, parts: "Sequence[Histogram]") -> "Histogram":
        """Sum of histograms over *identical* bin edges.

        Counts are integers, so the merge is exact, associative,
        commutative, and partition-invariant — the streaming-merge kernel
        the sharded pipeline (:mod:`repro.shard`) uses to pool per-shard
        histograms.  Raises if any part disagrees on the edges.
        """
        if not parts:
            raise ValueError("cannot merge zero histograms")
        edges = parts[0].edges
        for p in parts[1:]:
            if len(p.edges) != len(edges) or not np.array_equal(p.edges, edges):
                raise ValueError("histogram merge requires identical bin edges")
        counts = np.sum([p.counts for p in parts], axis=0).astype(np.int64)
        return cls(edges=edges, counts=counts)


def linear_histogram(values, *, bins: int = 20, lo: float | None = None,
                     hi: float | None = None) -> Histogram:
    """Histogram with equal-width bins over [lo, hi] (defaults to data range)."""
    array = np.asarray(values, dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        raise ValueError("cannot histogram an empty sample")
    lo = float(array.min()) if lo is None else lo
    hi = float(array.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + 1.0
    counts, edges = np.histogram(array, bins=bins, range=(lo, hi))
    return Histogram(edges=edges, counts=counts.astype(np.int64))


def log_histogram(values, *, bins_per_decade: int = 1) -> Histogram:
    """Histogram with logarithmic bins, as in the paper's Figures 6, 7, 29.

    Bins start at 1 (values below 1 are clipped into the first bin) and step by
    factors of ``10 ** (1 / bins_per_decade)``.
    """
    array = np.asarray(values, dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if np.any(array < 0):
        raise ValueError("log histogram requires non-negative values")
    clipped = np.maximum(array, 1.0)
    top = float(clipped.max())
    decades = int(np.ceil(np.log10(top))) + 1 if top > 1 else 1
    num_bins = max(1, decades * bins_per_decade)
    edges = np.power(10.0, np.arange(num_bins + 1) / bins_per_decade)
    counts, _ = np.histogram(clipped, bins=edges)
    return Histogram(edges=edges, counts=counts.astype(np.int64))
