"""Empirical CDFs, the paper's §4 visualization primitive.

The paper's CDF plots put the metric on the x-axis and ``P(metric <= x)`` on
the y-axis, one line per feature bin; "the higher line is better" because the
metrics are all costs (disagreement, task-time, pickup-time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """Right-continuous empirical distribution function of a sample."""

    support: np.ndarray = field(repr=False)
    probabilities: np.ndarray = field(repr=False)

    @classmethod
    def from_sample(cls, values) -> "EmpiricalCDF":
        array = np.asarray(values, dtype=np.float64)
        array = array[~np.isnan(array)]
        if array.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        support = np.sort(array)
        probabilities = np.arange(1, array.size + 1, dtype=np.float64) / array.size
        return cls(support=support, probabilities=probabilities)

    @classmethod
    def merge(cls, parts: "Sequence[EmpiricalCDF]") -> "EmpiricalCDF":
        """Exact CDF of the pooled sample underlying ``parts``.

        An empirical CDF *is* its sorted sample, so merging is a sorted
        union of the supports: ``merge([from_sample(a), from_sample(b)])``
        equals ``from_sample(concat(a, b))`` bit for bit, regardless of how
        the sample was partitioned or in which order parts are merged.
        This is the streaming-merge kernel the sharded pipeline
        (:mod:`repro.shard`) uses to pool per-shard distributions.
        """
        if not parts:
            raise ValueError("cannot merge zero CDFs")
        pooled = np.sort(np.concatenate([p.support for p in parts]))
        probabilities = (
            np.arange(1, pooled.size + 1, dtype=np.float64) / pooled.size
        )
        return cls(support=pooled, probabilities=probabilities)

    @property
    def sample_size(self) -> int:
        return int(self.support.size)

    def evaluate(self, x) -> np.ndarray:
        """P(X <= x), vectorized over ``x``."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.support, x, side="right")
        return np.where(idx == 0, 0.0, self.probabilities[np.maximum(idx - 1, 0)]) * (
            idx > 0
        )

    def quantile(self, q: float) -> float:
        """Inverse CDF at probability ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        idx = int(np.searchsorted(self.probabilities, q, side="left"))
        idx = min(idx, self.support.size - 1)
        return float(self.support[idx])

    def median(self) -> float:
        return self.quantile(0.5)

    def series(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) arrays for plotting, evaluated on an even grid of the range."""
        lo, hi = float(self.support[0]), float(self.support[-1])
        if lo == hi:
            xs = np.array([lo])
        else:
            xs = np.linspace(lo, hi, points)
        return xs, self.evaluate(xs)


def cdf_dominates(
    better: EmpiricalCDF, worse: EmpiricalCDF, *, points: int = 200, slack: float = 0.02
) -> bool:
    """True if ``better`` (stochastically smaller) lies above ``worse``.

    Evaluated on a shared grid spanning both supports; ``slack`` tolerates
    small crossings, matching the visual reading of the paper's CDF plots.
    """
    lo = min(better.support[0], worse.support[0])
    hi = max(better.support[-1], worse.support[-1])
    xs = np.linspace(lo, hi, points) if hi > lo else np.array([lo])
    return bool(np.all(better.evaluate(xs) >= worse.evaluate(xs) - slack))
