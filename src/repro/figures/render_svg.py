"""Render every paper figure as a standalone SVG file.

``render_all_figures(figure_suite, out_dir)`` regenerates the paper's plots
as vector images (no plotting library exists in this environment; see
:mod:`repro.reporting.svg`).  File names follow the paper's numbering.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.figures.suite import FigureSuite
from repro.reporting.svg import (
    bar_chart,
    cdf_chart,
    line_chart,
    scatter_log_log,
    stacked_bar_chart,
)


def _write(out_dir: Path, name: str, svg: str, written: list[Path]) -> None:
    path = out_dir / f"{name}.svg"
    path.write_text(svg)
    written.append(path)


def render_all_figures(figures: FigureSuite, out_dir: str | Path) -> list[Path]:
    """Write every figure's SVG under ``out_dir``; returns the paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    weeks = np.arange(figures.num_weeks)
    switch = float(figures.regime_week)

    # Figure 1 — sampling coverage.
    fig01 = figures.fig01_sampling()
    _write(out_dir, "fig01_sampling", line_chart(
        {"all": (weeks, fig01["all"]), "sampled": (weeks, fig01["sampled"])},
        title="Figure 1: distinct tasks sampled vs all (weekly)",
        x_label="week", y_label="# distinct tasks",
        marker_x=switch, marker_label="Jan 2015",
    ), written)

    # Figure 2 — arrivals and pickup time.
    fig02 = figures.fig02_arrivals()
    _write(out_dir, "fig02a_arrivals", line_chart(
        {
            "instances issued": (weeks, fig02["instances_issued"]),
            "instances completed": (weeks, fig02["instances_completed"]),
        },
        title="Figure 2a: task-instance arrivals and completions",
        x_label="week", y_label="# instances",
        marker_x=switch, marker_label="Jan 2015",
    ), written)
    _write(out_dir, "fig02a_pickup", line_chart(
        {"median pickup time": (weeks, fig02["median_pickup_time"])},
        title="Figure 2a (overlay): median pickup time per week",
        x_label="week", y_label="seconds", y_log=True,
        marker_x=switch, marker_label="Jan 2015",
    ), written)
    _write(out_dir, "fig02b_batches", line_chart(
        {
            "batches issued": (weeks, fig02["batches_issued"]),
            "distinct tasks": (weeks, fig02["distinct_tasks_issued"]),
        },
        title="Figure 2b: batch and distinct-task arrivals",
        x_label="week", y_label="count",
        marker_x=switch, marker_label="Jan 2015",
    ), written)

    # Figure 3 — weekday distribution.
    fig03 = figures.fig03_weekday()
    _write(out_dir, "fig03_weekday", bar_chart(
        dict(zip(fig03["days"], fig03["instances"])),
        title="Figure 3: instances issued by day of week",
        y_label="# instances",
    ), written)

    # Figure 4 — worker availability.
    fig04 = figures.fig04_workers()
    _write(out_dir, "fig04_workers", line_chart(
        {"active workers": (weeks, fig04["active_workers"])},
        title="Figure 4: distinct workers performing tasks per week",
        x_label="week", y_label="# workers",
        marker_x=switch, marker_label="Jan 2015",
    ), written)

    # Figure 5 — engagement split.
    fig05 = figures.fig05_engagement()
    _write(out_dir, "fig05_tasks_split", line_chart(
        {
            "top-10% workers": (weeks, fig05["tasks_top10"]),
            "bottom-90% workers": (weeks, fig05["tasks_bottom90"]),
        },
        title="Figure 5b: weekly tasks by worker tier",
        x_label="week", y_label="# tasks",
    ), written)
    _write(out_dir, "fig05_active_time", line_chart(
        {
            "top-10% workers": (weeks, fig05["active_time_top10"]),
            "bottom-90% workers": (weeks, fig05["active_time_bottom90"]),
        },
        title="Figure 5b: mean active time per worker-week",
        x_label="week", y_label="seconds",
    ), written)

    # Figures 6 & 7 — cluster distributions (log-log).
    fig06 = figures.fig06_cluster_sizes()
    pairs6 = [(e, c) for e, c in fig06["histogram"] if c > 0]
    _write(out_dir, "fig06_cluster_sizes", scatter_log_log(
        [e for e, _ in pairs6], [c for _, c in pairs6],
        title="Figure 6: distribution of cluster sizes",
        x_label="cluster size (batches)", y_label="# clusters",
    ), written)
    fig07 = figures.fig07_tasks_per_cluster()
    pairs7 = [(e, c) for e, c in fig07["histogram"] if c > 0]
    _write(out_dir, "fig07_tasks_per_cluster", scatter_log_log(
        [e for e, _ in pairs7], [c for _, c in pairs7],
        title="Figure 7: distribution of tasks across clusters",
        x_label="# instances in cluster", y_label="# clusters",
    ), written)

    # Figure 8 — heavy hitters.
    fig08 = figures.fig08_heavy_hitters()
    series = {
        f"cluster {cluster}": (weeks, np.maximum(curve, 1e-3))
        for cluster, curve in fig08["curves"].items()
    }
    _write(out_dir, "fig08_heavy_hitters", line_chart(
        series,
        title="Figure 8: heavy-hitter cumulative instances",
        x_label="week", y_label="cumulative instances", y_log=True,
    ), written)

    # Figure 9 — label distributions.
    fig09 = figures.fig09_label_distributions()
    for key, letter in (("goals", "a"), ("data_types", "b"), ("operators", "c")):
        ordered = dict(
            sorted(fig09[key].items(), key=lambda kv: kv[1], reverse=True)
        )
        _write(out_dir, f"fig09{letter}_{key}", bar_chart(
            ordered,
            title=f"Figure 9{letter}: popular {key.replace('_', ' ')}",
            y_label="# instances",
        ), written)

    # Figures 10 & 11 — label co-occurrence (100%-stacked bars).
    fig10 = figures.fig10_correlations()
    fig11 = figures.fig11_correlations()
    for name, letter_map in (
        (fig10, (("data_given_goal", "10a"), ("operator_given_goal", "10b"),
                 ("operator_given_data", "10c"))),
        (fig11, (("goal_given_data", "11a"), ("goal_given_operator", "11b"),
                 ("data_given_operator", "11c"))),
    ):
        for key, number in letter_map:
            _write(out_dir, f"fig{number}_{key}", stacked_bar_chart(
                name[key],
                title=f"Figure {number}: {key.replace('_', ' ')}",
            ), written)

    # Figure 12 — simple vs complex trends.
    fig12 = figures.fig12_trends()
    for key, letter in (("goals", "a"), ("operators", "b"), ("data_types", "c")):
        _write(out_dir, f"fig12{letter}_{key}", line_chart(
            {
                "simple": (weeks, fig12[key]["simple"]),
                "complex": (weeks, fig12[key]["complex"]),
            },
            title=f"Figure 12{letter}: cumulative simple vs complex ({key})",
            x_label="week", y_label="# clusters",
        ), written)

    # Figure 13 — latency decomposition.
    fig13 = figures.fig13_latency()
    order = np.argsort(fig13["end_to_end"])
    sample = order[:: max(1, len(order) // 400)]
    e2e = fig13["end_to_end"][sample]
    chart = cdf_chart(
        {
            "pickup time": (e2e, fig13["pickup_time"][sample] / np.maximum(e2e, 1e-9)),
            "task time": (e2e, fig13["task_time"][sample] / np.maximum(e2e, 1e-9)),
        },
        title="Figure 13: share of end-to-end time (batch level)",
        x_label="end-to-end time (s)", x_log=True,
    )
    _write(out_dir, "fig13_latency", chart, written)

    # Figure 14 — feature-metric CDFs.
    for entry in figures.fig14_feature_cdfs():
        if entry.get("status") != "ok":
            continue
        name = f"fig14_{entry['feature']}_{entry['metric']}"
        low_x, low_y = entry["cdf_low"]
        high_x, high_y = entry["cdf_high"]
        use_log = entry["metric"] in ("task_time", "pickup_time")
        _write(out_dir, name, cdf_chart(
            {
                f"low {entry['feature']}": (low_x, low_y),
                f"high {entry['feature']}": (high_x, high_y),
            },
            title=f"Figure 14: {entry['feature']} vs {entry['metric']}",
            x_label=entry["metric"],
            x_log=use_log,
        ), written)

    # Figure 25 — drill-down CDFs.
    for entry in figures.fig25_drilldowns():
        if entry.get("status") != "ok":
            continue
        name = (
            f"fig25_{entry['feature']}_{entry['metric']}_{entry['label']}"
        )
        low_x, low_y = entry["cdf_low"]
        high_x, high_y = entry["cdf_high"]
        _write(out_dir, name, cdf_chart(
            {
                f"low {entry['feature']}": (low_x, low_y),
                f"high {entry['feature']}": (high_x, high_y),
            },
            title=(
                f"Figure 25: {entry['feature']} vs {entry['metric']} "
                f"({entry['category']}={entry['label']})"
            ),
            x_label=entry["metric"],
            x_log=entry["metric"] in ("task_time", "pickup_time"),
        ), written)

    # Figure 26a — tasks per worker by source.
    fig26 = figures.fig26_sources()
    stats = fig26["source_stats"].sort_by("tasks_per_worker", descending=True)
    ranks = np.arange(1, stats.num_rows + 1, dtype=float)
    _write(out_dir, "fig26a_source_loads", scatter_log_log(
        ranks, np.maximum(stats["tasks_per_worker"], 1e-3),
        title="Figure 26a: avg tasks per worker, by source (ranked)",
        x_label="source rank", y_label="tasks per worker",
    ), written)
    _write(out_dir, "fig26b_active_sources", line_chart(
        {"active sources": (weeks, fig26["active_sources_per_week"])},
        title="Figure 26b: active sources per week",
        x_label="week", y_label="# sources",
    ), written)

    # Figure 27 — source quality.
    fig27 = figures.fig27_source_quality()
    top = fig27["top_by_workers"]
    _write(out_dir, "fig27b_trust", bar_chart(
        {r["source"]: r["mean_trust"] for r in top.to_rows()},
        title="Figure 27b: mean trust of top sources",
        y_label="mean trust",
    ), written)
    _write(out_dir, "fig27e_relative_time", bar_chart(
        {r["source"]: r["mean_relative_task_time"] for r in top.to_rows()},
        title="Figure 27e: mean relative task time of top sources",
        y_label="relative task time",
    ), written)

    # Figures 27c/27f — quality distributions over ALL sources.
    trust_sorted = np.sort(fig27["mean_trust_all"])[::-1]
    _write(out_dir, "fig27c_trust_all", line_chart(
        {"mean trust": (np.arange(1, len(trust_sorted) + 1), trust_sorted)},
        title="Figure 27c: mean trust across all sources (ranked)",
        x_label="source rank", y_label="mean trust",
    ), written)
    rel_sorted = np.sort(fig27["mean_relative_time_all"])[::-1]
    _write(out_dir, "fig27f_relative_time_all", line_chart(
        {"relative task time": (np.arange(1, len(rel_sorted) + 1),
                                np.maximum(rel_sorted, 1e-2))},
        title="Figure 27f: mean relative task time across all sources (ranked)",
        x_label="source rank", y_label="relative task time", y_log=True,
    ), written)

    # Figure 28 — geography.
    fig28 = figures.fig28_geography()
    top_countries = {
        r["country"]: r["num_workers"]
        for r in fig28["countries"].head(15).to_rows()
    }
    _write(out_dir, "fig28_geography", bar_chart(
        top_countries,
        title="Figure 28: workers by country (top 15)",
        y_label="# workers",
    ), written)

    # Figure 29 — workload.
    fig29 = figures.fig29_workload()
    curve = fig29["rank_curve"]
    ranks = np.arange(1, len(curve) + 1, dtype=float)
    sample = np.unique(np.geomspace(1, len(curve), 300).astype(int)) - 1
    _write(out_dir, "fig29a_workload", scatter_log_log(
        ranks[sample], np.maximum(curve[sample], 1e-3),
        title="Figure 29a: tasks by individual workers (ranked)",
        x_label="worker rank", y_label="# tasks",
    ), written)
    _write(out_dir, "fig29b_hours", bar_chart(
        {f"{int(e)}": c for e, c in fig29["total_hours_histogram"][:20]},
        title="Figure 29b: total hours spent in lifetime",
        y_label="# workers",
    ), written)
    _write(out_dir, "fig29c_hours_per_day", bar_chart(
        {f"{e:.1f}": c for e, c in fig29["hours_per_working_day_histogram"][:20]},
        title="Figure 29c: hours per working day",
        y_label="# workers",
    ), written)

    # Figure 30 — lifetimes.
    fig30 = figures.fig30_lifetimes()
    _write(out_dir, "fig30a_lifetimes", bar_chart(
        {f"{int(e)}": c for e, c in fig30["lifetime_histogram"][:20]},
        title="Figure 30a: worker lifetimes (days)",
        y_label="# workers",
    ), written)
    _write(out_dir, "fig30b_working_days", bar_chart(
        {f"{int(e)}": c for e, c in fig30["working_days_histogram"][:20]},
        title="Figure 30b: working days of multi-day workers",
        y_label="# workers",
    ), written)
    _write(out_dir, "fig30c_lifetime_fraction", bar_chart(
        {f"{e:.2f}": c for e, c in fig30["lifetime_fraction_histogram"][:20]},
        title="Figure 30c: fraction of lifetime active",
        y_label="# workers",
    ), written)

    return written
