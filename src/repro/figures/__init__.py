"""One entry point per paper figure and table.

:class:`~repro.figures.suite.FigureSuite` binds the released + enriched data
and exposes ``fig01_sampling()`` ... ``fig30_lifetimes()``, ``tables_123()``,
``table4_sources()``, and ``prediction_study()``.  Every method returns
plain dictionaries of numbers/arrays — the benchmark harness prints them,
and EXPERIMENTS.md records the comparison against the paper.
"""

from repro.figures.suite import FigureSuite

__all__ = ["FigureSuite"]
