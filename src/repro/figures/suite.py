"""The figure suite: paper figure/table numbering over the analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis import marketplace as mkt
from repro.analysis import prediction as pred
from repro.analysis import taskdesign as td
from repro.analysis import workers as wk
from repro.dataset.release import ReleasedDataset
from repro.enrichment.pipeline import EnrichedDataset
from repro.simulator.engine import MarketplaceState
from repro.stats.histogram import linear_histogram, log_histogram
from repro.stats.timeseries import week_index
from repro.tables import Table


def _comparison_dict(c: td.BinComparison) -> dict[str, Any]:
    return {
        "feature": c.feature,
        "metric": c.metric,
        "split": c.split_description,
        "count_low": c.count_low,
        "count_high": c.count_high,
        "median_low": c.median_low,
        "median_high": c.median_high,
        "p_value": c.t_test.p_value,
        "significant": c.significant,
        "direction": c.direction,
    }


@dataclass
class FigureSuite:
    """Bound figure/table entry points.

    Construction is cheap; per-figure computations run on demand and cache
    shared aggregates (worker profiles, source statistics).
    """

    state: MarketplaceState
    released: ReleasedDataset
    enriched: EnrichedDataset
    _profiles: wk.WorkerProfiles | None = field(default=None, repr=False)
    _source_stats: Table | None = field(default=None, repr=False)
    _arrivals: mkt.ArrivalSeries | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Shared cached aggregates
    # ------------------------------------------------------------------ #

    @property
    def num_weeks(self) -> int:
        return self.state.config.num_weeks

    @property
    def regime_week(self) -> int:
        return self.state.config.regime_switch_week

    def profiles(self) -> wk.WorkerProfiles:
        if self._profiles is None:
            self._profiles = wk.worker_profiles(self.released)
        return self._profiles

    def source_stats(self) -> Table:
        if self._source_stats is None:
            self._source_stats = wk.source_statistics(self.released)
        return self._source_stats

    def arrivals(self) -> mkt.ArrivalSeries:
        if self._arrivals is None:
            self._arrivals = mkt.weekly_arrivals(
                self.released, self.enriched, num_weeks=self.num_weeks
            )
        return self._arrivals

    # ------------------------------------------------------------------ #
    # §2 / §3 figures
    # ------------------------------------------------------------------ #

    def fig01_sampling(self) -> dict[str, Any]:
        """Distinct tasks sampled vs all, by week.

        For unsampled batches only the title is released (§2.2), so the
        "all" series counts distinct titles — the same proxy available to
        the paper's authors.
        """
        catalog = self.released.batch_catalog
        weeks = week_index(catalog["created_at"])
        titles = catalog["title"]
        sampled = catalog["sampled"]
        all_counts = np.zeros(self.num_weeks)
        sampled_counts = np.zeros(self.num_weeks)
        for w in range(self.num_weeks):
            mask = weeks == w
            if not mask.any():
                continue
            all_counts[w] = len(set(titles[mask]))
            if (mask & sampled).any():
                sampled_counts[w] = len(set(titles[mask & sampled]))
        return {"weeks": np.arange(self.num_weeks), "all": all_counts,
                "sampled": sampled_counts}

    def fig02_arrivals(self) -> dict[str, Any]:
        """Weekly task-instance arrivals vs pickup time / batches / tasks."""
        a = self.arrivals()
        return {
            "weeks": np.arange(self.num_weeks),
            "instances_issued": a.instances_issued,
            "instances_completed": a.instances_completed,
            "batches_issued": a.batches_issued,
            "distinct_tasks_issued": a.distinct_tasks_issued,
            "median_pickup_time": a.median_pickup_time,
        }

    def headline_load_variation(self) -> dict[str, float]:
        """§3.1's 30×/0.0004× daily-load variation statistics."""
        lv = mkt.load_variation(
            self.enriched, start_week=self.regime_week, num_weeks=self.num_weeks
        )
        return {
            "median_daily_instances": lv.median_daily_instances,
            "busiest_over_median": lv.busiest_over_median,
            "lightest_over_median": lv.lightest_over_median,
        }

    def fig03_weekday(self) -> dict[str, Any]:
        """Distribution of issued instances over days of the week."""
        totals = mkt.weekday_totals(self.enriched)
        return {
            "days": ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"],
            "instances": totals,
            "weekday_weekend_ratio": float(
                totals[:5].mean() / max(totals[5:].mean(), 1e-9)
            ),
        }

    def fig04_workers(self) -> dict[str, Any]:
        """Number of distinct workers performing tasks per week."""
        series = mkt.weekly_active_workers(self.released, num_weeks=self.num_weeks)
        return {"weeks": np.arange(self.num_weeks), "active_workers": series}

    def fig05_engagement(self) -> dict[str, Any]:
        """Post-regime arrivals vs pickup; top-10%/bottom-90% engagement."""
        a = self.arrivals()
        split = mkt.engagement_split(self.released, num_weeks=self.num_weeks)
        return {
            "weeks": np.arange(self.num_weeks),
            "instances_issued": a.instances_issued,
            "median_pickup_time": a.median_pickup_time,
            "tasks_top10": split.tasks_top10,
            "tasks_bottom90": split.tasks_bottom90,
            "active_time_top10": split.active_time_top10,
            "active_time_bottom90": split.active_time_bottom90,
        }

    def fig06_cluster_sizes(self) -> dict[str, Any]:
        """Distribution of cluster sizes (batches per cluster), log bins."""
        sizes = mkt.cluster_size_distribution(self.enriched)
        hist = log_histogram(sizes, bins_per_decade=2)
        return {
            "cluster_sizes": sizes,
            "histogram": hist.as_pairs(),
            "num_clusters": int(sizes.size),
            "clusters_over_100_batches": int((sizes > 100).sum()),
        }

    def fig07_tasks_per_cluster(self) -> dict[str, Any]:
        """Distribution of instance counts across clusters, log bins."""
        counts = mkt.tasks_per_cluster_distribution(self.enriched)
        hist = log_histogram(counts, bins_per_decade=1)
        return {
            "instances_per_cluster": counts,
            "histogram": hist.as_pairs(),
            "median_instances_per_cluster": float(np.median(counts)),
            "clusters_under_10_instances": int((counts < 10).sum()),
        }

    def fig08_heavy_hitters(self) -> dict[str, Any]:
        """Cumulative instances over time for the top-10 clusters."""
        curves = mkt.heavy_hitter_curves(self.enriched, num_weeks=self.num_weeks)
        return {"weeks": np.arange(self.num_weeks), "curves": curves}

    def fig09_label_distributions(self) -> dict[str, dict[str, float]]:
        """Instance-weighted goal / data type / operator distributions."""
        return {
            "goals": mkt.label_distribution(self.enriched, "goals"),
            "data_types": mkt.label_distribution(self.enriched, "data_types"),
            "operators": mkt.label_distribution(self.enriched, "operators"),
        }

    def fig10_correlations(self) -> dict[str, dict[str, dict[str, float]]]:
        """Data|goal, operator|goal, operator|data percentages."""
        return {
            "data_given_goal": mkt.label_correlation(
                self.enriched, rows="goals", columns="data_types"
            ),
            "operator_given_goal": mkt.label_correlation(
                self.enriched, rows="goals", columns="operators"
            ),
            "operator_given_data": mkt.label_correlation(
                self.enriched, rows="data_types", columns="operators"
            ),
        }

    def fig11_correlations(self) -> dict[str, dict[str, dict[str, float]]]:
        """Goal|data, goal|operator, data|operator percentages."""
        return {
            "goal_given_data": mkt.label_correlation(
                self.enriched, rows="data_types", columns="goals"
            ),
            "goal_given_operator": mkt.label_correlation(
                self.enriched, rows="operators", columns="goals"
            ),
            "data_given_operator": mkt.label_correlation(
                self.enriched, rows="operators", columns="data_types"
            ),
        }

    def fig12_trends(self) -> dict[str, dict[str, np.ndarray]]:
        """Cumulative simple vs complex cluster counts (goals/ops/data)."""
        out = {}
        for category in ("goals", "operators", "data_types"):
            simple, complex_ = mkt.simple_complex_trend(
                self.enriched, category, num_weeks=self.num_weeks
            )
            out[category] = {"simple": simple, "complex": complex_}
        return out

    # ------------------------------------------------------------------ #
    # §4 figures and tables
    # ------------------------------------------------------------------ #

    def fig13_latency(self) -> dict[str, Any]:
        """Pickup-time vs task-time against end-to-end time."""
        d = td.latency_decomposition(self.enriched)
        return {
            "median_pickup": d.median_pickup,
            "median_task_time": d.median_task_time,
            "pickup_dominance_ratio": d.pickup_dominance_ratio,
            "end_to_end": d.end_to_end,
            "pickup_time": d.pickup_time,
            "task_time": d.task_time,
        }

    #: The {feature, metric} pairs shown in Figure 14 (a–e).
    FIG14_PAIRS = (
        ("num_words", "disagreement"),
        ("num_text_boxes", "disagreement"),
        ("num_text_boxes", "task_time"),
        ("num_items", "disagreement"),
        ("num_items", "task_time"),
        ("num_items", "pickup_time"),
        ("num_examples", "disagreement"),
        ("num_examples", "pickup_time"),
        ("num_images", "task_time"),
        ("num_images", "pickup_time"),
    )

    def fig14_feature_cdfs(self) -> list[dict[str, Any]]:
        """The §4.3–4.7 CDF experiments (one dict per feature-metric pair).

        Pairs whose split degenerates at small scales are reported with a
        ``status`` of ``skipped`` instead of data.
        """
        out = []
        for feature, metric in self.FIG14_PAIRS:
            clusters = td.analysis_clusters(self.enriched, metric=metric)
            try:
                comparison = td.bin_comparison(clusters, feature, metric)
            except ValueError as exc:
                out.append(
                    {"feature": feature, "metric": metric,
                     "status": f"skipped: {exc}"}
                )
                continue
            entry = _comparison_dict(comparison)
            entry["status"] = "ok"
            entry["cdf_low"] = comparison.cdf_low.series(60)
            entry["cdf_high"] = comparison.cdf_high.series(60)
            out.append(entry)
        return out

    def tables_123(self) -> dict[str, list[dict[str, Any]]]:
        """Paper Tables 1 (disagreement), 2 (task-time), 3 (pickup-time)."""
        return {
            metric: [
                _comparison_dict(c) for c in td.summary_table(self.enriched, metric)
            ]
            for metric in td.METRICS
        }

    #: Figure 25's drill-downs: (feature, metric, category, label).
    FIG25_DRILLDOWNS = (
        ("num_words", "disagreement", "operators", "Gat"),
        ("num_words", "disagreement", "operators", "Rate"),
        ("num_text_boxes", "task_time", "goals", "SA"),
        ("num_examples", "disagreement", "goals", "LU"),
        ("num_items", "disagreement", "operators", "Gat"),
        ("num_items", "disagreement", "operators", "Rate"),
        ("num_images", "pickup_time", "operators", "Ext"),
        ("num_images", "pickup_time", "goals", "QA"),
    )

    def fig25_drilldowns(self) -> list[dict[str, Any]]:
        """Label drill-down experiments; entries note insufficient data."""
        out = []
        for feature, metric, category, label in self.FIG25_DRILLDOWNS:
            key = {"feature": feature, "metric": metric,
                   "category": category, "label": label}
            try:
                comparison = td.drilldown(
                    self.enriched, feature=feature, metric=metric,
                    category=category, label=label,
                )
            except ValueError as exc:
                out.append({**key, "status": f"skipped: {exc}"})
                continue
            entry = {**key, "status": "ok", **_comparison_dict(comparison)}
            entry["cdf_low"] = comparison.cdf_low.series(60)
            entry["cdf_high"] = comparison.cdf_high.series(60)
            out.append(entry)
        return out

    def prediction_study(self) -> list[dict[str, Any]]:
        """§4.9: decision-tree bucket prediction accuracies."""
        outcomes = pred.run_prediction_study(self.enriched)
        return [
            {
                "metric": o.metric,
                "strategy": o.strategy,
                "bucket_upper_bounds": o.bucketization.upper_bounds,
                "bucket_counts": o.bucketization.bucket_counts(),
                "exact_accuracy": o.exact_accuracy,
                "within_one_accuracy": o.within_one_accuracy,
            }
            for o in outcomes
        ]

    # ------------------------------------------------------------------ #
    # §5 figures
    # ------------------------------------------------------------------ #

    def fig26_sources(self) -> dict[str, Any]:
        """Average tasks per worker by source; active sources per week."""
        stats = self.source_stats()
        per_week = wk.active_sources_per_week(
            self.released, num_weeks=self.num_weeks
        )
        return {
            "source_stats": stats,
            "tasks_per_worker": stats["tasks_per_worker"],
            "active_sources_per_week": per_week,
            "instances_issued": self.arrivals().instances_issued,
        }

    def fig27_source_quality(self) -> dict[str, Any]:
        """Top sources and their trust / relative task-time profiles."""
        stats = self.source_stats()
        by_workers = wk.top_sources(stats, by="num_workers")
        by_tasks = wk.top_sources(stats, by="num_tasks")
        top_names = [s for s in by_tasks["source"]]
        return {
            "top_by_workers": by_workers,
            "top_by_tasks": by_tasks,
            "top10_task_share": wk.source_share(stats, top_names, of="num_tasks"),
            "top10_worker_share": wk.source_share(stats, top_names, of="num_workers"),
            "mean_trust_all": stats["mean_trust"],
            "mean_relative_time_all": stats["mean_relative_task_time"],
        }

    def fig28_geography(self) -> dict[str, Any]:
        """Country distribution of the workforce."""
        counts = wk.country_distribution(self.released)
        total = float(counts["num_workers"].sum())
        top5 = counts.head(5)
        return {
            "countries": counts,
            "num_countries": counts.num_rows,
            "top5": top5.to_rows(),
            "top5_share": float(top5["num_workers"].sum()) / total,
        }

    def fig29_workload(self) -> dict[str, Any]:
        """Workload rank curve; hours in lifetime; hours per working day."""
        profiles = self.profiles()
        conc = wk.workload_concentration(profiles)
        hours_hist = linear_histogram(profiles.total_hours, bins=24)
        per_day = profiles.hours_per_working_day()
        per_day_hist = linear_histogram(per_day, bins=24)
        return {
            "rank_curve": wk.workload_rank_curve(profiles),
            "top10_task_share": conc.top10_task_share,
            "total_hours_histogram": hours_hist.as_pairs(),
            "hours_per_working_day_histogram": per_day_hist.as_pairs(),
            "fraction_under_1h_per_day": float((per_day < 1.0).mean()),
        }

    def fig30_lifetimes(self) -> dict[str, Any]:
        """Lifetimes; working days and lifetime fraction of active workers."""
        profiles = self.profiles()
        conc = wk.workload_concentration(profiles)
        lifetime_hist = linear_histogram(
            profiles.lifetime_days.astype(np.float64), bins=28
        )
        multi_day = profiles.working_days > 1
        working_days_hist = linear_histogram(
            profiles.working_days[multi_day].astype(np.float64), bins=28
        )
        fraction_hist = linear_histogram(
            profiles.fraction_of_lifetime_active()[multi_day], bins=22, lo=0.0, hi=1.1
        )
        return {
            "lifetime_histogram": lifetime_hist.as_pairs(),
            "one_day_worker_fraction": conc.one_day_worker_fraction,
            "one_day_task_share": conc.one_day_task_share,
            "active_worker_fraction": conc.active_worker_fraction,
            "active_task_share": conc.active_task_share,
            "working_days_histogram": working_days_hist.as_pairs(),
            "lifetime_fraction_histogram": fraction_hist.as_pairs(),
            "mean_trust_active": float(
                profiles.mean_trust[profiles.working_days > 10].mean()
            ) if (profiles.working_days > 10).any() else float("nan"),
        }

    def table4_sources(self) -> dict[str, Any]:
        """The labor-source roster (paper Table 4)."""
        observed = sorted(set(self.released.instances["source"]))
        return {
            "all_sources": list(self.state.sources.names),
            "num_sources": len(self.state.sources.names),
            "observed_sources": observed,
            "num_observed": len(observed),
        }


# Every figure/table entry point runs under a span named after it, so a
# traced CLI run attributes time to individual figures.  The decorator's
# disabled path is a direct call (see repro.obs.trace.traced), so untraced
# figure computation is unaffected.
from repro import obs as _obs  # noqa: E402  (after class definition on purpose)

_FIGURE_ENTRY_POINTS = tuple(
    name
    for name, value in vars(FigureSuite).items()
    if callable(value)
    and (
        name.startswith("fig")
        or name in ("headline_load_variation", "tables_123",
                    "table4_sources", "prediction_study")
    )
)

for _name in _FIGURE_ENTRY_POINTS:
    setattr(
        FigureSuite,
        _name,
        _obs.traced(f"figures.{_name}")(getattr(FigureSuite, _name)),
    )
del _name
