"""Sort-based grouped aggregation for :class:`~repro.tables.table.Table`.

The implementation factorizes each key column into dense codes, combines the
codes into a single group id, sorts row indices by group id, and then applies
segment-wise reductions.  Cheap reductions (count/sum/min/max) use
``numpy.*.reduceat``; order statistics (``median``, ``p<NN>``) sort values
within their group segments once and then index the k-th order statistic of
every segment with pure array arithmetic; ``std`` centers per group and
reduces sum-of-squares with ``reduceat``; ``nunique`` counts value changes
along the per-group sorted order.  No aggregation loops over groups except
``collect`` and user callables.

Order statistics are bit-identical to ``np.median``/``np.percentile`` on
each segment (including NaN propagation); ``std`` matches ``ndarray.std``
up to floating-point summation order.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.tables.column import DictColumn, factorize
from repro.tables.table import SchemaError, Table

#: Aggregations supported by :meth:`GroupedTable.agg`, mapping name to a
#: function of the (already grouped and ordered) value segments.
_SIMPLE_AGGS = ("count", "sum", "mean", "min", "max", "median", "std",
                "nunique", "first", "last", "collect")

_INT64_MAX = np.iinfo(np.int64).max

#: Kernel-path counters: which grouping/sort strategy each call takes.
#: Per-call increments (never per-row), so the hot kernels stay at
#: uninstrumented speed — asserted by ``benchmarks/test_substrate_perf.py``.
_CALLS = obs.counter("groupby.calls")
_RADIX_FASTPATH = obs.counter("groupby.fastpath_taken")
_OVERFLOW_REDENSIFY = obs.counter("groupby.overflow_redensify")
_SEGMENT_SORT_INPLACE = obs.counter("groupby.segment_sort_inplace")
_SEGMENT_SORT_LEXSORT = obs.counter("groupby.segment_sort_lexsort")


class GroupedTable:
    """The result of :func:`group_by`: group keys plus per-group row segments."""

    def __init__(self, table: Table, keys: Sequence[str]):
        if not keys:
            raise SchemaError("group_by requires at least one key column")
        self._table = table
        self._keys = list(keys)
        _CALLS.inc()

        if table.num_rows == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)
            self._key_uniques: list[np.ndarray] = [
                np.empty(0, dtype=table[k].dtype) for k in keys
            ]
            return

        combined = np.zeros(table.num_rows, dtype=np.int64)
        # Upper bound (exclusive) on the combined code, tracked as an
        # unbounded Python int to detect int64 overflow before it happens.
        cardinality = 1
        for key in keys:
            # table.column keeps DictColumn keys as codes: factorize then
            # densifies without hashing a single string.
            codes, uniques = factorize(table.column(key))
            num_uniques = max(len(uniques), 1)
            if cardinality > (_INT64_MAX - (num_uniques - 1)) // num_uniques:
                # The key-code product would overflow int64: re-factorize the
                # combined code to dense values first.  Post-densification the
                # cardinality is at most num_rows, so one more key always fits.
                _, combined = np.unique(combined, return_inverse=True)
                combined = combined.astype(np.int64)
                cardinality = int(combined.max()) + 1
                _OVERFLOW_REDENSIFY.inc()
            combined = combined * num_uniques + codes
            cardinality *= num_uniques

        if len(keys) == 1:
            # factorize already produced dense codes; re-factorizing would
            # return them unchanged (np.unique of 0..G-1 is the identity).
            group_codes = combined
            num_group_codes = int(cardinality)
        else:
            # Re-factorize the combined code so group ids are dense.
            group_uniques, group_codes = np.unique(combined, return_inverse=True)
            num_group_codes = len(group_uniques)
        # Stable argsort of small-range codes: narrow to int16 where it
        # fits so numpy picks its O(n) radix sort over timsort.
        sortable = group_codes
        if num_group_codes <= np.iinfo(np.int16).max:
            sortable = group_codes.astype(np.int16)
            _RADIX_FASTPATH.inc()
        order = np.argsort(sortable, kind="stable")
        sorted_codes = group_codes[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )

        self._order = order
        self._starts = starts
        # Representative row per group, used to read back the key values.
        # Dictionary keys decode just one representative per group instead
        # of materializing the whole column.
        rep_rows = order[starts]
        self._key_uniques = []
        for k in keys:
            raw = table.column(k)
            if isinstance(raw, DictColumn):
                self._key_uniques.append(raw.uniques[raw.codes[rep_rows]])
            else:
                self._key_uniques.append(raw[rep_rows])

    @property
    def num_groups(self) -> int:
        return len(self._starts)

    def segments(self) -> list[np.ndarray]:
        """Row-index arrays, one per group, in group order."""
        ends = np.r_[self._starts[1:], len(self._order)]
        return [self._order[s:e] for s, e in zip(self._starts, ends)]

    # ------------------------------------------------------------------ #

    def _segment_values(self, column: str) -> list[np.ndarray]:
        values = self._table[column]
        return [values[idx] for idx in self.segments()]

    # ------------------------------------------------------------------ #
    # Segment-vectorized kernels
    # ------------------------------------------------------------------ #

    def _group_ids(self) -> np.ndarray:
        """Dense group id of every row of ``self._order`` (memoized)."""
        cached = getattr(self, "_group_ids_cache", None)
        if cached is None:
            ends = np.r_[self._starts[1:], len(self._order)]
            cached = self._group_ids_cache = np.repeat(
                np.arange(self.num_groups, dtype=np.int64), ends - self._starts
            )
        return cached

    def _segment_has_nan(self, sorted_float: np.ndarray) -> np.ndarray:
        """Per-group "contains NaN" flags from within-group sorted values."""
        if self.num_groups == 0:
            return np.empty(0, dtype=bool)
        return np.logical_or.reduceat(np.isnan(sorted_float), self._starts)

    def _order_statistic(
        self, sorted_vals: np.ndarray, counts: np.ndarray, q: float
    ) -> np.ndarray:
        """The q-th percentile of every group from within-group sorted values.

        Replicates ``np.percentile``'s linear interpolation (including the
        ``gamma >= 0.5`` lerp branch) so results are bit-identical.
        """
        vals = sorted_vals.astype(np.float64, copy=False)
        if self.num_groups == 0:
            return np.empty(0, dtype=np.float64)
        ends = self._starts + counts
        virtual = (q / 100.0) * (counts - 1)
        below = np.floor(virtual)
        gamma = virtual - below
        lo = self._starts + below.astype(np.int64)
        hi = np.minimum(lo + 1, ends - 1)
        a, b = vals[lo], vals[hi]
        diff = b - a
        out = a + diff * gamma
        np.subtract(b, diff * (1.0 - gamma), out=out, where=gamma >= 0.5)
        out[self._segment_has_nan(vals)] = np.nan
        return out

    def _group_median(self, sorted_vals: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Per-group median (bit-identical to ``np.median`` per segment)."""
        vals = sorted_vals.astype(np.float64, copy=False)
        if self.num_groups == 0:
            return np.empty(0, dtype=np.float64)
        lo = self._starts + (counts - 1) // 2
        hi = self._starts + counts // 2
        out = (vals[lo] + vals[hi]) * 0.5
        out[self._segment_has_nan(vals)] = np.nan
        return out

    def _group_std(self, ordered: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Per-group population std via centered reduceat sum-of-squares."""
        if self.num_groups == 0:
            return np.empty(0, dtype=np.float64)
        vals = ordered.astype(np.float64, copy=False)
        means = np.add.reduceat(vals, self._starts) / counts
        centered = vals - np.repeat(means, counts)
        sumsq = np.add.reduceat(centered * centered, self._starts)
        return np.sqrt(sumsq / counts)

    def _group_nunique(self, in_name: str) -> np.ndarray:
        """Distinct values per group, matching the per-segment semantics of
        ``len(np.unique(seg))`` (NaNs collapse to one) for numeric columns and
        ``len(set(seg))`` for object columns."""
        if self.num_groups == 0:
            return np.empty(0, dtype=np.int64)
        raw = self._table.column(in_name)
        if isinstance(raw, DictColumn):
            # Codes are distinct exactly when values are (uniques table has
            # no duplicates), so count distinct codes directly.
            ordered = raw.codes[self._order]
        elif raw.dtype == object:
            codes, _ = factorize(raw)
            ordered = codes[self._order]
        else:
            ordered = raw[self._order]
        group_ids = self._group_ids()
        perm = np.lexsort((ordered, group_ids))
        sorted_vals = ordered[perm]

        new_group = np.r_[True, group_ids[1:] != group_ids[:-1]]
        changed = np.r_[True, sorted_vals[1:] != sorted_vals[:-1]]
        distinct = new_group | changed
        if sorted_vals.dtype.kind == "f":
            # NaNs sort last within each group; each NaN compares unequal to
            # its neighbor, so mask them out and count at most one per group.
            nan_mask = np.isnan(sorted_vals)
            distinct &= ~nan_mask
            has_nan = np.logical_or.reduceat(nan_mask, self._starts)
        else:
            has_nan = np.zeros(self.num_groups, dtype=bool)
        out = np.add.reduceat(distinct.astype(np.int64), self._starts)
        return out + has_nan

    def agg(self, spec: Mapping[str, tuple[str, str] | tuple[str, Callable]]) -> Table:
        """Aggregate into one row per group.

        ``spec`` maps *output* column names to ``(input_column, agg)`` where
        ``agg`` is one of ``count, sum, mean, median, std, min, max, nunique,
        first, last, collect, p<NN>`` (e.g. ``"p90"``) or a callable taking a
        numpy array segment and returning a scalar.

        Example::

            group_by(t, ["source"]).agg({
                "n": ("worker_id", "count"),
                "trust": ("trust", "mean"),
                "p90_time": ("task_time", "p90"),
            })
        """
        out: dict[str, Any] = {}
        for i, key in enumerate(self._keys):
            out[key] = self._key_uniques[i]

        n = self.num_groups
        ends = np.r_[self._starts[1:], len(self._order)]
        counts = ends - self._starts

        # Within-group sorted values, computed once per input column and
        # shared by every order-statistic aggregation over it.
        sorted_cache: dict[str, np.ndarray] = {}

        def sorted_in_groups(in_name: str, ordered: np.ndarray) -> np.ndarray:
            cached = sorted_cache.get(in_name)
            if cached is None:
                if n > 0 and len(ordered) // n >= 16:
                    # Few large groups: in-place C sorts on the contiguous
                    # segments beat a full-array lexsort.  Values only (no
                    # permutation needed), NaNs still sort last per segment.
                    _SEGMENT_SORT_INPLACE.inc()
                    cached = ordered.copy()
                    for lo, hi in zip(self._starts, ends):
                        cached[lo:hi].sort()
                else:
                    _SEGMENT_SORT_LEXSORT.inc()
                    perm = np.lexsort((ordered, self._group_ids()))
                    cached = ordered[perm]
                sorted_cache[in_name] = cached
            return cached

        for out_name, (in_name, how) in spec.items():
            if out_name in out:
                raise SchemaError(f"duplicate output column {out_name!r}")
            # count/nunique never touch the values (or work on codes), so
            # resolve them before materializing dictionary columns.
            if how == "count":
                out[out_name] = counts.astype(np.int64)
                continue
            if how == "nunique":
                out[out_name] = self._group_nunique(in_name)
                continue
            values = self._table[in_name]
            ordered = values[self._order]

            if callable(how):
                out[out_name] = [how(seg) for seg in self._segment_values(in_name)]
                continue
            if how == "collect":
                segs = self._segment_values(in_name)
                col = np.empty(n, dtype=object)
                for j, seg in enumerate(segs):
                    col[j] = list(seg)
                out[out_name] = col
                continue
            if how in ("first", "last"):
                offsets = self._starts if how == "first" else ends - 1
                out[out_name] = ordered[offsets]
                continue

            if ordered.dtype == object:
                raise SchemaError(
                    f"aggregation {how!r} needs a numeric column, got str "
                    f"column {in_name!r}"
                )
            if how == "sum":
                out[out_name] = np.add.reduceat(ordered, self._starts)
            elif how == "mean":
                sums = np.add.reduceat(ordered.astype(np.float64), self._starts)
                out[out_name] = sums / counts
            elif how == "min":
                out[out_name] = np.minimum.reduceat(ordered, self._starts)
            elif how == "max":
                out[out_name] = np.maximum.reduceat(ordered, self._starts)
            elif how == "median":
                out[out_name] = self._group_median(
                    sorted_in_groups(in_name, ordered), counts
                )
            elif how == "std":
                out[out_name] = self._group_std(ordered, counts)
            elif how.startswith("p") and how[1:].replace(".", "", 1).isdigit():
                q = float(how[1:])
                if not 0 <= q <= 100:
                    raise SchemaError(f"percentile out of range: {how!r}")
                out[out_name] = self._order_statistic(
                    sorted_in_groups(in_name, ordered), counts, q
                )
            else:
                raise SchemaError(
                    f"unknown aggregation {how!r}; expected one of "
                    f"{_SIMPLE_AGGS} or 'p<NN>' or a callable"
                )
        return Table(out)


def group_by(table: Table, keys: str | Sequence[str]) -> GroupedTable:
    """Group ``table`` by one or more key columns."""
    if isinstance(keys, str):
        keys = [keys]
    for key in keys:
        if key not in table:
            raise SchemaError(f"unknown group key {key!r}")
    return GroupedTable(table, keys)
