"""Sort-based grouped aggregation for :class:`~repro.tables.table.Table`.

The implementation factorizes each key column into dense codes, combines the
codes into a single group id, sorts row indices by group id, and then applies
segment-wise reductions.  Cheap reductions (count/sum/min/max) use
``numpy.*.reduceat``; order statistics (median, percentiles) slice the sorted
segments directly.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.tables.column import factorize
from repro.tables.table import SchemaError, Table

#: Aggregations supported by :meth:`GroupedTable.agg`, mapping name to a
#: function of the (already grouped and ordered) value segments.
_SIMPLE_AGGS = ("count", "sum", "mean", "min", "max", "median", "std",
                "nunique", "first", "last", "collect")


class GroupedTable:
    """The result of :func:`group_by`: group keys plus per-group row segments."""

    def __init__(self, table: Table, keys: Sequence[str]):
        if not keys:
            raise SchemaError("group_by requires at least one key column")
        self._table = table
        self._keys = list(keys)

        if table.num_rows == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)
            self._key_uniques: list[np.ndarray] = [
                np.empty(0, dtype=table[k].dtype) for k in keys
            ]
            return

        combined = np.zeros(table.num_rows, dtype=np.int64)
        per_key_codes: list[np.ndarray] = []
        per_key_uniques: list[np.ndarray] = []
        for key in keys:
            codes, uniques = factorize(table[key])
            per_key_codes.append(codes)
            per_key_uniques.append(uniques)
            combined = combined * len(uniques) + codes

        # Re-factorize the combined code so group ids are dense.
        group_uniques, group_codes = np.unique(combined, return_inverse=True)
        order = np.argsort(group_codes, kind="stable")
        sorted_codes = group_codes[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
        )

        self._order = order
        self._starts = starts
        # Representative row per group, used to read back the key values.
        rep_rows = order[starts]
        self._key_uniques = [table[k][rep_rows] for k in keys]

    @property
    def num_groups(self) -> int:
        return len(self._starts)

    def segments(self) -> list[np.ndarray]:
        """Row-index arrays, one per group, in group order."""
        ends = np.r_[self._starts[1:], len(self._order)]
        return [self._order[s:e] for s, e in zip(self._starts, ends)]

    # ------------------------------------------------------------------ #

    def _segment_values(self, column: str) -> list[np.ndarray]:
        values = self._table[column]
        return [values[idx] for idx in self.segments()]

    def agg(self, spec: Mapping[str, tuple[str, str] | tuple[str, Callable]]) -> Table:
        """Aggregate into one row per group.

        ``spec`` maps *output* column names to ``(input_column, agg)`` where
        ``agg`` is one of ``count, sum, mean, median, std, min, max, nunique,
        first, last, collect, p<NN>`` (e.g. ``"p90"``) or a callable taking a
        numpy array segment and returning a scalar.

        Example::

            group_by(t, ["source"]).agg({
                "n": ("worker_id", "count"),
                "trust": ("trust", "mean"),
                "p90_time": ("task_time", "p90"),
            })
        """
        out: dict[str, Any] = {}
        for i, key in enumerate(self._keys):
            out[key] = self._key_uniques[i]

        n = self.num_groups
        ends = np.r_[self._starts[1:], len(self._order)]
        counts = ends - self._starts

        for out_name, (in_name, how) in spec.items():
            if out_name in out:
                raise SchemaError(f"duplicate output column {out_name!r}")
            values = self._table[in_name]
            ordered = values[self._order]

            if callable(how):
                out[out_name] = [how(seg) for seg in self._segment_values(in_name)]
                continue
            if how == "count":
                out[out_name] = counts.astype(np.int64)
                continue
            if how == "collect":
                segs = self._segment_values(in_name)
                col = np.empty(n, dtype=object)
                for j, seg in enumerate(segs):
                    col[j] = list(seg)
                out[out_name] = col
                continue
            if how in ("first", "last"):
                offsets = self._starts if how == "first" else ends - 1
                out[out_name] = ordered[offsets]
                continue
            if how == "nunique":
                out[out_name] = np.array(
                    [len(set(seg)) if seg.dtype == object else len(np.unique(seg))
                     for seg in self._segment_values(in_name)],
                    dtype=np.int64,
                )
                continue

            if ordered.dtype == object:
                raise SchemaError(
                    f"aggregation {how!r} needs a numeric column, got str "
                    f"column {in_name!r}"
                )
            if how == "sum":
                out[out_name] = np.add.reduceat(ordered, self._starts)
            elif how == "mean":
                sums = np.add.reduceat(ordered.astype(np.float64), self._starts)
                out[out_name] = sums / counts
            elif how == "min":
                out[out_name] = np.minimum.reduceat(ordered, self._starts)
            elif how == "max":
                out[out_name] = np.maximum.reduceat(ordered, self._starts)
            elif how == "median":
                out[out_name] = np.array(
                    [np.median(ordered[s:e]) for s, e in zip(self._starts, ends)]
                )
            elif how == "std":
                out[out_name] = np.array(
                    [ordered[s:e].std() for s, e in zip(self._starts, ends)]
                )
            elif how.startswith("p") and how[1:].replace(".", "", 1).isdigit():
                q = float(how[1:])
                if not 0 <= q <= 100:
                    raise SchemaError(f"percentile out of range: {how!r}")
                out[out_name] = np.array(
                    [np.percentile(ordered[s:e], q) for s, e in zip(self._starts, ends)]
                )
            else:
                raise SchemaError(
                    f"unknown aggregation {how!r}; expected one of "
                    f"{_SIMPLE_AGGS} or 'p<NN>' or a callable"
                )
        return Table(out)


def group_by(table: Table, keys: str | Sequence[str]) -> GroupedTable:
    """Group ``table`` by one or more key columns."""
    if isinstance(keys, str):
        keys = [keys]
    for key in keys:
        if key not in table:
            raise SchemaError(f"unknown group key {key!r}")
    return GroupedTable(table, keys)
