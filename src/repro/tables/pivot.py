"""Pivot (cross-tabulation) for tables.

Turns long-form rows into a wide matrix table — the natural shape for the
paper's Figures 10/11 co-occurrence breakdowns.
"""

from __future__ import annotations

import numpy as np

from repro.tables.groupby import group_by
from repro.tables.table import SchemaError, Table


def pivot(
    table: Table,
    *,
    index: str,
    columns: str,
    values: str,
    agg: str = "sum",
    fill: float = 0.0,
) -> Table:
    """Cross-tabulate ``values`` over (``index`` row) × (``columns`` column).

    ``agg`` is any aggregation :meth:`~repro.tables.groupby.GroupedTable.agg`
    accepts for a numeric column (``sum``, ``mean``, ``median``, ``count``,
    ...).  Missing cells are filled with ``fill``.  Output columns are the
    stringified unique values of ``columns`` (sorted), prefixed by nothing;
    the row key keeps the ``index`` column's name.
    """
    for name in (index, columns, values):
        if name not in table:
            raise SchemaError(f"pivot: unknown column {name!r}")

    grouped = group_by(table, [index, columns]).agg({"__value": (values, agg)})

    row_keys = sorted(set(grouped[index]), key=str)
    col_keys = sorted(set(grouped[columns]), key=str)
    row_pos = {key: i for i, key in enumerate(row_keys)}
    col_pos = {key: i for i, key in enumerate(col_keys)}

    matrix = np.full((len(row_keys), len(col_keys)), fill, dtype=np.float64)
    for r, c, v in zip(grouped[index], grouped[columns], grouped["__value"]):
        matrix[row_pos[r], col_pos[c]] = v

    out: dict[str, object] = {index: np.array(row_keys, dtype=object)
                              if isinstance(row_keys[0], str)
                              else np.asarray(row_keys)}
    for key in col_keys:
        out[str(key)] = matrix[:, col_pos[key]]
    return Table(out, copy=False)


def normalize_rows(table: Table, *, index: str, scale: float = 100.0) -> Table:
    """Scale each row's numeric cells to sum to ``scale`` (percentages).

    The ``index`` column is preserved untouched; rows summing to zero stay
    zero.
    """
    if index not in table:
        raise SchemaError(f"normalize_rows: unknown column {index!r}")
    numeric = [n for n in table.column_names if n != index]
    matrix = np.column_stack([table[n].astype(np.float64) for n in numeric])
    sums = matrix.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.where(sums > 0, matrix / sums * scale, 0.0)
    out: dict[str, object] = {index: table[index]}
    for i, name in enumerate(numeric):
        out[name] = matrix[:, i]
    return Table(out, copy=False)
