"""A small in-memory columnar table engine.

This subpackage is the storage and relational-algebra substrate for the rest
of the reproduction.  The original paper's analyses are the kind of thing one
would do in pandas or R; neither is available in this environment, so we
implement the minimal relational core needed by the analyses, backed by numpy
arrays:

- :class:`~repro.tables.table.Table` — an immutable-by-convention mapping of
  column names to typed numpy arrays, with filter / select / sort / distinct /
  concat / derived-column operations.
- :func:`~repro.tables.groupby.group_by` — sort-based grouped aggregation
  (count, sum, mean, median, min, max, nunique, percentiles, first, collect).
- :func:`~repro.tables.join.hash_join` — inner and left equi-joins.
- :class:`~repro.tables.plan.LazyFrame` — lazy logical plans with filter
  fusion, projection pushdown, and parallel kernel dispatch; start one with
  ``table.lazy()`` and run it with ``collect()``.
- :mod:`~repro.tables.io` — CSV and JSONL round-trips with type inference.

Design notes
------------
Columns are plain ``numpy.ndarray`` objects.  Numeric columns use ``int64`` /
``float64`` / ``bool``; string columns use ``object`` dtype (variable-length
unicode arrays waste memory and copy on every widening write) or a
:class:`~repro.tables.column.DictColumn` — int32 codes plus a unique-values
table — so group-by keys, join keys, and shingling operate on integers.  A
``Table`` never aliases caller-owned mutable state: constructors copy unless
told not to, and all operations return new tables.
"""

from repro.tables.column import (
    DictColumn,
    as_column,
    column_kind,
    concat_dict_columns,
    dict_encode,
    is_numeric,
)
from repro.tables.expr import Expr, col, lit
from repro.tables.groupby import GroupedTable, group_by
from repro.tables.io import (
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.tables.join import hash_join
from repro.tables.pivot import normalize_rows, pivot
from repro.tables.plan import LazyFrame, OpProfile, optimize, profile_hotspots
from repro.tables.table import Table, concat_tables

__all__ = [
    "DictColumn",
    "Expr",
    "GroupedTable",
    "LazyFrame",
    "OpProfile",
    "Table",
    "as_column",
    "col",
    "column_kind",
    "concat_dict_columns",
    "concat_tables",
    "dict_encode",
    "group_by",
    "hash_join",
    "is_numeric",
    "lit",
    "normalize_rows",
    "optimize",
    "pivot",
    "profile_hotspots",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
