"""Column typing helpers for the table engine.

A column is a one-dimensional ``numpy.ndarray``.  The engine recognizes four
*kinds* of column:

``"int"``
    ``int64`` (and any other signed/unsigned integer dtype, normalized to
    ``int64`` on ingestion).
``"float"``
    ``float64``; ``NaN`` is the missing-value marker.
``"bool"``
    ``bool``.
``"str"``
    ``object`` dtype holding Python ``str`` (``None`` is the missing marker).

Anything else is rejected at ingestion time so that downstream group-by and
join code can rely on a closed set of representations.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

import numpy as np

_KINDS = ("int", "float", "bool", "str")

_CODE_DTYPE = np.int32


class ColumnTypeError(TypeError):
    """Raised when values cannot be normalized into a supported column kind."""


class DictColumn:
    """A dictionary-encoded string column: int32 codes plus a uniques table.

    ``uniques[codes]`` reconstructs the logical object array.  The uniques
    table holds distinct values (``str`` or ``None``); nothing forces every
    unique to be referenced, so row subsets can slice the codes array and
    keep sharing the dictionary.  Instances are immutable by convention,
    like the plain numpy columns they stand in for.
    """

    __slots__ = ("codes", "uniques", "_materialized")

    def __init__(self, codes: np.ndarray, uniques: np.ndarray):
        if codes.dtype != _CODE_DTYPE:
            codes = codes.astype(_CODE_DTYPE)
        if uniques.dtype != object:
            uniques = uniques.astype(object)
        self.codes = codes
        self.uniques = uniques
        self._materialized: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(object)

    def materialize(self) -> np.ndarray:
        """The logical object array (cached after the first call)."""
        if self._materialized is None:
            self._materialized = self.uniques[self.codes]
        return self._materialized

    def take(self, indices: np.ndarray) -> "DictColumn":
        return DictColumn(self.codes[indices], self.uniques)

    def filter(self, mask: np.ndarray) -> "DictColumn":
        return DictColumn(self.codes[mask], self.uniques)

    def dense_codes(self) -> tuple[np.ndarray, np.ndarray]:
        """Densified ``(codes, uniques)`` in first-appearance order.

        Byte-identical to ``factorize(self.materialize())``: only codes that
        actually occur survive, renumbered by first appearance, so group-by
        and join on a dictionary column order groups exactly like the object
        path does.
        """
        # O(n) scatter instead of np.unique's sort: a reversed fancy-index
        # assignment leaves each code's *first* row index behind (last write
        # wins), so only the tiny per-unique argsort pays O(u log u).
        codes = self.codes
        first = np.full(len(self.uniques), -1, dtype=np.int64)
        first[codes[::-1]] = np.arange(len(codes) - 1, -1, -1, dtype=np.int64)
        used = np.flatnonzero(first >= 0)
        order = np.argsort(first[used], kind="stable")
        rank = np.empty(len(self.uniques), dtype=np.int64)
        rank[used[order]] = np.arange(len(used), dtype=np.int64)
        return rank[codes], self.uniques[used[order]]

    def __getstate__(self):
        return (self.codes, self.uniques)

    def __setstate__(self, state):
        self.codes, self.uniques = state
        self._materialized = None

    def __repr__(self) -> str:
        return f"DictColumn({len(self.codes)} rows, {len(self.uniques)} uniques)"


def dict_encode(values: np.ndarray | DictColumn) -> DictColumn:
    """Dictionary-encode an object column (no-op for ``DictColumn`` input)."""
    if isinstance(values, DictColumn):
        return values
    start = time.perf_counter()
    codes, uniques = factorize(values)
    column = DictColumn(codes.astype(_CODE_DTYPE), uniques)
    from repro.obs import metrics

    metrics.histogram("dict.encode_seconds").observe(time.perf_counter() - start)
    metrics.counter("dict.encoded_columns").inc()
    return column


def concat_dict_columns(parts: Sequence[DictColumn]) -> DictColumn:
    """Concatenate dictionary columns, unifying their dictionaries.

    The merged dictionary keeps the first part's uniques order and appends
    values unseen so far in the order later parts introduce them.
    """
    if not parts:
        return DictColumn(np.empty(0, dtype=_CODE_DTYPE), np.empty(0, dtype=object))
    mapping: dict[Any, int] = {}
    merged: list[Any] = []
    remapped: list[np.ndarray] = []
    for part in parts:
        remap = np.empty(len(part.uniques), dtype=_CODE_DTYPE)
        for old_code, value in enumerate(part.uniques):
            new_code = mapping.get(value)
            if new_code is None:
                new_code = len(merged)
                mapping[value] = new_code
                merged.append(value)
            remap[old_code] = new_code
        if len(part.codes) and len(remap):
            remapped.append(remap[part.codes])
        else:
            remapped.append(part.codes)
    uniques = np.empty(len(merged), dtype=object)
    uniques[:] = merged
    return DictColumn(np.concatenate(remapped) if remapped else
                      np.empty(0, dtype=_CODE_DTYPE), uniques)


def column_kind(values: np.ndarray | DictColumn) -> str:
    """Return the engine kind (``int``/``float``/``bool``/``str``) of an array.

    Raises :class:`ColumnTypeError` for unsupported dtypes.
    """
    if isinstance(values, DictColumn):
        return "str"
    kind = values.dtype.kind
    if kind in ("i", "u"):
        return "int"
    if kind == "f":
        return "float"
    if kind == "b":
        return "bool"
    if kind == "O" or kind in ("U", "S"):
        return "str"
    raise ColumnTypeError(f"unsupported column dtype: {values.dtype!r}")


def is_numeric(values: np.ndarray) -> bool:
    """True for int and float columns (bool is *not* numeric here)."""
    return column_kind(values) in ("int", "float")


def _coerce_object_array(values: Sequence[Any]) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            out[i] = None
        elif isinstance(value, str):
            out[i] = value
        else:
            raise ColumnTypeError(
                f"string column contains non-string value {value!r} at row {i}"
            )
    return out


def as_column(values: Iterable[Any], *, copy: bool = True) -> np.ndarray:
    """Normalize arbitrary input into a supported 1-D column array.

    Accepts numpy arrays, lists, tuples and other sequences.  Integer input
    becomes ``int64``, floats ``float64``, booleans ``bool``, and strings an
    ``object`` array of ``str`` (with ``None`` for missing).  Mixed
    int/float input is promoted to float.

    ``copy=False`` permits aliasing an already well-typed numpy array; the
    caller then promises not to mutate it.
    """
    if isinstance(values, DictColumn):
        return values
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ColumnTypeError(f"columns must be 1-D, got shape {values.shape}")
        kind = column_kind(values)
        if kind == "int" and values.dtype != np.int64:
            return values.astype(np.int64)
        if kind == "float" and values.dtype != np.float64:
            return values.astype(np.float64)
        if kind == "str" and values.dtype.kind in ("U", "S"):
            return values.astype(object)
        return values.copy() if copy else values

    materialized = list(values)
    if not materialized:
        # An empty column defaults to float; callers that care pass arrays.
        return np.empty(0, dtype=np.float64)

    non_null = [v for v in materialized if v is not None]
    if non_null and all(isinstance(v, str) for v in non_null):
        return _coerce_object_array(materialized)
    if any(v is None for v in materialized):
        # None among numerics: promote to float with NaN.
        return np.array(
            [np.nan if v is None else float(v) for v in materialized],
            dtype=np.float64,
        )
    if all(isinstance(v, bool) or isinstance(v, np.bool_) for v in materialized):
        return np.array(materialized, dtype=bool)
    if all(isinstance(v, (int, np.integer)) for v in materialized):
        return np.array(materialized, dtype=np.int64)
    try:
        return np.array([float(v) for v in materialized], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ColumnTypeError(
            f"cannot build a column from values like {materialized[0]!r}"
        ) from exc


def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode a column as dense integer codes plus the array of uniques.

    Returns ``(codes, uniques)`` where ``uniques[codes]`` reconstructs the
    input.  Order of uniques follows first appearance for object columns and
    sorted order for numeric columns (both are deterministic).

    ``DictColumn`` input skips the hash loop entirely: its codes are
    densified into first-appearance order, matching the object path byte for
    byte without touching a Python string.
    """
    if isinstance(values, DictColumn):
        return values.dense_codes()
    if values.dtype == object:
        mapping: dict[Any, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            code = mapping.get(value)
            if code is None:
                code = len(mapping)
                mapping[value] = code
            codes[i] = code
        uniques = np.empty(len(mapping), dtype=object)
        for value, code in mapping.items():
            uniques[code] = value
        return codes, uniques
    if np.issubdtype(values.dtype, np.integer) and len(values) > 0:
        # Bounded-range integers: an O(n + range) presence table beats the
        # O(n log n) sort inside np.unique.  Output is identical — uniques
        # sorted ascending, codes dense.
        vmin = int(values.min())
        vmax = int(values.max())
        span = vmax - vmin + 1
        if span <= max(1 << 16, 4 * len(values)):
            if np.issubdtype(values.dtype, np.unsignedinteger):
                # Subtract in the native unsigned dtype (values >= vmin, so
                # no borrow); the small difference then fits any intp.
                shifted = (values - values.dtype.type(vmin)).astype(np.intp)
            else:
                shifted = (values.astype(np.int64) - vmin).astype(np.intp)
            present = np.zeros(span, dtype=bool)
            present[shifted] = True
            rank = np.cumsum(present, dtype=np.int64) - 1
            codes = rank[shifted]
            offsets = np.flatnonzero(present)
            if np.issubdtype(values.dtype, np.unsignedinteger):
                uniques = (
                    offsets.astype(np.uint64) + np.uint64(vmin)
                ).astype(values.dtype)
            else:
                uniques = (offsets + vmin).astype(values.dtype)
            return codes, uniques
    uniques, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64), uniques
