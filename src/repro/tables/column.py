"""Column typing helpers for the table engine.

A column is a one-dimensional ``numpy.ndarray``.  The engine recognizes four
*kinds* of column:

``"int"``
    ``int64`` (and any other signed/unsigned integer dtype, normalized to
    ``int64`` on ingestion).
``"float"``
    ``float64``; ``NaN`` is the missing-value marker.
``"bool"``
    ``bool``.
``"str"``
    ``object`` dtype holding Python ``str`` (``None`` is the missing marker).

Anything else is rejected at ingestion time so that downstream group-by and
join code can rely on a closed set of representations.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

_KINDS = ("int", "float", "bool", "str")


class ColumnTypeError(TypeError):
    """Raised when values cannot be normalized into a supported column kind."""


def column_kind(values: np.ndarray) -> str:
    """Return the engine kind (``int``/``float``/``bool``/``str``) of an array.

    Raises :class:`ColumnTypeError` for unsupported dtypes.
    """
    kind = values.dtype.kind
    if kind in ("i", "u"):
        return "int"
    if kind == "f":
        return "float"
    if kind == "b":
        return "bool"
    if kind == "O" or kind in ("U", "S"):
        return "str"
    raise ColumnTypeError(f"unsupported column dtype: {values.dtype!r}")


def is_numeric(values: np.ndarray) -> bool:
    """True for int and float columns (bool is *not* numeric here)."""
    return column_kind(values) in ("int", "float")


def _coerce_object_array(values: Sequence[Any]) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            out[i] = None
        elif isinstance(value, str):
            out[i] = value
        else:
            raise ColumnTypeError(
                f"string column contains non-string value {value!r} at row {i}"
            )
    return out


def as_column(values: Iterable[Any], *, copy: bool = True) -> np.ndarray:
    """Normalize arbitrary input into a supported 1-D column array.

    Accepts numpy arrays, lists, tuples and other sequences.  Integer input
    becomes ``int64``, floats ``float64``, booleans ``bool``, and strings an
    ``object`` array of ``str`` (with ``None`` for missing).  Mixed
    int/float input is promoted to float.

    ``copy=False`` permits aliasing an already well-typed numpy array; the
    caller then promises not to mutate it.
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ColumnTypeError(f"columns must be 1-D, got shape {values.shape}")
        kind = column_kind(values)
        if kind == "int" and values.dtype != np.int64:
            return values.astype(np.int64)
        if kind == "float" and values.dtype != np.float64:
            return values.astype(np.float64)
        if kind == "str" and values.dtype.kind in ("U", "S"):
            return values.astype(object)
        return values.copy() if copy else values

    materialized = list(values)
    if not materialized:
        # An empty column defaults to float; callers that care pass arrays.
        return np.empty(0, dtype=np.float64)

    non_null = [v for v in materialized if v is not None]
    if non_null and all(isinstance(v, str) for v in non_null):
        return _coerce_object_array(materialized)
    if any(v is None for v in materialized):
        # None among numerics: promote to float with NaN.
        return np.array(
            [np.nan if v is None else float(v) for v in materialized],
            dtype=np.float64,
        )
    if all(isinstance(v, bool) or isinstance(v, np.bool_) for v in materialized):
        return np.array(materialized, dtype=bool)
    if all(isinstance(v, (int, np.integer)) for v in materialized):
        return np.array(materialized, dtype=np.int64)
    try:
        return np.array([float(v) for v in materialized], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ColumnTypeError(
            f"cannot build a column from values like {materialized[0]!r}"
        ) from exc


def factorize(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode a column as dense integer codes plus the array of uniques.

    Returns ``(codes, uniques)`` where ``uniques[codes]`` reconstructs the
    input.  Order of uniques follows first appearance for object columns and
    sorted order for numeric columns (both are deterministic).
    """
    if values.dtype == object:
        mapping: dict[Any, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            code = mapping.get(value)
            if code is None:
                code = len(mapping)
                mapping[value] = code
            codes[i] = code
        uniques = np.empty(len(mapping), dtype=object)
        for value, code in mapping.items():
            uniques[code] = value
        return codes, uniques
    if np.issubdtype(values.dtype, np.integer) and len(values) > 0:
        # Bounded-range integers: an O(n + range) presence table beats the
        # O(n log n) sort inside np.unique.  Output is identical — uniques
        # sorted ascending, codes dense.
        vmin = int(values.min())
        vmax = int(values.max())
        span = vmax - vmin + 1
        if span <= max(1 << 16, 4 * len(values)):
            if np.issubdtype(values.dtype, np.unsignedinteger):
                # Subtract in the native unsigned dtype (values >= vmin, so
                # no borrow); the small difference then fits any intp.
                shifted = (values - values.dtype.type(vmin)).astype(np.intp)
            else:
                shifted = (values.astype(np.int64) - vmin).astype(np.intp)
            present = np.zeros(span, dtype=bool)
            present[shifted] = True
            rank = np.cumsum(present, dtype=np.int64) - 1
            codes = rank[shifted]
            offsets = np.flatnonzero(present)
            if np.issubdtype(values.dtype, np.unsignedinteger):
                uniques = (
                    offsets.astype(np.uint64) + np.uint64(vmin)
                ).astype(values.dtype)
            else:
                uniques = (offsets + vmin).astype(values.dtype)
            return codes, uniques
    uniques, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64), uniques
