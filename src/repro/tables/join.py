"""Hash equi-joins between tables."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tables.table import SchemaError, Table


def _key_tuples(table: Table, keys: Sequence[str]) -> list[tuple]:
    arrays = [table[k] for k in keys]
    n = table.num_rows
    return [
        tuple(a[i] if a.dtype == object else a[i].item() for a in arrays)
        for i in range(n)
    ]


def hash_join(
    left: Table,
    right: Table,
    on: str | Sequence[str],
    *,
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join two tables on equal key columns.

    ``how`` is ``"inner"`` or ``"left"``.  Non-key columns of ``right`` whose
    names collide with columns of ``left`` are renamed with ``suffix``.  For
    left joins with no match, numeric right columns become ``NaN`` (ints are
    promoted to float) and string columns become ``None``.
    """
    if how not in ("inner", "left"):
        raise SchemaError(f"unsupported join type {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left or key not in right:
            raise SchemaError(f"join key {key!r} missing from one side")

    index: dict[tuple, list[int]] = {}
    for i, key in enumerate(_key_tuples(right, keys)):
        index.setdefault(key, []).append(i)

    left_idx: list[int] = []
    right_idx: list[int] = []
    matched: list[bool] = []
    for i, key in enumerate(_key_tuples(left, keys)):
        rows = index.get(key)
        if rows:
            for j in rows:
                left_idx.append(i)
                right_idx.append(j)
                matched.append(True)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(0)  # placeholder, masked below
            matched.append(False)

    left_take = np.asarray(left_idx, dtype=np.int64)
    right_take = np.asarray(right_idx, dtype=np.int64)
    match_mask = np.asarray(matched, dtype=bool)

    out: dict[str, np.ndarray] = {}
    for name in left.column_names:
        out[name] = left[name][left_take]

    key_set = set(keys)
    for name in right.column_names:
        if name in key_set:
            continue
        target = name if name not in out else f"{name}{suffix}"
        if target in out:
            raise SchemaError(f"join output column collision: {target!r}")
        values = right[name][right_take] if len(right_take) else right[name][:0]
        if how == "left" and not match_mask.all():
            if values.dtype == object:
                values = values.copy()
                values[~match_mask] = None
            else:
                values = values.astype(np.float64)
                values[~match_mask] = np.nan
        out[target] = values
    return Table(out, copy=False)
