"""Hash equi-joins between tables.

The join is fully vectorized: each key column is encoded into shared integer
codes (dictionary columns remap their uniques tables and never hash a row's
string; numeric columns go through one ``np.unique`` over both sides), the
per-key codes combine into a single int64 group id exactly as group-by does,
and matches resolve through a sorted right-side index with ``searchsorted``
probes.  Output row order is identical to the classic nested dict-of-lists
build: left rows in order, and for each left row its right matches in their
original right-table order.

``NaN`` join keys never match anything — not even other ``NaN`` keys — which
mirrors Python float equality in the tuple-key formulation.  ``None`` keys
match each other (``None`` is a singleton).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.tables.column import _CODE_DTYPE, DictColumn, factorize
from repro.tables.table import SchemaError, Table, _gather

_INT64_MAX = np.iinfo(np.int64).max


def _key_codes(
    lraw: np.ndarray | DictColumn, rraw: np.ndarray | DictColumn
) -> tuple[np.ndarray, np.ndarray, int]:
    """Encode one key column of both sides into shared int64 codes.

    Returns ``(left_codes, right_codes, cardinality)`` where equal non-NaN
    values share a code and every code is in ``[0, cardinality)``.  NaN rows
    receive side-specific sentinel codes so they can never match across
    sides.
    """
    if isinstance(lraw, DictColumn) and isinstance(rraw, DictColumn):
        if lraw.uniques is rraw.uniques:
            return (
                lraw.codes.astype(np.int64),
                rraw.codes.astype(np.int64),
                max(len(lraw.uniques), 1),
            )
        mapping = {value: code for code, value in enumerate(lraw.uniques)}
        remap = np.empty(len(rraw.uniques), dtype=np.int64)
        next_code = len(mapping)
        for code, value in enumerate(rraw.uniques):
            shared = mapping.get(value)
            if shared is None:
                # Right-only value: give it a fresh code (it cannot match).
                shared = next_code
                next_code += 1
            remap[code] = shared
        rcodes = remap[rraw.codes] if len(rraw.codes) else np.empty(0, dtype=np.int64)
        return lraw.codes.astype(np.int64), rcodes, max(next_code, 1)

    larr = lraw.materialize() if isinstance(lraw, DictColumn) else lraw
    rarr = rraw.materialize() if isinstance(rraw, DictColumn) else rraw
    n_left = len(larr)
    if larr.dtype == object or rarr.dtype == object:
        both = np.concatenate([larr.astype(object), rarr.astype(object)])
        codes, uniques = factorize(both)
        return codes[:n_left], codes[n_left:], max(len(uniques), 1)
    both = np.concatenate([larr, rarr])
    if both.dtype.kind == "f" and np.isnan(both).any():
        uniques = np.unique(both[~np.isnan(both)])
        codes = np.searchsorted(uniques, both).astype(np.int64)
        lcodes, rcodes = codes[:n_left].copy(), codes[n_left:].copy()
        lcodes[np.isnan(larr)] = len(uniques)
        rcodes[np.isnan(rarr)] = len(uniques) + 1
        return lcodes, rcodes, len(uniques) + 2
    uniques, inverse = np.unique(both, return_inverse=True)
    inverse = inverse.astype(np.int64)
    return inverse[:n_left], inverse[n_left:], max(len(uniques), 1)


def _combined_codes(
    left: Table, right: Table, keys: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-key codes into one int64 id per row, group-by style."""
    n_left, n_right = left.num_rows, right.num_rows
    combined_l = np.zeros(n_left, dtype=np.int64)
    combined_r = np.zeros(n_right, dtype=np.int64)
    cardinality = 1
    for key in keys:
        lcodes, rcodes, card = _key_codes(left.column(key), right.column(key))
        if cardinality > (_INT64_MAX - (card - 1)) // card:
            # The code product would overflow int64: densify jointly first.
            both = np.concatenate([combined_l, combined_r])
            uniques, inverse = np.unique(both, return_inverse=True)
            inverse = inverse.astype(np.int64)
            combined_l, combined_r = inverse[:n_left], inverse[n_left:]
            cardinality = max(len(uniques), 1)
        combined_l = combined_l * card + lcodes
        combined_r = combined_r * card + rcodes
        cardinality *= card
    return combined_l, combined_r


def hash_join(
    left: Table,
    right: Table,
    on: str | Sequence[str],
    *,
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join two tables on equal key columns.

    ``how`` is ``"inner"`` or ``"left"``.  Non-key columns of ``right`` whose
    names collide with columns of ``left`` are renamed with ``suffix``.  For
    left joins with no match, numeric right columns become ``NaN`` (ints are
    promoted to float) and string columns become ``None``.
    """
    if how not in ("inner", "left"):
        raise SchemaError(f"unsupported join type {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for key in keys:
        if key not in left or key not in right:
            raise SchemaError(f"join key {key!r} missing from one side")

    n_left, n_right = left.num_rows, right.num_rows
    combined_l, combined_r = _combined_codes(left, right, keys)

    # Sorted right-side index: stable order keeps each key group's rows in
    # original right-table order, matching the append order of a dict build.
    right_order = np.argsort(combined_r, kind="stable")
    sorted_r = combined_r[right_order]
    group_starts = np.flatnonzero(np.r_[True, sorted_r[1:] != sorted_r[:-1]])
    group_values = sorted_r[group_starts] if n_right else sorted_r[:0]
    group_counts = np.diff(np.r_[group_starts, n_right])

    if len(group_values):
        pos = np.searchsorted(group_values, combined_l)
        clamped = np.minimum(pos, len(group_values) - 1)
        found = group_values[clamped] == combined_l
    else:
        clamped = np.zeros(n_left, dtype=np.int64)
        found = np.zeros(n_left, dtype=bool)

    matches_per_left = np.where(found, group_counts[clamped], 0)
    base_per_left = np.where(found, group_starts[clamped] if n_right else 0, 0)
    out_counts = matches_per_left if how == "inner" else np.maximum(matches_per_left, 1)

    total = int(out_counts.sum())
    left_take = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
    match_mask = np.repeat(found, out_counts)
    # Position of each output row within its left row's match run; adding the
    # run's base start indexes straight into the sorted right order.
    run_offsets = np.cumsum(out_counts) - out_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(run_offsets, out_counts)
    right_rows = (
        right_order[np.repeat(base_per_left, out_counts) + within]
        if n_right
        else np.zeros(total, dtype=np.int64)
    )

    out: dict[str, Any] = {}
    for name in left.column_names:
        out[name] = _gather(left.column(name), left_take)

    key_set = set(keys)
    fill_missing = how == "left" and not bool(match_mask.all())
    for name in right.column_names:
        if name in key_set:
            continue
        target = name if name not in out else f"{name}{suffix}"
        if target in out:
            raise SchemaError(f"join output column collision: {target!r}")
        raw = right.column(name)
        if isinstance(raw, DictColumn):
            codes = raw.codes[right_rows] if n_right else np.zeros(total, dtype=_CODE_DTYPE)
            uniques = raw.uniques
            if fill_missing:
                none_code = next(
                    (c for c, v in enumerate(uniques) if v is None), None
                )
                if none_code is None:
                    uniques = np.concatenate(
                        [uniques, np.array([None], dtype=object)]
                    )
                    none_code = len(uniques) - 1
                codes = codes.copy()
                codes[~match_mask] = none_code
            out[target] = DictColumn(codes, uniques)
            continue
        if n_right:
            values = raw[right_rows] if total else raw[:0]
            if fill_missing:
                if values.dtype == object:
                    values = values.copy()
                    values[~match_mask] = None
                else:
                    values = values.astype(np.float64)
                    values[~match_mask] = np.nan
        elif raw.dtype == object:
            values = np.full(total, None, dtype=object)
        else:
            values = np.full(total, np.nan, dtype=np.float64)
        out[target] = values
    return Table(out, copy=False)
