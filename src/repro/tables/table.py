"""The :class:`Table` container: named, typed, equal-length numpy columns."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.tables.column import (
    DictColumn,
    as_column,
    column_kind,
    concat_dict_columns,
)


class SchemaError(ValueError):
    """Raised for malformed table construction or unknown column access."""


def _gather(column: np.ndarray | DictColumn, selector: np.ndarray):
    """Row-subset a column by boolean mask or index array.

    Dictionary columns slice only their codes; the uniques table is shared
    with the parent so repeated filters never re-encode strings.
    """
    if isinstance(column, DictColumn):
        return column.take(selector) if selector.dtype != bool else column.filter(selector)
    return column[selector]


def _as_array(column: np.ndarray | DictColumn) -> np.ndarray:
    return column.materialize() if isinstance(column, DictColumn) else column


class Table:
    """An ordered collection of equal-length columns.

    ``Table`` is immutable by convention: every operation returns a new
    table, and the underlying arrays should not be written to.  Columns are
    accessed with ``table["name"]`` (returning the numpy array) and rows are
    materialized only on demand via :meth:`to_rows`.
    """

    __slots__ = ("_columns",)

    def __init__(
        self,
        columns: Mapping[str, Any] | None = None,
        *,
        copy: bool = True,
    ) -> None:
        normalized: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in (columns or {}).items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"column names must be non-empty strings: {name!r}")
            array = as_column(values, copy=copy)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise SchemaError(
                    f"column {name!r} has length {len(array)}, expected {length}"
                )
            normalized[name] = array
        self._columns = normalized

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, Any]], *, columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from an iterable of dict-like rows.

        If ``columns`` is omitted the keys of the first row define the schema;
        every row must then supply exactly those keys.
        """
        materialized = list(rows)
        if not materialized and columns is None:
            return cls({})
        names = list(columns) if columns is not None else list(materialized[0].keys())
        data: dict[str, list[Any]] = {name: [] for name in names}
        for i, row in enumerate(materialized):
            for name in names:
                if name not in row:
                    raise SchemaError(f"row {i} is missing column {name!r}")
                data[name].append(row[name])
        return cls(data)

    @classmethod
    def empty(cls, schema: Mapping[str, str]) -> "Table":
        """An empty table with the given ``{name: kind}`` schema."""
        dtype_for = {"int": np.int64, "float": np.float64, "bool": bool, "str": object}
        columns = {}
        for name, kind in schema.items():
            if kind not in dtype_for:
                raise SchemaError(f"unknown column kind {kind!r} for {name!r}")
            columns[name] = np.empty(0, dtype=dtype_for[kind])
        return cls(columns, copy=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        for array in self._columns.values():
            return len(array)
        return 0

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def schema(self) -> dict[str, str]:
        """Mapping of column name to engine kind."""
        return {name: column_kind(array) for name, array in self._columns.items()}

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return _as_array(self._columns[name])
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def column(self, name: str) -> np.ndarray | DictColumn:
        """Raw column storage: the ndarray, or the :class:`DictColumn` itself.

        ``table[name]`` always materializes; kernels that can run on codes
        (group-by, join, shingling) use this accessor instead.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {self.column_names}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        for name in self.column_names:
            a, b = self[name], other[name]
            if a.dtype == object or b.dtype == object:
                if not all(x == y for x, y in zip(a, b)):
                    return False
            elif a.dtype.kind == "f" or b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{k}" for n, k in self.schema().items())
        return f"Table({self.num_rows} rows; {cols})"

    # ------------------------------------------------------------------ #
    # Row-wise access
    # ------------------------------------------------------------------ #

    def row(self, index: int) -> dict[str, Any]:
        """Materialize a single row as a plain dict."""
        if not -self.num_rows <= index < self.num_rows:
            raise IndexError(f"row {index} out of range for {self.num_rows} rows")
        return {name: array[index].item() if array.dtype != object else array[index]
                for name, array in ((n, _as_array(a)) for n, a in self._columns.items())}

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize all rows (intended for small tables and tests)."""
        names = self.column_names
        arrays = [_as_array(self._columns[n]) for n in names]
        out = []
        for i in range(self.num_rows):
            out.append(
                {
                    n: (a[i] if a.dtype == object else a[i].item())
                    for n, a in zip(names, arrays)
                }
            )
        return out

    def to_dict(self) -> dict[str, np.ndarray]:
        """Shallow copy of the column mapping (arrays are aliased).

        Dictionary columns are materialized to their logical object arrays.
        """
        return {n: _as_array(a) for n, a in self._columns.items()}

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto a subset of columns, in the given order."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"unknown columns in select: {missing}")
        return Table({n: self._columns[n] for n in names}, copy=False)

    def drop(self, names: Sequence[str]) -> "Table":
        """Project away the given columns."""
        doomed = set(names)
        missing = doomed - set(self._columns)
        if missing:
            raise SchemaError(f"unknown columns in drop: {sorted(missing)}")
        return Table(
            {n: a for n, a in self._columns.items() if n not in doomed}, copy=False
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; unmentioned columns keep their names."""
        missing = set(mapping) - set(self._columns)
        if missing:
            raise SchemaError(f"unknown columns in rename: {sorted(missing)}")
        new_names = [mapping.get(n, n) for n in self._columns]
        if len(set(new_names)) != len(new_names):
            raise SchemaError(f"rename produces duplicate column names: {new_names}")
        return Table(
            {mapping.get(n, n): a for n, a in self._columns.items()}, copy=False
        )

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a table with an added or replaced column."""
        array = as_column(values)
        if self._columns and len(array) != self.num_rows:
            raise SchemaError(
                f"new column {name!r} has length {len(array)}, expected {self.num_rows}"
            )
        columns = dict(self._columns)
        columns[name] = array
        return Table(columns, copy=False)

    def filter(self, mask: Any) -> "Table":
        """Keep rows where ``mask`` is True.

        ``mask`` may be a boolean array or a callable mapping this table to
        one (e.g. ``t.filter(lambda t: t["x"] > 0)``).

        This is a thin shim over the plan executor's fused filter kernel;
        chained filters fuse into one gather when built through
        :meth:`lazy` instead.
        """
        from repro.tables.plan import _apply_filter

        return _apply_filter(self, (mask,))

    def take(self, indices: Any) -> "Table":
        """Select rows by integer position (duplicates and reordering allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(
            {n: _gather(a, indices) for n, a in self._columns.items()}, copy=False
        )

    def head(self, n: int = 10) -> "Table":
        return self.take(np.arange(min(n, self.num_rows)))

    def sort_by(self, names: str | Sequence[str], *, descending: bool = False) -> "Table":
        """Stable sort by one or more columns (last name is most significant
        per ``numpy.lexsort`` convention flipped — we present the intuitive
        order: first name is the primary key)."""
        if isinstance(names, str):
            names = [names]
        keys = [self[name] for name in names]
        sortable = [
            k if k.dtype != object else np.asarray([str(v) for v in k]) for k in keys
        ]
        order = np.lexsort(tuple(reversed(sortable)))
        if descending:
            order = order[::-1]
        return self.take(order)

    def distinct(self, names: Sequence[str] | None = None) -> "Table":
        """Drop duplicate rows, keeping the first occurrence.

        If ``names`` is given, uniqueness is judged on those columns only but
        full rows are returned.
        """
        subset = list(names) if names is not None else self.column_names
        seen: set[tuple] = set()
        keep = np.zeros(self.num_rows, dtype=bool)
        arrays = [self[n] for n in subset]
        for i in range(self.num_rows):
            key = tuple(a[i] if a.dtype == object else a[i].item() for a in arrays)
            if key not in seen:
                seen.add(key)
                keep[i] = True
        return self.filter(keep)

    def lazy(self) -> "Any":
        """Start a lazy plan rooted at this table (see :mod:`repro.tables.plan`)."""
        from repro.tables.plan import LazyFrame

        return LazyFrame.scan(self)

    def map_rows(self, fn: Callable[[dict[str, Any]], Any], *, name: str) -> "Table":
        """Add a column computed row-by-row (slow path; prefer vector ops)."""
        values = [fn(self.row(i)) for i in range(self.num_rows)]
        return self.with_column(name, values)

    def describe(self) -> "Table":
        """Summary statistics for every numeric column (count/mean/std/
        min/p25/median/p75/max), one row per column."""
        from repro.stats.descriptive import summarize

        rows = []
        for name, array in self._columns.items():
            if column_kind(array) not in ("int", "float"):
                continue
            summary = summarize(array.astype(np.float64))
            rows.append({"column": name, **summary.as_dict()})
        if not rows:
            return Table({})
        return Table.from_rows(rows)


def concat_tables(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables with identical schemas."""
    tables = [t for t in tables if t.num_columns > 0]
    if not tables:
        return Table({})
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise SchemaError(
                f"cannot concat: schema {t.column_names} != {names}"
            )
    columns = {}
    for name in names:
        raw = [t.column(name) for t in tables]
        if all(isinstance(p, DictColumn) for p in raw):
            columns[name] = concat_dict_columns(raw)
            continue
        parts = [_as_array(p) for p in raw]
        if any(p.dtype == object for p in parts):
            parts = [p.astype(object) for p in parts]
        columns[name] = np.concatenate(parts)
    return Table(columns, copy=False)
