"""Lazy logical plans over :class:`~repro.tables.table.Table`.

The eager table API executes every operator immediately and copies the
surviving columns between steps.  A :class:`LazyFrame` instead records the
operator chain as a small logical plan::

    scan -> filter -> project -> group_by -> join -> sort

and only runs it at :meth:`LazyFrame.collect`.  Before execution the plan
passes through an optimizer that

- **fuses** adjacent filters (and a trailing projection) into one
  single-pass kernel — each predicate after the first is evaluated on a
  compressed view holding only the columns it references, and the surviving
  rows are gathered exactly once at the end (``plan.fused_ops``);
- **pushes projections down** below joins and group-bys so upstream
  operators stop materializing columns nobody reads (``plan.pushdowns``).

The executor memoizes shared subplans (``plan.cache_hit``/``cache_miss``)
and, when ``REPRO_WORKERS`` enables a pool, dispatches the two sides of a
join and the first full-length filter mask of large scans through
:mod:`repro.parallel` (``plan.parallel_branches``).

Setting ``REPRO_TABLES_EAGER=1`` skips the optimizer and the parallel
dispatch entirely, executing the recorded plan node by node through the
eager operators — the differential reference used by the byte-identity
harness in ``scripts/reproduce_all.sh``.

Every rewrite preserves eager semantics bit for bit: predicates evaluate in
their original order on exactly the rows that survived the preceding
predicates, so data-dependent expressions (divisions, logs) see the same
operands either way.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro import obs, parallel
from repro.tables.column import DictColumn
from repro.tables.expr import Expr
from repro.tables.groupby import group_by
from repro.tables.join import hash_join
from repro.tables.table import SchemaError, Table, _gather

_FUSED_OPS = obs.counter("plan.fused_ops")
_PUSHDOWNS = obs.counter("plan.pushdowns")
_CACHE_HIT = obs.counter("plan.cache_hit")
_CACHE_MISS = obs.counter("plan.cache_miss")
_PARALLEL_BRANCHES = obs.counter("plan.parallel_branches")
_COLLECTS = obs.counter("plan.collects")
_ANALYZED = obs.counter("plan.analyzed")
_EXEC_SECONDS = obs.histogram("plan.exec_seconds")

#: Environment variable: execute plans unoptimized, node by node, through
#: the eager operators (the byte-identity reference).
EAGER_ENV = "REPRO_TABLES_EAGER"

#: A join side is only worth shipping to a worker process when its subtree
#: scans at least this many rows (pickling the scan dominates below that).
_PARALLEL_BRANCH_MIN_ROWS = 1 << 20
#: Full-length filter masks partition across the pool above this row count.
_PARALLEL_MASK_MIN_ROWS = 1 << 18


def _eager_mode() -> bool:
    return bool(os.environ.get(EAGER_ENV, "").strip())


# --------------------------------------------------------------------- #
# Logical plan nodes
# --------------------------------------------------------------------- #


class PlanNode:
    __slots__ = ()


class Scan(PlanNode):
    __slots__ = ("table",)

    def __init__(self, table: Table):
        self.table = table


class Filter(PlanNode):
    """One predicate: an :class:`Expr`, a callable, or a boolean mask."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Any):
        self.child = child
        self.predicate = predicate


class FusedFilter(PlanNode):
    """Optimizer-made: a predicate chain plus optional trailing projection,
    executed as one single-gather kernel."""

    __slots__ = ("child", "predicates", "projection")

    def __init__(
        self,
        child: PlanNode,
        predicates: tuple[Any, ...],
        projection: tuple[str, ...] | None,
    ):
        self.child = child
        self.predicates = predicates
        self.projection = projection


class Project(PlanNode):
    __slots__ = ("child", "names")

    def __init__(self, child: PlanNode, names: tuple[str, ...]):
        self.child = child
        self.names = names


class WithColumn(PlanNode):
    """Add or replace a column; ``values`` is an :class:`Expr` or array-like."""

    __slots__ = ("child", "name", "values")

    def __init__(self, child: PlanNode, name: str, values: Any):
        self.child = child
        self.name = name
        self.values = values


class Rename(PlanNode):
    __slots__ = ("child", "mapping")

    def __init__(self, child: PlanNode, mapping: Mapping[str, str]):
        self.child = child
        self.mapping = dict(mapping)


class GroupByAgg(PlanNode):
    __slots__ = ("child", "keys", "spec")

    def __init__(self, child: PlanNode, keys: tuple[str, ...], spec: Mapping):
        self.child = child
        self.keys = keys
        self.spec = dict(spec)


class Join(PlanNode):
    __slots__ = ("left", "right", "on", "how", "suffix")

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        on: tuple[str, ...],
        how: str,
        suffix: str,
    ):
        self.left = left
        self.right = right
        self.on = on
        self.how = how
        self.suffix = suffix


class Sort(PlanNode):
    __slots__ = ("child", "names", "descending")

    def __init__(self, child: PlanNode, names: tuple[str, ...], descending: bool):
        self.child = child
        self.names = names
        self.descending = descending


class Distinct(PlanNode):
    __slots__ = ("child", "names")

    def __init__(self, child: PlanNode, names: tuple[str, ...] | None):
        self.child = child
        self.names = names


class Head(PlanNode):
    __slots__ = ("child", "n")

    def __init__(self, child: PlanNode, n: int):
        self.child = child
        self.n = n


def _children(node: PlanNode) -> tuple[PlanNode, ...]:
    if isinstance(node, Scan):
        return ()
    if isinstance(node, Join):
        return (node.left, node.right)
    return (node.child,)


def _schema(node: PlanNode) -> list[str]:
    """Output column names of a node, without executing anything."""
    if isinstance(node, Scan):
        return node.table.column_names
    if isinstance(node, Project):
        return list(node.names)
    if isinstance(node, FusedFilter) and node.projection is not None:
        return list(node.projection)
    if isinstance(node, WithColumn):
        names = _schema(node.child)
        return names if node.name in names else names + [node.name]
    if isinstance(node, Rename):
        return [node.mapping.get(n, n) for n in _schema(node.child)]
    if isinstance(node, GroupByAgg):
        return list(node.keys) + [k for k in node.spec if k not in node.keys]
    if isinstance(node, Join):
        names = _simulate_join_names(
            _schema(node.left), _schema(node.right), node.on, node.suffix
        )
        return [out for _side, _src, out in names]
    return _schema(_children(node)[0])


def _simulate_join_names(
    left_names: Sequence[str],
    right_names: Sequence[str],
    keys: Sequence[str],
    suffix: str,
) -> list[tuple[str, str, str]]:
    """Replicate the join's output-naming pass on names alone.

    Returns ``(side, source, output)`` triples in output order; raises
    :class:`SchemaError` on the same collisions the real join would hit.
    """
    out: list[tuple[str, str, str]] = []
    taken = set()
    for name in left_names:
        out.append(("left", name, name))
        taken.add(name)
    key_set = set(keys)
    for name in right_names:
        if name in key_set:
            continue
        target = name if name not in taken else f"{name}{suffix}"
        if target in taken:
            raise SchemaError(f"join output column collision: {target!r}")
        out.append(("right", name, target))
        taken.add(target)
    return out


# --------------------------------------------------------------------- #
# The fused filter(+project) kernel
# --------------------------------------------------------------------- #


def _validate_mask(mask: np.ndarray, length: int) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.dtype != bool or mask.shape != (length,):
        raise SchemaError(
            f"filter mask must be bool of length {length}, "
            f"got dtype {mask.dtype} shape {mask.shape}"
        )
    return mask


def _slice_column(column: np.ndarray | DictColumn, lo: int, hi: int):
    if isinstance(column, DictColumn):
        return DictColumn(column.codes[lo:hi], column.uniques)
    return column[lo:hi]


def _mask_chunk(item: tuple[Table, Expr]) -> np.ndarray:
    sub, predicate = item
    return np.asarray(predicate.evaluate(sub))


def _fn_picklable(fn: Any) -> bool:
    try:
        pickle.dumps(fn)
    except Exception:
        return False
    return True


def _expr_picklable(expr: Expr) -> bool:
    if expr.kind in ("map", "lit") and not isinstance(
        expr.payload, (str, int, float, bool, frozenset, tuple, type(None))
    ):
        if not _fn_picklable(expr.payload):
            return False
    return all(_expr_picklable(child) for child in expr.children)


class _FilterStats:
    """Per-operator observations made inside the filter kernel when a
    profiled execution (``explain(analyze=True)``) is underway."""

    __slots__ = ("survivors", "fanout")

    def __init__(self) -> None:
        #: Rows surviving after each predicate of the chain, in order.
        self.survivors: list[int] = []
        #: Chunks dispatched to the worker pool for the first mask (0 = serial).
        self.fanout = 0


def _full_length_mask(
    table: Table,
    predicate: Any,
    workers: int,
    stats: _FilterStats | None = None,
) -> np.ndarray:
    """Evaluate the first predicate of a chain over every row.

    Large expression masks partition row ranges across the worker pool —
    elementwise expressions are chunk-independent, so the concatenated mask
    is byte-identical to a serial evaluation.
    """
    n = table.num_rows
    if (
        isinstance(predicate, Expr)
        and workers > 1
        and n >= _PARALLEL_MASK_MIN_ROWS
        and predicate.columns()
        and _expr_picklable(predicate)
    ):
        cols = sorted(predicate.columns())
        bounds = np.linspace(0, n, workers * 2 + 1).astype(np.int64)
        items = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi > lo:
                sub = Table(
                    {c: _slice_column(table.column(c), int(lo), int(hi)) for c in cols},
                    copy=False,
                )
                items.append((sub, predicate))
        _PARALLEL_BRANCHES.inc()
        if stats is not None:
            stats.fanout = len(items)
        masks = parallel.map_chunks(_mask_chunk, items, min_items=1, chunk_size=1)
        return _validate_mask(np.concatenate(masks), n)
    if callable(predicate):
        return _validate_mask(predicate(table), n)
    return _validate_mask(predicate, n)


def _apply_filter(
    table: Table,
    predicates: Sequence[Any],
    projection: Sequence[str] | None = None,
    workers: int = 1,
    stats: _FilterStats | None = None,
) -> Table:
    """Apply a predicate chain and optional projection in a single pass.

    The first predicate produces surviving row indices; each later predicate
    evaluates on a *compressed* view containing only the columns it
    references (callables and raw masks fall back to a full intermediate),
    preserving exact sequential semantics.  Rows are gathered from the
    source table exactly once, at the end, for just the projected columns.
    """
    if projection is not None:
        missing = [n for n in projection if n not in table]
        if missing:
            raise SchemaError(f"unknown columns in select: {missing}")
    idx: np.ndarray | None = None
    for predicate in predicates:
        if idx is None:
            mask = _full_length_mask(table, predicate, workers, stats)
            idx = np.flatnonzero(mask)
        else:
            if isinstance(predicate, Expr):
                cols = predicate.columns()
                sub = Table(
                    {c: _gather(table.column(c), idx) for c in cols}, copy=False
                )
                mask = _validate_mask(predicate.evaluate(sub), len(idx))
            elif callable(predicate):
                sub = table.take(idx)
                mask = _validate_mask(predicate(sub), len(idx))
            else:
                mask = _validate_mask(predicate, len(idx))
            idx = idx[mask]
        if stats is not None:
            stats.survivors.append(int(idx.size))
    if idx is None:
        return table if projection is None else table.select(list(projection))
    names = list(projection) if projection is not None else table.column_names
    return Table({n: _gather(table.column(n), idx) for n in names}, copy=False)


# --------------------------------------------------------------------- #
# Optimizer
# --------------------------------------------------------------------- #


def optimize(node: PlanNode) -> PlanNode:
    """Rewrite a plan bottom-up: filter fusion, project collapsing, and
    projection pushdown below joins and group-bys."""
    if isinstance(node, Scan):
        return node
    if isinstance(node, Join):
        node = Join(
            optimize(node.left), optimize(node.right), node.on, node.how, node.suffix
        )
        return node
    child = optimize(_children(node)[0])

    if isinstance(node, FusedFilter):
        # Already-rewritten plans (e.g. explain() after an explicit
        # optimize()) pass through unchanged: optimize is idempotent.
        return FusedFilter(child, node.predicates, node.projection)

    if isinstance(node, Filter):
        if isinstance(child, Filter):
            _FUSED_OPS.inc()
            return FusedFilter(child.child, (child.predicate, node.predicate), None)
        if isinstance(child, FusedFilter) and child.projection is None:
            _FUSED_OPS.inc()
            return FusedFilter(
                child.child, child.predicates + (node.predicate,), None
            )
        return Filter(child, node.predicate)

    if isinstance(node, Project):
        names = node.names
        if isinstance(child, Project) and set(names) <= set(child.names):
            return Project(child.child, names)
        if isinstance(child, Filter):
            _FUSED_OPS.inc()
            return FusedFilter(child.child, (child.predicate,), names)
        if isinstance(child, FusedFilter) and child.projection is None:
            _FUSED_OPS.inc()
            return FusedFilter(child.child, child.predicates, names)
        if isinstance(child, Join):
            pushed = _pushdown_join(child, set(names))
            if pushed is not None:
                return Project(pushed, names)
        return Project(child, names)

    if isinstance(node, GroupByAgg):
        needed = list(dict.fromkeys(list(node.keys) + [
            in_name for (in_name, _how) in node.spec.values()
        ]))
        rewritten = _pushdown_into(child, needed)
        return GroupByAgg(rewritten, node.keys, node.spec)

    if isinstance(node, WithColumn):
        return WithColumn(child, node.name, node.values)
    if isinstance(node, Rename):
        return Rename(child, node.mapping)
    if isinstance(node, Sort):
        return Sort(child, node.names, node.descending)
    if isinstance(node, Distinct):
        return Distinct(child, node.names)
    if isinstance(node, Head):
        return Head(child, node.n)
    raise AssertionError(f"unknown plan node {type(node).__name__}")


def _pushdown_into(child: PlanNode, needed: Sequence[str]) -> PlanNode:
    """Narrow ``child`` so it materializes only the ``needed`` columns.

    Filters gain a fused projection; joins prune the columns gathered from
    each side.  Anything else is left alone (projection there would just
    add a pass).
    """
    child_schema = _schema(child)
    if any(n not in child_schema for n in needed):
        return child  # let execution raise the schema error unoptimized
    if set(child_schema) == set(needed):
        return child
    ordered = tuple(n for n in child_schema if n in set(needed))
    if isinstance(child, Filter):
        _PUSHDOWNS.inc()
        return FusedFilter(child.child, (child.predicate,), ordered)
    if isinstance(child, FusedFilter) and child.projection is None:
        _PUSHDOWNS.inc()
        return FusedFilter(child.child, child.predicates, ordered)
    if isinstance(child, Join):
        pushed = _pushdown_join(child, set(needed))
        if pushed is not None:
            return pushed
    return child


def _pushdown_join(node: Join, needed: set[str]) -> Join | None:
    """Prune join inputs to the columns the output actually needs.

    Key columns always stay, and a side keeps any column whose *name* also
    exists on the other side: those drive the suffix-collision decisions,
    and pruning them would silently rename the surviving columns.  The
    pruned plan is verified by re-simulating the naming pass — if the kept
    outputs would differ at all, the pushdown is abandoned.
    """
    left_names = _schema(node.left)
    right_names = _schema(node.right)
    try:
        full = _simulate_join_names(left_names, right_names, node.on, node.suffix)
    except SchemaError:
        return None  # execution will raise identically; do not rewrite
    keys = set(node.on)
    left_keep = [
        n for n in left_names
        if n in needed or n in keys or n in right_names
    ]
    right_keep = [
        src for side, src, out in full
        if side == "right" and (out in needed or src in keys)
    ]
    right_keep = list(dict.fromkeys(
        [k for k in node.on if k in right_names] + right_keep
    ))
    # Preserve right-side column order.
    right_keep = [n for n in right_names if n in set(right_keep)]
    if len(left_keep) == len(left_names) and len(right_keep) == len(right_names):
        return None
    pruned = _simulate_join_names(left_keep, right_keep, node.on, node.suffix)
    kept_outputs = {out for _s, _src, out in pruned}
    expected = {
        out for side, src, out in full
        if (side == "left" and src in left_keep)
        or (side == "right" and src in right_keep)
    }
    if kept_outputs != expected or not needed <= kept_outputs:
        return None
    left = node.left
    right = node.right
    if len(left_keep) != len(left_names):
        _PUSHDOWNS.inc()
        left = optimize(Project(left, tuple(left_keep)))
    if len(right_keep) != len(right_names):
        _PUSHDOWNS.inc()
        right = optimize(Project(right, tuple(right_keep)))
    return Join(left, right, node.on, node.how, node.suffix)


# --------------------------------------------------------------------- #
# Executor
# --------------------------------------------------------------------- #

_OP_NAMES: dict[type, str] = {
    Scan: "scan", Filter: "filter", FusedFilter: "fused_filter",
    Project: "project", WithColumn: "with_column", Rename: "rename",
    GroupByAgg: "group_by", Join: "join", Sort: "sort",
    Distinct: "distinct", Head: "head",
}


@dataclass
class OpProfile:
    """Execution profile of one plan operator.

    Built by a profiled run (:meth:`LazyFrame.profile` /
    ``explain(analyze=True)``).  ``rows_in`` holds one entry per input in
    child order; shared subplans appear once in the tree per occurrence
    but are the *same* object, so ``memo_hits`` counts every reuse.
    """

    op: str
    detail: str
    rows_in: tuple[int, ...]
    rows_out: int
    wall_s: float
    cpu_s: float
    #: Times this operator's memoized result was reused by another parent.
    memo_hits: int = 0
    #: Worker-pool tasks dispatched while executing this operator
    #: (mask chunks for filters, sides for joins; 0 = fully in-process).
    fanout: int = 0
    #: Rows surviving after each predicate of a filter chain, in order.
    survivors: tuple[int, ...] = ()
    children: list["OpProfile"] = field(default_factory=list)

    @property
    def selectivity(self) -> tuple[float, ...]:
        """Fraction of incoming rows surviving each predicate, in order."""
        out: list[float] = []
        prev = self.rows_in[0] if self.rows_in else 0
        for kept in self.survivors:
            out.append(kept / prev if prev else 1.0)
            prev = kept
        return tuple(out)

    def walk(self) -> Iterator["OpProfile"]:
        """Yield this profile and every descendant, depth-first.

        Shared (memoized) subtrees are yielded once per occurrence;
        dedupe by ``id()`` when aggregating.
        """
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": self.op, "detail": self.detail,
            "rows_in": list(self.rows_in), "rows_out": self.rows_out,
            "wall_s": self.wall_s, "cpu_s": self.cpu_s,
            "memo_hits": self.memo_hits, "fanout": self.fanout,
            "selectivity": list(self.selectivity),
            "children": [c.to_dict() for c in self.children],
        }


def profile_hotspots(root: OpProfile, top: int = 5) -> list[OpProfile]:
    """The ``top`` slowest distinct operators of a profile tree by wall."""
    seen = {id(p): p for p in root.walk()}
    return sorted(seen.values(), key=lambda p: -p.wall_s)[:top]


class _ProfileSink:
    """Accumulates :class:`OpProfile` nodes during a profiled execution."""

    __slots__ = ("profiles", "fanout")

    def __init__(self) -> None:
        self.profiles: dict[int, OpProfile] = {}
        #: Fanout observed outside the operator's own kernel (join sides),
        #: keyed by plan-node id and claimed when its profile is built.
        self.fanout: dict[int, int] = {}


def _max_scan_rows(node: PlanNode) -> int:
    if isinstance(node, Scan):
        return node.table.num_rows
    return max((_max_scan_rows(c) for c in _children(node)), default=0)


def _plan_picklable(node: PlanNode) -> bool:
    if isinstance(node, (Filter, FusedFilter)):
        predicates = (
            node.predicates if isinstance(node, FusedFilter) else (node.predicate,)
        )
        for predicate in predicates:
            if isinstance(predicate, Expr):
                if not _expr_picklable(predicate):
                    return False
            elif callable(predicate):
                if not _fn_picklable(predicate):
                    return False
    if isinstance(node, GroupByAgg):
        for _in, how in node.spec.values():
            if callable(how) and not _fn_picklable(how):
                return False
    if isinstance(node, WithColumn):
        if isinstance(node.values, Expr) and not _expr_picklable(node.values):
            return False
    return all(_plan_picklable(c) for c in _children(node))


def _collect_branch(node: PlanNode) -> Table:
    # Workers pin themselves to serial execution: no nested pools.
    return _execute(node, {}, workers=1)


def _apply_node(
    node: PlanNode,
    inputs: Sequence[Table],
    workers: int,
    stats: _FilterStats | None = None,
) -> Table:
    """Run one operator over already-executed inputs (child order)."""
    if isinstance(node, Scan):
        return node.table
    if isinstance(node, Filter):
        return _apply_filter(inputs[0], (node.predicate,), None, workers, stats)
    if isinstance(node, FusedFilter):
        return _apply_filter(
            inputs[0], node.predicates, node.projection, workers, stats
        )
    if isinstance(node, Project):
        return inputs[0].select(list(node.names))
    if isinstance(node, WithColumn):
        values = node.values
        if isinstance(values, Expr):
            values = values.evaluate(inputs[0])
        return inputs[0].with_column(node.name, values)
    if isinstance(node, Rename):
        return inputs[0].rename(node.mapping)
    if isinstance(node, GroupByAgg):
        return group_by(inputs[0], list(node.keys)).agg(node.spec)
    if isinstance(node, Join):
        return hash_join(
            inputs[0], inputs[1], list(node.on), how=node.how, suffix=node.suffix
        )
    if isinstance(node, Sort):
        return inputs[0].sort_by(list(node.names), descending=node.descending)
    if isinstance(node, Distinct):
        return inputs[0].distinct(
            list(node.names) if node.names is not None else None
        )
    if isinstance(node, Head):
        return inputs[0].head(node.n)
    raise AssertionError(f"unknown plan node {type(node).__name__}")


def _execute(
    node: PlanNode,
    memo: dict[int, Table],
    workers: int,
    sink: _ProfileSink | None = None,
) -> Table:
    cached = memo.get(id(node))
    if cached is not None:
        _CACHE_HIT.inc()
        if sink is not None:
            prof = sink.profiles.get(id(node))
            if prof is not None:
                prof.memo_hits += 1
        return cached
    _CACHE_MISS.inc()

    # Children run before the operator's own clock starts, so wall/CPU
    # below is attributable to this operator alone.
    if isinstance(node, Join):
        inputs = _execute_join_sides(node, memo, workers, sink)
    else:
        inputs = [_execute(c, memo, workers, sink) for c in _children(node)]

    op = _OP_NAMES[type(node)]
    stats = _FilterStats() if sink is not None else None
    with obs.span(f"plan.op.{op}"):
        t0 = time.perf_counter()
        c0 = time.thread_time()
        result = _apply_node(node, inputs, workers, stats)
        wall = time.perf_counter() - t0
        cpu = time.thread_time() - c0
    _EXEC_SECONDS.observe(wall)

    memo[id(node)] = result
    if sink is not None:
        sink.profiles[id(node)] = OpProfile(
            op=op,
            detail=_node_label(node),
            rows_in=tuple(t.num_rows for t in inputs),
            rows_out=result.num_rows,
            wall_s=wall,
            cpu_s=cpu,
            fanout=stats.fanout or sink.fanout.pop(id(node), 0),
            survivors=tuple(stats.survivors),
            children=[sink.profiles[id(c)] for c in _children(node)],
        )
    return result


def _execute_join_sides(
    node: Join,
    memo: dict[int, Table],
    workers: int,
    sink: _ProfileSink | None = None,
) -> list[Table]:
    """Execute both join inputs, shipping them to the pool when independent
    and heavy enough that the pickling round-trip pays for itself."""
    sides = (node.left, node.right)
    if (
        workers > 1
        and all(not isinstance(s, Scan) for s in sides)
        and all(id(s) not in memo for s in sides)
        and all(_max_scan_rows(s) >= _PARALLEL_BRANCH_MIN_ROWS for s in sides)
        and all(_plan_picklable(s) for s in sides)
    ):
        _PARALLEL_BRANCHES.inc()
        t0 = time.perf_counter()
        results = parallel.map_chunks(
            _collect_branch, list(sides), min_items=1, chunk_size=1
        )
        wall = time.perf_counter() - t0
        for side, table in zip(sides, results):
            memo[id(side)] = table
            if sink is not None:
                # The side ran opaquely in a worker process: profile it as
                # one leaf (per-operator detail stays in that process).
                sink.profiles[id(side)] = OpProfile(
                    op="subplan",
                    detail=f"{_OP_NAMES[type(side)]} subtree "
                           "(executed in worker process)",
                    rows_in=(),
                    rows_out=table.num_rows,
                    wall_s=wall,
                    cpu_s=0.0,
                )
        if sink is not None:
            sink.fanout[id(node)] = len(sides)
        return list(results)
    return [_execute(side, memo, workers, sink) for side in sides]


# --------------------------------------------------------------------- #
# The user-facing builder
# --------------------------------------------------------------------- #


class LazyGroupBy:
    """Intermediate of :meth:`LazyFrame.group_by`; call :meth:`agg`."""

    __slots__ = ("_frame", "_keys")

    def __init__(self, frame: "LazyFrame", keys: tuple[str, ...]):
        self._frame = frame
        self._keys = keys

    def agg(self, spec: Mapping) -> "LazyFrame":
        return LazyFrame(GroupByAgg(self._frame._node, self._keys, spec))


class LazyFrame:
    """A deferred chain of table operators; run it with :meth:`collect`."""

    __slots__ = ("_node", "_cached", "_profiled")

    def __init__(self, node: PlanNode):
        self._node = node
        self._cached: Table | None = None
        self._profiled: tuple[PlanNode, _ProfileSink, Table] | None = None

    @classmethod
    def scan(cls, table: Table) -> "LazyFrame":
        return cls(Scan(table))

    # Builders --------------------------------------------------------- #

    def filter(self, predicate: Any) -> "LazyFrame":
        return LazyFrame(Filter(self._node, predicate))

    def select(self, names: Sequence[str]) -> "LazyFrame":
        names = list(names)
        schema = _schema(self._node)
        missing = [n for n in names if n not in schema]
        if missing:
            raise SchemaError(f"unknown columns in select: {missing}")
        return LazyFrame(Project(self._node, tuple(names)))

    def drop(self, names: Sequence[str]) -> "LazyFrame":
        doomed = set(names)
        schema = _schema(self._node)
        missing = doomed - set(schema)
        if missing:
            raise SchemaError(f"unknown columns in drop: {sorted(missing)}")
        return LazyFrame(
            Project(self._node, tuple(n for n in schema if n not in doomed))
        )

    def rename(self, mapping: Mapping[str, str]) -> "LazyFrame":
        schema = _schema(self._node)
        missing = set(mapping) - set(schema)
        if missing:
            raise SchemaError(f"unknown columns in rename: {sorted(missing)}")
        return LazyFrame(Rename(self._node, mapping))

    def with_column(self, name: str, values: Any) -> "LazyFrame":
        return LazyFrame(WithColumn(self._node, name, values))

    def group_by(self, keys: str | Sequence[str]) -> LazyGroupBy:
        keys = (keys,) if isinstance(keys, str) else tuple(keys)
        return LazyGroupBy(self, keys)

    def join(
        self,
        other: "LazyFrame | Table",
        on: str | Sequence[str],
        *,
        how: str = "inner",
        suffix: str = "_right",
    ) -> "LazyFrame":
        right = other._node if isinstance(other, LazyFrame) else Scan(other)
        on = (on,) if isinstance(on, str) else tuple(on)
        return LazyFrame(Join(self._node, right, on, how, suffix))

    def sort_by(
        self, names: str | Sequence[str], *, descending: bool = False
    ) -> "LazyFrame":
        names = (names,) if isinstance(names, str) else tuple(names)
        return LazyFrame(Sort(self._node, names, descending))

    def distinct(self, names: Sequence[str] | None = None) -> "LazyFrame":
        return LazyFrame(
            Distinct(self._node, tuple(names) if names is not None else None)
        )

    def head(self, n: int = 10) -> "LazyFrame":
        return LazyFrame(Head(self._node, n))

    # Execution -------------------------------------------------------- #

    def collect(self) -> Table:
        """Optimize and execute the plan (memoized per frame)."""
        if self._cached is not None:
            _CACHE_HIT.inc()
            return self._cached
        _COLLECTS.inc()
        node = self._node
        workers = 1
        if not _eager_mode():
            node = optimize(node)
            workers = parallel.worker_count()
        self._cached = _execute(node, {}, workers)
        return self._cached

    def _analyze(self) -> tuple[PlanNode, _ProfileSink, Table]:
        """Execute the plan under per-operator profiling.

        Returns the executed (optimized) plan, the profile sink keyed by
        plan-node id, and the result table — which is also cached on the
        frame, so a following :meth:`collect` costs nothing extra.  The
        profile itself is memoized too: ``explain(analyze=True)`` followed
        by :meth:`profile` executes the plan once.
        """
        if self._profiled is not None:
            return self._profiled
        node = self._node
        workers = 1
        if not _eager_mode():
            node = optimize(node)
            workers = parallel.worker_count()
        sink = _ProfileSink()
        _ANALYZED.inc()
        with obs.span("plan.analyze"):
            result = _execute(node, {}, workers, sink)
        if self._cached is None:
            self._cached = result
        self._profiled = (node, sink, result)
        return self._profiled

    def profile(self) -> OpProfile:
        """Run the plan and return its root :class:`OpProfile` — the same
        tree ``explain(analyze=True)`` renders, as structured data."""
        node, sink, _result = self._analyze()
        return sink.profiles[id(node)]

    def explain(self, analyze: bool = False) -> str:
        """Render the optimized plan (or the raw plan in eager mode).

        With ``analyze=True`` the plan is *executed* under per-operator
        profiling and every line gains rows-out, wall/CPU time, per-
        predicate selectivity, memoization hits, and worker fanout.
        """
        profiles: dict[int, OpProfile] = {}
        if analyze:
            node, sink, _result = self._analyze()
            profiles = sink.profiles
        else:
            node = self._node if _eager_mode() else optimize(self._node)
        lines: list[str] = []

        def annotate(n: PlanNode) -> str:
            prof = profiles.get(id(n))
            if prof is None:
                return "" if not profiles else "  (ran in worker process)"
            bits = [
                f"rows={prof.rows_out}",
                f"wall={prof.wall_s * 1e3:.2f}ms",
                f"cpu={prof.cpu_s * 1e3:.2f}ms",
            ]
            if prof.survivors:
                bits.append(
                    "sel=" + "*".join(f"{s:.3f}" for s in prof.selectivity)
                )
            if prof.memo_hits:
                bits.append(f"memo_hits={prof.memo_hits}")
            if prof.fanout:
                bits.append(f"fanout={prof.fanout}")
            return "  (" + ", ".join(bits) + ")"

        def render(n: PlanNode, depth: int) -> None:
            lines.append("  " * depth + _node_label(n) + annotate(n))
            for child in _children(n):
                render(child, depth + 1)

        render(node, 0)
        return "\n".join(lines)


def _node_label(n: PlanNode) -> str:
    """The one-line description of a node in ``explain`` output."""
    if isinstance(n, Scan):
        return f"scan[{n.table.num_rows} rows x {n.table.num_columns} cols]"
    if isinstance(n, Filter):
        return f"filter[{_describe(n.predicate)}]"
    if isinstance(n, FusedFilter):
        preds = " & ".join(_describe(p) for p in n.predicates)
        proj = f" -> {list(n.projection)}" if n.projection else ""
        return f"fused_filter[{preds}]{proj}"
    if isinstance(n, Project):
        return f"project{list(n.names)}"
    if isinstance(n, WithColumn):
        return f"with_column[{n.name}]"
    if isinstance(n, Rename):
        return f"rename{n.mapping}"
    if isinstance(n, GroupByAgg):
        return f"group_by{list(n.keys)} -> {list(n.spec)}"
    if isinstance(n, Join):
        return f"join[{n.how} on {list(n.on)}]"
    if isinstance(n, Sort):
        return f"sort{list(n.names)} {'desc' if n.descending else 'asc'}"
    if isinstance(n, Distinct):
        return f"distinct{list(n.names or [])}"
    if isinstance(n, Head):
        return f"head[{n.n}]"
    raise AssertionError(f"unknown plan node {type(n).__name__}")


def _describe(predicate: Any) -> str:
    if isinstance(predicate, Expr):
        return predicate.description
    if callable(predicate):
        return getattr(predicate, "__name__", "callable")
    return "mask"
