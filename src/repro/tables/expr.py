"""Column expressions: composable, lazily evaluated predicates and arithmetic.

Analyses often need filters like "labeled clusters whose disagreement is
finite and at most 0.5".  Writing those against raw numpy forces naming the
table at every term; expressions defer evaluation until a table is supplied:

    from repro.tables import col

    pruned = clusters.filter((col("disagreement") <= 0.5) & col("goals").ne(""))
    speedy = batches.filter(col("task_time") / col("num_items") < 2.0)

An expression is a tree of :class:`Expr` nodes; ``expr.evaluate(table)``
returns a numpy array, and :meth:`~repro.tables.table.Table.filter` accepts
expressions directly (they are callables).

Unlike a closure tree, the IR here is *declarative*: each node carries a
``kind`` tag, an optional payload, and child expressions.  That makes
expressions picklable (so fused kernels can ship across process pools) and
introspectable — :meth:`Expr.columns` reports exactly which columns a
predicate touches, which is what lets the plan optimizer push projections
below joins and evaluate filters on column subsets.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

import numpy as np

from repro.tables.table import Table

# Binary operators, keyed by the symbol used in descriptions.  All are
# top-level callables so expression trees pickle cleanly.
_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "&": operator.and_,
    "|": operator.or_,
}


def _op_isnan(values: np.ndarray) -> np.ndarray:
    return np.isnan(values.astype(np.float64))


def _op_log(values: np.ndarray) -> np.ndarray:
    return np.log(values.astype(np.float64))


def _op_notnull(values: np.ndarray) -> np.ndarray:
    return np.array([v is not None for v in values], dtype=bool)


_UNARY_OPS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "neg": operator.neg,
    "~": operator.invert,
    "abs": np.abs,
    "isnan": _op_isnan,
    "log": _op_log,
    "notnull": _op_notnull,
}


class Expr:
    """A deferred columnar computation; call or ``evaluate`` with a table.

    ``kind`` is one of ``col``/``lit``/``binary``/``unary``/``isin``/
    ``clip``/``map``; ``payload`` holds the node's static data (column name,
    literal, operator symbol, ...) and ``children`` the operand expressions.
    """

    __slots__ = ("kind", "payload", "children", "description")

    def __init__(
        self,
        kind: str,
        payload: Any,
        children: tuple["Expr", ...],
        description: str,
    ):
        self.kind = kind
        self.payload = payload
        self.children = children
        self.description = description

    # Evaluation ------------------------------------------------------- #

    def evaluate(self, table: Table) -> np.ndarray:
        kind = self.kind
        if kind == "col":
            return table[self.payload]
        if kind == "lit":
            return self.payload
        if kind == "binary":
            left = self.children[0].evaluate(table)
            right = self.children[1].evaluate(table)
            return _BINARY_OPS[self.payload](left, right)
        if kind == "unary":
            return _UNARY_OPS[self.payload](self.children[0].evaluate(table))
        if kind == "isin":
            frozen = self.payload
            values = self.children[0].evaluate(table)
            return np.array([v in frozen for v in values], dtype=bool)
        if kind == "clip":
            lo, hi = self.payload
            return np.clip(self.children[0].evaluate(table), lo, hi)
        if kind == "map":
            fn, dtype = self.payload
            values = self.children[0].evaluate(table)
            return np.array([fn(v) for v in values], dtype=dtype or object)
        raise AssertionError(f"unknown expression kind {kind!r}")

    def __call__(self, table: Table) -> np.ndarray:
        return self.evaluate(table)

    def columns(self) -> set[str]:
        """Every column name this expression reads."""
        if self.kind == "col":
            return {self.payload}
        out: set[str] = set()
        for child in self.children:
            out |= child.columns()
        return out

    def __repr__(self) -> str:
        return f"Expr({self.description})"

    # Defining __eq__ (below) would otherwise clear hashability; identity
    # hashing keeps expressions usable as dict keys in plan caches.
    __hash__ = object.__hash__

    # Builders ---------------------------------------------------------- #

    @staticmethod
    def _wrap(value: Any) -> "Expr":
        if isinstance(value, Expr):
            return value
        return Expr("lit", value, (), repr(value))

    def _binary(self, other: Any, symbol: str) -> "Expr":
        other = Expr._wrap(other)
        return Expr(
            "binary",
            symbol,
            (self, other),
            f"({self.description} {symbol} {other.description})",
        )

    def _unary(self, op: str, description: str) -> "Expr":
        return Expr("unary", op, (self,), description)

    # Comparisons -------------------------------------------------------- #

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return self._binary(other, "==")

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return self._binary(other, "!=")

    def ne(self, other: Any) -> "Expr":
        """Alias for ``!=`` that reads better after ``&`` chains."""
        return self.__ne__(other)

    def __lt__(self, other: Any) -> "Expr":
        return self._binary(other, "<")

    def __le__(self, other: Any) -> "Expr":
        return self._binary(other, "<=")

    def __gt__(self, other: Any) -> "Expr":
        return self._binary(other, ">")

    def __ge__(self, other: Any) -> "Expr":
        return self._binary(other, ">=")

    # Arithmetic ---------------------------------------------------------- #

    def __add__(self, other: Any) -> "Expr":
        return self._binary(other, "+")

    def __radd__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, "+")

    def __sub__(self, other: Any) -> "Expr":
        return self._binary(other, "-")

    def __rsub__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, "-")

    def __mul__(self, other: Any) -> "Expr":
        return self._binary(other, "*")

    def __rmul__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, "*")

    def __truediv__(self, other: Any) -> "Expr":
        return self._binary(other, "/")

    def __rtruediv__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, "/")

    def __neg__(self) -> "Expr":
        return self._unary("neg", f"(-{self.description})")

    # Boolean combinators -------------------------------------------------- #

    def __and__(self, other: Any) -> "Expr":
        return self._binary(other, "&")

    def __or__(self, other: Any) -> "Expr":
        return self._binary(other, "|")

    def __invert__(self) -> "Expr":
        return self._unary("~", f"(~{self.description})")

    # Convenience methods --------------------------------------------------- #

    def isin(self, values) -> "Expr":
        """Membership against a fixed set of values."""
        frozen = frozenset(values)
        return Expr(
            "isin",
            frozen,
            (self,),
            f"({self.description} in {sorted(map(str, frozen))})",
        )

    def isnan(self) -> "Expr":
        return self._unary("isnan", f"isnan({self.description})")

    def notnan(self) -> "Expr":
        return ~self.isnan()

    def notnull(self) -> "Expr":
        """True where the value is not ``None`` (string-column missingness)."""
        return self._unary("notnull", f"notnull({self.description})")

    def abs(self) -> "Expr":
        return self._unary("abs", f"abs({self.description})")

    def log(self) -> "Expr":
        return self._unary("log", f"log({self.description})")

    def clip(self, lo: float, hi: float) -> "Expr":
        return Expr(
            "clip",
            (lo, hi),
            (self,),
            f"clip({self.description}, {lo}, {hi})",
        )

    def map_values(
        self,
        fn: Callable[[Any], Any],
        *,
        name: str = "map",
        dtype: Any = None,
    ) -> "Expr":
        """Element-wise Python function (slow path).

        The result is an ``object`` array unless ``dtype`` names the output
        type (e.g. ``np.int64`` for a dense id remap).
        """
        return Expr("map", (fn, dtype), (self,), f"{name}({self.description})")


def col(name: str) -> Expr:
    """Reference a column of whatever table the expression is applied to."""
    return Expr("col", name, (), name)


def lit(value: Any) -> Expr:
    """A literal constant (useful as the leftmost operand)."""
    return Expr._wrap(value)
