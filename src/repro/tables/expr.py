"""Column expressions: composable, lazily evaluated predicates and arithmetic.

Analyses often need filters like "labeled clusters whose disagreement is
finite and at most 0.5".  Writing those against raw numpy forces naming the
table at every term; expressions defer evaluation until a table is supplied:

    from repro.tables import col

    pruned = clusters.filter((col("disagreement") <= 0.5) & col("goals").ne(""))
    speedy = batches.filter(col("task_time") / col("num_items") < 2.0)

An expression is a tree of :class:`Expr` nodes; ``expr.evaluate(table)``
returns a numpy array, and :meth:`~repro.tables.table.Table.filter` accepts
expressions directly (they are callables).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.tables.table import Table


class Expr:
    """A deferred columnar computation; call or ``evaluate`` with a table."""

    def __init__(self, fn: Callable[[Table], np.ndarray], description: str):
        self._fn = fn
        self.description = description

    # Evaluation ------------------------------------------------------- #

    def evaluate(self, table: Table) -> np.ndarray:
        return self._fn(table)

    def __call__(self, table: Table) -> np.ndarray:
        return self.evaluate(table)

    def __repr__(self) -> str:
        return f"Expr({self.description})"

    # Builders ---------------------------------------------------------- #

    @staticmethod
    def _wrap(value: Any) -> "Expr":
        if isinstance(value, Expr):
            return value
        return Expr(lambda table: value, repr(value))

    def _binary(self, other: Any, op: Callable, symbol: str) -> "Expr":
        other = Expr._wrap(other)
        return Expr(
            lambda table: op(self.evaluate(table), other.evaluate(table)),
            f"({self.description} {symbol} {other.description})",
        )

    # Comparisons -------------------------------------------------------- #

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return self._binary(other, lambda a, b: a == b, "==")

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return self._binary(other, lambda a, b: a != b, "!=")

    def ne(self, other: Any) -> "Expr":
        """Alias for ``!=`` that reads better after ``&`` chains."""
        return self.__ne__(other)

    def __lt__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a < b, "<")

    def __le__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a <= b, "<=")

    def __gt__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a > b, ">")

    def __ge__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a >= b, ">=")

    # Arithmetic ---------------------------------------------------------- #

    def __add__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a + b, "+")

    def __radd__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, lambda a, b: a + b, "+")

    def __sub__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a - b, "-")

    def __rsub__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, lambda a, b: a - b, "-")

    def __mul__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a * b, "*")

    def __rmul__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, lambda a, b: a * b, "*")

    def __truediv__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a / b, "/")

    def __rtruediv__(self, other: Any) -> "Expr":
        return Expr._wrap(other)._binary(self, lambda a, b: a / b, "/")

    def __neg__(self) -> "Expr":
        return Expr(lambda table: -self.evaluate(table), f"(-{self.description})")

    # Boolean combinators -------------------------------------------------- #

    def __and__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a & b, "&")

    def __or__(self, other: Any) -> "Expr":
        return self._binary(other, lambda a, b: a | b, "|")

    def __invert__(self) -> "Expr":
        return Expr(lambda table: ~self.evaluate(table), f"(~{self.description})")

    # Convenience methods --------------------------------------------------- #

    def isin(self, values) -> "Expr":
        """Membership against a fixed set of values."""
        frozen = set(values)
        return Expr(
            lambda table: np.array(
                [v in frozen for v in self.evaluate(table)], dtype=bool
            ),
            f"({self.description} in {sorted(map(str, frozen))})",
        )

    def isnan(self) -> "Expr":
        return Expr(
            lambda table: np.isnan(self.evaluate(table).astype(np.float64)),
            f"isnan({self.description})",
        )

    def notnan(self) -> "Expr":
        return ~self.isnan()

    def abs(self) -> "Expr":
        return Expr(
            lambda table: np.abs(self.evaluate(table)),
            f"abs({self.description})",
        )

    def log(self) -> "Expr":
        return Expr(
            lambda table: np.log(self.evaluate(table).astype(np.float64)),
            f"log({self.description})",
        )

    def clip(self, lo: float, hi: float) -> "Expr":
        return Expr(
            lambda table: np.clip(self.evaluate(table), lo, hi),
            f"clip({self.description}, {lo}, {hi})",
        )

    def map_values(self, fn: Callable[[Any], Any], *, name: str = "map") -> "Expr":
        """Element-wise Python function (slow path)."""
        return Expr(
            lambda table: np.array(
                [fn(v) for v in self.evaluate(table)], dtype=object
            ),
            f"{name}({self.description})",
        )


def col(name: str) -> Expr:
    """Reference a column of whatever table the expression is applied to."""
    return Expr(lambda table: table[name], name)


def lit(value: Any) -> Expr:
    """A literal constant (useful as the leftmost operand)."""
    return Expr._wrap(value)
