"""CSV and JSONL persistence for tables.

CSV columns are type-inferred on read (int → float → bool → str, in that
order of preference); JSONL preserves types natively.  Both formats
round-trip every table the engine can represent, with ``None``/``NaN``
becoming empty CSV cells.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any

import numpy as np

from repro.tables.table import Table

_BOOL_TOKENS = {"true": True, "false": False, "True": True, "False": False}


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row."""
    path = Path(path)
    names = table.column_names
    arrays = [table[n] for n in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.num_rows):
            row = []
            for array in arrays:
                value = array[i]
                if value is None:
                    row.append("")
                elif isinstance(value, (float, np.floating)) and math.isnan(value):
                    row.append("")
                else:
                    row.append(value)
            writer.writerow(row)


def _infer_column(raw: list[str]) -> Any:
    """Infer the best-typed column from raw CSV strings."""
    non_empty = [v for v in raw if v != ""]
    if not non_empty:
        return np.full(len(raw), np.nan, dtype=np.float64)

    def try_parse(parser):
        try:
            return [parser(v) for v in non_empty]
        except ValueError:
            return None

    if all(v in _BOOL_TOKENS for v in non_empty):
        if len(non_empty) == len(raw):
            return np.array([_BOOL_TOKENS[v] for v in raw], dtype=bool)
        # bools with missing values degrade to str to stay lossless
        return np.array([v if v != "" else None for v in raw], dtype=object)

    as_ints = try_parse(int)
    if as_ints is not None:
        if len(non_empty) == len(raw):
            return np.array(as_ints, dtype=np.int64)
        out = np.full(len(raw), np.nan, dtype=np.float64)
        out[[i for i, v in enumerate(raw) if v != ""]] = as_ints
        return out

    as_floats = try_parse(float)
    if as_floats is not None:
        out = np.full(len(raw), np.nan, dtype=np.float64)
        out[[i for i, v in enumerate(raw) if v != ""]] = as_floats
        return out

    return np.array([v if v != "" else None for v in raw], dtype=object)


def read_csv(path: str | Path) -> Table:
    """Read a CSV written by :func:`write_csv` (or any headered CSV)."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Table({})
        raw_columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            if not row:
                # csv.reader collapses an all-empty-cell row (written for a
                # row of all missing values) to []; restore it so row counts
                # round-trip.
                row = [""] * len(header)
            for i, cell in enumerate(row):
                raw_columns[i].append(cell)
    return Table(
        {name: _infer_column(raw) for name, raw in zip(header, raw_columns)},
        copy=False,
    )


def write_jsonl(table: Table, path: str | Path) -> None:
    """Write a table as one JSON object per line."""
    path = Path(path)
    with path.open("w") as handle:
        for row in table.to_rows():
            clean = {
                k: (None if isinstance(v, float) and math.isnan(v) else v)
                for k, v in row.items()
            }
            handle.write(json.dumps(clean) + "\n")


def read_jsonl(path: str | Path) -> Table:
    """Read a JSONL file into a table."""
    path = Path(path)
    rows = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return Table.from_rows(rows)
