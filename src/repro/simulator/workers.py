"""Worker population: sources, geography, skill, and engagement (paper §5).

Engagement classes (fractions from §5.3's lifetime findings):

``one_day`` (53%)
    Directed to the marketplace for a single day, never return.  They are
    many, but complete only ≈2.4% of tasks.
``short`` (27%)
    Lifetimes of a few days to ≈100 days, sporadic participation.
``regular`` (14%)
    Months-long lifetimes, work one to three days a week.
``power`` (6%)
    The dedicated core: near-daily participation, long lifetimes, and
    heavy-tailed capacity — this class (plus the top of ``regular``) is the
    "top-10% of workers complete >80% of tasks" population, and it absorbs
    the marketplace's load spikes (Figure 5b).

A worker's availability is procedural: a worker is available on day ``d``
iff ``d`` lies in their activity window *and* a per-(worker, day) hash
clears their days-per-week rate — so the engine never materializes a
worker × day matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.config import SimulationConfig
from repro.simulator.geography import sample_countries
from repro.simulator.rng import StreamFactory
from repro.simulator.sources import SourcePool

DAYS_PER_WEEK = 7

#: Engagement class codes.
ONE_DAY, SHORT, REGULAR, POWER = 0, 1, 2, 3
CLASS_NAMES = ("one_day", "short", "regular", "power")

_HASH_MOD = np.int64(2**31 - 1)
_MIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_C1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C2 = np.uint64(0x94D049BB133111EB)


def _mix_hash(salt: np.ndarray, day: int) -> np.ndarray:
    """splitmix64-style avalanche of (salt, day) to uniform [0, 1).

    A linear congruential form is NOT sufficient here: with a small day
    multiplier, adjacent days map to nearly identical values and a worker's
    whole activity window either clears the rate check or fails it wholesale.
    """
    day_term = np.uint64((int(day) * int(_MIX_GAMMA)) & 0xFFFFFFFFFFFFFFFF)
    x = salt.astype(np.uint64) ^ day_term
    x = (x ^ (x >> np.uint64(30))) * _MIX_C1
    x = (x ^ (x >> np.uint64(27))) * _MIX_C2
    x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


@dataclass
class WorkerPool:
    """Column-oriented worker attributes (index = worker id)."""

    source_idx: np.ndarray  # int: index into SourcePool
    country: np.ndarray  # object: country name
    engagement: np.ndarray  # int: ONE_DAY..POWER
    accuracy: np.ndarray  # float in (0, 1): latent answer quality
    speed: np.ndarray  # float: task-time multiplier (>1 = slower)
    weight: np.ndarray  # float: per-day allocation weight
    start_day: np.ndarray  # int: first day of the activity window
    end_day: np.ndarray  # int: last day (inclusive)
    days_per_week: np.ndarray  # float in (0, 7]
    salt: np.ndarray  # int: per-worker hash salt for availability

    @property
    def num_workers(self) -> int:
        return len(self.source_idx)

    def available_on_day(self, day: int) -> np.ndarray:
        """Boolean mask of workers available on simulation day ``day``.

        One-day workers are always available within their single-day
        window.  Other classes clear a deterministic per-(worker, day) hash
        with probability ``days_per_week / 7``.
        """
        in_window = (self.start_day <= day) & (day <= self.end_day)
        hashed = _mix_hash(self.salt, day)
        clears = hashed < (self.days_per_week / DAYS_PER_WEEK)
        return in_window & (clears | (self.engagement == ONE_DAY))


def _class_lifetime_days(
    rng: np.random.Generator, engagement: np.ndarray, horizon_days: int
) -> np.ndarray:
    """Lifetime (window length in days) per worker, by engagement class."""
    n = len(engagement)
    lifetime = np.ones(n, dtype=np.int64)
    short_mask = engagement == SHORT
    # Lognormal capped at ~90 days ("79% of workers have lifetimes < 100").
    lifetime[short_mask] = np.clip(
        np.round(np.exp(rng.normal(2.4, 1.0, size=int(short_mask.sum())))), 2, 90
    ).astype(np.int64)
    regular_mask = engagement == REGULAR
    lifetime[regular_mask] = rng.integers(
        100, max(101, int(horizon_days * 0.6)), size=int(regular_mask.sum())
    )
    power_mask = engagement == POWER
    lifetime[power_mask] = rng.integers(
        int(horizon_days * 0.3), horizon_days, size=int(power_mask.sum())
    )
    return lifetime


def generate_workers(
    config: SimulationConfig,
    sources: SourcePool,
    weekly_envelope: np.ndarray,
    streams: StreamFactory,
) -> WorkerPool:
    """Generate the worker population.

    ``weekly_envelope`` is the slow-varying market-intensity curve; worker
    arrivals follow it (the workforce grew as the marketplace took off) but
    not its weekly spikes.
    """
    rng = streams.stream("workers")
    cal = config.calibration
    n = config.num_workers
    horizon_days = config.num_weeks * DAYS_PER_WEEK

    # --- source and geography ---------------------------------------- #
    source_idx = rng.choice(
        sources.num_sources, size=n, p=sources.worker_share / sources.worker_share.sum()
    )
    country = np.empty(n, dtype=object)
    for s in range(sources.num_sources):
        mask = source_idx == s
        count = int(mask.sum())
        if count == 0:
            continue
        country[mask] = sample_countries(
            rng, count, home_country=sources.home_country[s]
        )

    # --- engagement classes ------------------------------------------ #
    engagement = rng.choice(4, size=n, p=np.asarray(cal.engagement_mix))
    # Dedicated sources are built from committed workers.
    dedicated_worker = np.asarray(sources.dedicated)[source_idx]
    engagement[dedicated_worker & (rng.random(n) < 0.8)] = POWER

    # --- arrival windows ---------------------------------------------- #
    smooth = np.convolve(weekly_envelope, np.ones(9) / 9.0, mode="same")
    smooth = np.maximum(smooth, smooth.max() * 1e-3)
    arrival_week = rng.choice(config.num_weeks, size=n, p=smooth / smooth.sum())
    # Power workers skew early so multi-year lifetimes are realizable.
    power_mask = engagement == POWER
    num_power = int(power_mask.sum())
    if num_power:
        early = np.minimum(
            arrival_week[power_mask],
            rng.choice(config.num_weeks, size=num_power, p=smooth / smooth.sum()),
        )
        arrival_week[power_mask] = early
    start_day = arrival_week * DAYS_PER_WEEK + rng.integers(0, 7, size=n)

    lifetime = _class_lifetime_days(rng, engagement, horizon_days)
    end_day = np.minimum(start_day + lifetime - 1, horizon_days - 1)

    # --- weekly participation rate ------------------------------------ #
    days_per_week = np.full(n, 7.0)
    days_per_week[engagement == SHORT] = rng.uniform(0.5, 2.0, int((engagement == SHORT).sum()))
    days_per_week[engagement == REGULAR] = rng.uniform(0.8, 3.0, int((engagement == REGULAR).sum()))
    days_per_week[engagement == POWER] = rng.uniform(3.5, 7.0, int((engagement == POWER).sum()))

    # --- allocation weight (capacity) ---------------------------------- #
    class_weight = np.asarray(cal.engagement_weights)[engagement]
    dispersion = np.exp(rng.normal(0.0, 0.5, size=n))
    pareto = np.ones(n)
    if num_power:
        pareto[power_mask] = (
            1.0 + rng.pareto(cal.power_weight_pareto_alpha, size=num_power)
        )
    weight = class_weight * dispersion * pareto
    weight *= np.asarray(sources.task_weight_boost)[source_idx]

    # --- skill ---------------------------------------------------------- #
    source_trust = np.asarray(sources.mean_trust)[source_idx]
    concentration = cal.worker_accuracy_concentration
    accuracy = rng.beta(
        source_trust * concentration, (1.0 - source_trust) * concentration
    )
    # Engaged workers are a bit more accurate (experience).
    accuracy = np.clip(accuracy + 0.01 * engagement, 0.05, 0.995)

    speed = np.asarray(sources.speed_factor)[source_idx] * np.exp(
        rng.normal(0.0, 0.3, size=n)
    )

    salt = rng.integers(1, _HASH_MOD, size=n, dtype=np.int64)

    return WorkerPool(
        source_idx=source_idx.astype(np.int64),
        country=country,
        engagement=engagement.astype(np.int64),
        accuracy=accuracy,
        speed=speed,
        weight=weight,
        start_day=start_day.astype(np.int64),
        end_day=end_day.astype(np.int64),
        days_per_week=days_per_week,
        salt=salt,
    )
