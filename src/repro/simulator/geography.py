"""Worker geography: 148 countries with the paper's Figure 28 mix.

The paper reports: workers from 148 countries; close to 50% of workers from
the top five — USA (≈30.6%), Venezuela (≈7.6%), Great Britain (≈6.3%),
India (≈5.9%), Canada (≈4.0%); ≈17% from emerging South American and
African markets.
"""

from __future__ import annotations

import numpy as np

#: (country, weight) for the named head of the distribution.  Weights are
#: fractions of the worker population; the generated tail below pads the
#: country count to 148.
_HEAD: tuple[tuple[str, float], ...] = (
    ("United States", 0.306),
    ("Venezuela", 0.076),
    ("Great Britain", 0.063),
    ("India", 0.059),
    ("Canada", 0.040),
    ("Philippines", 0.030),
    ("Brazil", 0.028),
    ("Nigeria", 0.022),
    ("Egypt", 0.018),
    ("Indonesia", 0.017),
    ("Pakistan", 0.016),
    ("Romania", 0.015),
    ("Bangladesh", 0.014),
    ("Serbia", 0.013),
    ("Mexico", 0.013),
    ("Colombia", 0.012),
    ("Germany", 0.012),
    ("Kenya", 0.011),
    ("Argentina", 0.011),
    ("Poland", 0.010),
    ("Spain", 0.010),
    ("Italy", 0.009),
    ("France", 0.009),
    ("Morocco", 0.009),
    ("South Africa", 0.009),
    ("Peru", 0.008),
    ("Ukraine", 0.008),
    ("Turkey", 0.008),
    ("Vietnam", 0.008),
    ("Greece", 0.007),
    ("Portugal", 0.007),
    ("Malaysia", 0.007),
    ("Thailand", 0.007),
    ("Netherlands", 0.006),
    ("Australia", 0.006),
    ("Ghana", 0.006),
    ("Tunisia", 0.006),
    ("Algeria", 0.006),
    ("Chile", 0.005),
    ("Hungary", 0.005),
    ("Russia", 0.005),
    ("Jamaica", 0.005),
    ("Sri Lanka", 0.005),
    ("Nepal", 0.004),
    ("Bulgaria", 0.004),
    ("Croatia", 0.004),
    ("Bosnia", 0.004),
    ("Macedonia", 0.004),
)

#: Synthetic long tail to reach the paper's 148 countries.
_NUM_COUNTRIES = 148

_TAIL_NAMES = tuple(f"Country-{i:03d}" for i in range(_NUM_COUNTRIES - len(_HEAD)))

COUNTRIES: tuple[str, ...] = tuple(name for name, _ in _HEAD) + _TAIL_NAMES

_head_total = sum(weight for _, weight in _HEAD)
_tail_raw = 0.90 ** np.arange(len(_TAIL_NAMES))
_tail_weights = _tail_raw / _tail_raw.sum() * (1.0 - _head_total)

COUNTRY_WEIGHTS: np.ndarray = np.concatenate(
    [np.array([weight for _, weight in _HEAD]), _tail_weights]
)

#: Emerging-market countries for the "≈17% from South America and Africa"
#: check (includes the synthetic tail's first third, treated as emerging).
SOUTH_AMERICA_AFRICA = frozenset(
    {"Venezuela", "Brazil", "Colombia", "Argentina", "Peru", "Chile",
     "Nigeria", "Egypt", "Kenya", "South Africa", "Morocco", "Ghana",
     "Tunisia", "Algeria"}
)


def sample_countries(
    rng: np.random.Generator,
    size: int,
    *,
    home_country: str | None = None,
    home_bias: float = 0.85,
) -> np.ndarray:
    """Draw countries for ``size`` workers.

    Workers of geographically specialized sources live in the source's
    ``home_country`` with probability ``home_bias`` and follow the global
    mix otherwise.
    """
    codes = rng.choice(len(COUNTRIES), size=size, p=COUNTRY_WEIGHTS)
    out = np.array(COUNTRIES, dtype=object)[codes]
    if home_country is not None:
        pinned = rng.random(size) < home_bias
        out[pinned] = home_country
    return out
