"""Distinct-task population: labels, design features, and effect targets.

A *distinct task* is an identical unit of work issued across many batches —
the paper's "cluster".  The generator draws, per distinct task:

- labels (goal, operators, data types) from the taxonomy priors;
- design features: ``#words``, ``#text-box``, ``#examples``, ``#images``,
  and the typical ``#items`` per batch;
- a *cluster size* (number of batches) from a truncated power law with a
  forced heavy-hitter head (Figure 6: a few tasks span hundreds of batches);
- an activity window: most tasks are one-off; heavy hitters are either
  steady streams over many months or intense bursts (Figure 8);
- the latent *target disagreement* and timing bases, composed from the
  calibration's effect sizes.  These latents drive answer/timing generation
  and are never visible to the analysis layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simulator.config import SimulationConfig
from repro.simulator.rng import StreamFactory
from repro.taxonomy.labels import DataType, Goal, Operator
from repro.taxonomy.priors import (
    DATA_GIVEN_GOAL,
    GOAL_CLUSTER_WEIGHTS,
    GOAL_WEIGHTS,
    OPERATOR_GIVEN_GOAL,
    SECONDARY_DATA_PROB,
    SECONDARY_GOAL_PROB,
    SECONDARY_OPERATOR_PROB,
)

#: Operators whose worker responses are free-form text when a text box is
#: present (everything else is click-based).
TEXT_RESPONSE_OPERATORS = frozenset(
    {Operator.GATHER, Operator.EXTRACT, Operator.GENERATE, Operator.TAG}
)

#: Title templates per goal, used as the batch description metadata.
_TITLE_TEMPLATES: dict[Goal, tuple[str, ...]] = {
    Goal.ENTITY_RESOLUTION: (
        "Match business listings", "Deduplicate product records",
        "Do these profiles refer to the same person?",
    ),
    Goal.HUMAN_BEHAVIOR: (
        "Short opinion survey", "Political leaning study", "Demographic poll",
    ),
    Goal.SEARCH_RELEVANCE: (
        "Rate search result relevance", "Judge query-document match",
    ),
    Goal.QUALITY_ASSURANCE: (
        "Flag inappropriate images", "Moderate user comments",
        "Spot data entry errors",
    ),
    Goal.SENTIMENT_ANALYSIS: (
        "Label tweet sentiment", "Classify review tone",
    ),
    Goal.LANGUAGE_UNDERSTANDING: (
        "Identify grammatical elements", "Paraphrase detection",
        "Find business contact info",
    ),
    Goal.TRANSCRIPTION: (
        "Transcribe receipts", "Caption short audio clips",
        "Extract text from photos",
    ),
}


@dataclass
class TaskPopulation:
    """Column-oriented distinct-task attributes (index = distinct task id)."""

    # Labels (primary first in every tuple)
    goal: np.ndarray  # object: primary Goal
    goals: list[tuple[Goal, ...]]
    operators: list[tuple[Operator, ...]]
    data_types: list[tuple[DataType, ...]]
    title: np.ndarray  # object: str

    # Design features (these surface in the generated HTML)
    num_words: np.ndarray  # int
    num_text_boxes: np.ndarray  # int
    num_examples: np.ndarray  # int
    num_images: np.ndarray  # int
    items_median: np.ndarray  # float: typical #items per batch

    # Schedule
    cluster_size: np.ndarray  # int: number of batches
    start_week: np.ndarray  # int
    duration_weeks: np.ndarray  # int
    burst: np.ndarray  # bool: burst (vs steady) batch placement

    # Answer model latents
    subjective: np.ndarray  # bool: free-form, no modal answer
    num_choices: np.ndarray  # int: response alternatives (>= 2)
    redundancy: np.ndarray  # int: answers collected per item
    target_disagreement: np.ndarray  # float in (0, 1)

    # Timing latents
    base_task_time: np.ndarray  # float: median seconds per instance
    base_pickup_time: np.ndarray  # float: batch-level pickup scale

    # HTML latents
    template_salt: np.ndarray  # int: per-task vocabulary seed

    @property
    def num_tasks(self) -> int:
        return len(self.goal)

    def primary_operator(self, task: int) -> Operator:
        return self.operators[task][0]

    def primary_data_type(self, task: int) -> DataType:
        return self.data_types[task][0]


def _draw_from_prior(rng: np.random.Generator, prior: dict) -> object:
    keys = list(prior.keys())
    weights = np.asarray([prior[k] for k in keys], dtype=np.float64)
    weights = weights / weights.sum()
    return keys[rng.choice(len(keys), p=weights)]


def _cluster_sizes(rng: np.random.Generator, n: int) -> np.ndarray:
    """Truncated power-law batch counts with a forced heavy-hitter head.

    Tuned so most tasks are one-off (< 10 batches) while ≈0.2% of tasks
    (≥ 10 at paper scale) exceed 100 batches, and the batch/task ratio is
    ≈ 9 (58k batches over 6.6k tasks).
    """
    support = np.arange(1, 401)
    weights = support ** -1.75
    weights /= weights.sum()
    sizes = rng.choice(support, size=n, p=weights)
    # Forced heavy hitters: ~10 per 6600 tasks, at least 3.
    num_heavy = max(3, int(round(n * 10 / 6600)))
    heavy_idx = rng.choice(n, size=min(num_heavy, n), replace=False)
    sizes[heavy_idx] = rng.integers(100, 401, size=len(heavy_idx))
    return sizes.astype(np.int64)


def _activity_windows(
    rng: np.random.Generator,
    config: SimulationConfig,
    cluster_size: np.ndarray,
    envelope: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(start_week, duration_weeks, burst) per task.

    Task starts follow the market envelope (most activity post-2015); heavy
    hitters either run steadily for many months or burst over a few weeks,
    then shut down for good (§3.3's takeaway).
    """
    n = len(cluster_size)
    p = envelope ** 1.2
    p = p / p.sum()
    start = rng.choice(config.num_weeks, size=n, p=p)

    duration = np.empty(n, dtype=np.int64)
    burst = np.zeros(n, dtype=bool)
    small = cluster_size < 20
    duration[small] = rng.integers(1, 5, size=int(small.sum()))
    mid = (cluster_size >= 20) & (cluster_size < 100)
    duration[mid] = rng.integers(3, 16, size=int(mid.sum()))
    heavy = cluster_size >= 100
    num_heavy = int(heavy.sum())
    if num_heavy:
        burst_choice = rng.random(num_heavy) < 0.4
        dur_heavy = np.where(
            burst_choice,
            rng.integers(2, 7, size=num_heavy),
            rng.integers(20, 49, size=num_heavy),
        )
        duration[heavy] = dur_heavy
        burst[heavy] = burst_choice

    # Clamp to the calendar: long-running tasks must start early enough.
    max_start = config.num_weeks - duration
    start = np.minimum(start, np.maximum(max_start, 0))
    duration = np.minimum(duration, config.num_weeks - start)
    return start.astype(np.int64), duration, burst


def _compose_disagreement(
    config: SimulationConfig,
    rng: np.random.Generator,
    operator: Operator,
    num_words: int,
    num_text_boxes: int,
    num_examples: int,
    items_median: float,
    subjective: bool,
) -> float:
    """The latent target disagreement, per the calibration's §4 effects."""
    cal = config.calibration
    if subjective:
        lo, hi = cal.subjective_disagreement_range
        return float(rng.uniform(lo, hi))
    d = cal.base_disagreement_by_operator[operator]
    if num_text_boxes > 0:
        d += cal.disagreement_text_box_penalty
    word_term = math.log2(max(num_words, 10) / cal.disagreement_words_pivot)
    d -= cal.disagreement_words_slope * float(np.clip(word_term, -2.0, 2.0))
    item_term = math.log10(max(items_median, 1.0) / cal.disagreement_items_pivot)
    d -= cal.disagreement_items_slope * float(np.clip(item_term, -1.4, 1.4))
    if num_examples > 0:
        d -= cal.disagreement_example_bonus
    d += rng.normal(0.0, cal.disagreement_noise_sd)
    return float(np.clip(d, 0.005, 0.45))


def _compose_task_time(
    config: SimulationConfig,
    rng: np.random.Generator,
    operator: Operator,
    num_text_boxes: int,
    num_images: int,
    items_median: float,
) -> float:
    """Latent median seconds per instance (Table 2's effects)."""
    cal = config.calibration
    t = cal.base_task_time_by_operator[operator]
    if num_text_boxes > 0:
        t *= cal.task_time_text_box_factor
    if num_images > 0:
        t *= cal.task_time_image_factor
    t *= (max(items_median, 1.0) / cal.task_time_items_pivot) ** cal.task_time_items_exponent
    t *= math.exp(rng.normal(0.0, cal.task_time_batch_noise_sd))
    return float(max(t, 3.0))


def _compose_pickup_time(
    config: SimulationConfig,
    rng: np.random.Generator,
    num_examples: int,
    num_images: int,
    items_median: float,
) -> float:
    """Latent batch pickup scale in seconds (Table 3's effects).

    The load factor is applied later, per batch, once the weekly load is
    known.
    """
    cal = config.calibration
    p = cal.pickup_base_seconds
    if num_examples > 0:
        p *= cal.pickup_example_factor
    if num_images > 0:
        p *= cal.pickup_image_factor
    p *= (max(items_median, 1.0) / cal.pickup_items_pivot) ** cal.pickup_items_exponent
    p *= math.exp(rng.normal(0.0, cal.pickup_batch_noise_sd))
    return float(max(p, 5.0))


def compose_disagreement_target(
    config: SimulationConfig,
    *,
    operator: Operator,
    num_words: int,
    num_text_boxes: int,
    num_examples: int,
    items_median: float,
    subjective: bool = False,
    rng: np.random.Generator | None = None,
) -> float:
    """Public, optionally noise-free composition of the disagreement target.

    With ``rng=None`` the deterministic (expected) effect composition is
    returned — used by :mod:`repro.abtest` so arms differ only by design.
    """
    quiet = rng if rng is not None else _ZeroNoise()
    return _compose_disagreement(
        config, quiet, operator, num_words, num_text_boxes, num_examples,
        items_median, subjective,
    )


def compose_task_time_base(
    config: SimulationConfig,
    *,
    operator: Operator,
    num_text_boxes: int,
    num_images: int,
    items_median: float,
    rng: np.random.Generator | None = None,
) -> float:
    """Public, optionally noise-free composition of the task-time base."""
    quiet = rng if rng is not None else _ZeroNoise()
    return _compose_task_time(
        config, quiet, operator, num_text_boxes, num_images, items_median
    )


def compose_pickup_base(
    config: SimulationConfig,
    *,
    num_examples: int,
    num_images: int,
    items_median: float,
    rng: np.random.Generator | None = None,
) -> float:
    """Public, optionally noise-free composition of the pickup-time base."""
    quiet = rng if rng is not None else _ZeroNoise()
    return _compose_pickup_time(
        config, quiet, num_examples, num_images, items_median
    )


class _ZeroNoise:
    """A stand-in generator whose draws are the distribution means."""

    @staticmethod
    def normal(loc: float = 0.0, scale: float = 1.0, size=None) -> float:
        del scale, size
        return loc

    @staticmethod
    def uniform(low: float, high: float, size=None) -> float:
        del size
        return (low + high) / 2.0


def generate_tasks(
    config: SimulationConfig,
    envelope: np.ndarray,
    streams: StreamFactory,
) -> TaskPopulation:
    """Generate the distinct-task population."""
    rng = streams.stream("tasks")
    cal = config.calibration
    n = config.num_distinct_tasks

    goals: list[tuple[Goal, ...]] = []
    operators: list[tuple[Operator, ...]] = []
    data_types: list[tuple[DataType, ...]] = []
    titles: list[str] = []

    goal_keys = list(GOAL_CLUSTER_WEIGHTS.keys())
    goal_p = np.asarray([GOAL_CLUSTER_WEIGHTS[g] for g in goal_keys])
    goal_p = goal_p / goal_p.sum()

    for _ in range(n):
        goal = goal_keys[rng.choice(len(goal_keys), p=goal_p)]
        task_goals = [goal]
        if rng.random() < SECONDARY_GOAL_PROB:
            secondary_goal = goal_keys[rng.choice(len(goal_keys), p=goal_p)]
            if secondary_goal != goal:
                task_goals.append(secondary_goal)
        goals.append(tuple(task_goals))

        primary_op = _draw_from_prior(rng, OPERATOR_GIVEN_GOAL[goal])
        ops = [primary_op]
        if rng.random() < SECONDARY_OPERATOR_PROB:
            secondary = _draw_from_prior(rng, OPERATOR_GIVEN_GOAL[goal])
            if secondary != primary_op:
                ops.append(secondary)
        operators.append(tuple(ops))

        primary_dt = _draw_from_prior(rng, DATA_GIVEN_GOAL[goal])
        dts = [primary_dt]
        if rng.random() < SECONDARY_DATA_PROB:
            secondary_dt = _draw_from_prior(rng, DATA_GIVEN_GOAL[goal])
            if secondary_dt != primary_dt:
                dts.append(secondary_dt)
        data_types.append(tuple(dts))

        templates = _TITLE_TEMPLATES[goal]
        titles.append(templates[rng.choice(len(templates))])

    goal_arr = np.empty(n, dtype=object)
    for i, task_goals in enumerate(goals):
        goal_arr[i] = task_goals[0]

    # --- design features ------------------------------------------------ #
    num_words = np.clip(
        np.round(np.exp(rng.normal(math.log(466.0), 1.0, size=n))), 20, 20000
    ).astype(np.int64)

    has_text_box = rng.random(n) < 0.48
    num_text_boxes = np.where(has_text_box, 1 + rng.poisson(1.5, size=n), 0).astype(
        np.int64
    )
    # Click-only operators occasionally lack text boxes regardless.
    num_examples = np.where(
        rng.random(n) < cal.example_prevalence, 1 + rng.poisson(0.8, size=n), 0
    ).astype(np.int64)

    # Image-data tasks render their sample item as an <img>, so they always
    # carry at least one image; other tasks add decorative/instructional
    # images occasionally.  Observed #images (HTML extraction) equals this.
    item_images = np.array(
        [sum(1 for dt in dts if dt is DataType.IMAGE) for dts in data_types],
        dtype=np.int64,
    )
    extra_images = np.where(
        rng.random(n) < 0.13, 1 + rng.poisson(1.5, size=n), 0
    ).astype(np.int64)
    num_images = item_images + extra_images

    items_median = np.exp(rng.normal(math.log(40.0), 1.1, size=n))

    # --- schedule -------------------------------------------------------- #
    cluster_size = _cluster_sizes(rng, n)
    start_week, duration_weeks, burst = _activity_windows(
        rng, config, cluster_size, envelope
    )

    # Heavy hitters also run the biggest batches (§3.3: "bulky clusters have
    # issued close to 80k tasks/batch"): couple the item scale mildly to the
    # cluster size, on top of the global instance_scale knob.  The per-goal
    # multiplier GOAL_WEIGHTS / GOAL_CLUSTER_WEIGHTS restores Figure 9a's
    # instance-level goal mix: simple goals run in fewer but larger clusters.
    goal_multiplier = np.array(
        [GOAL_WEIGHTS[g] / GOAL_CLUSTER_WEIGHTS[g] for g in goal_arr]
    )
    items_median = items_median * (
        cluster_size.astype(np.float64) ** 0.25
    ) * config.instance_scale * goal_multiplier
    items_median = np.maximum(items_median, 1.0)

    # --- answer model ----------------------------------------------------- #
    text_response = np.array(
        [
            (ops[0] in TEXT_RESPONSE_OPERATORS) and tb > 0
            for ops, tb in zip(operators, num_text_boxes)
        ]
    )
    subjective = text_response & (rng.random(n) < cal.subjective_text_fraction)

    num_choices = np.empty(n, dtype=np.int64)
    for i, ops in enumerate(operators):
        primary = ops[0]
        if primary == Operator.FILTER:
            num_choices[i] = rng.integers(2, 4)
        elif primary == Operator.RATE:
            num_choices[i] = rng.integers(4, 6)
        elif primary in TEXT_RESPONSE_OPERATORS:
            num_choices[i] = rng.integers(3, 7)
        else:
            num_choices[i] = rng.integers(2, 6)

    redundancy = rng.choice(
        np.arange(1, 6), size=n, p=[0.10, 0.30, 0.30, 0.20, 0.10]
    ).astype(np.int64)

    target_disagreement = np.array(
        [
            _compose_disagreement(
                config,
                rng,
                operators[i][0],
                int(num_words[i]),
                int(num_text_boxes[i]),
                int(num_examples[i]),
                float(items_median[i]),
                bool(subjective[i]),
            )
            for i in range(n)
        ]
    )

    base_task_time = np.array(
        [
            _compose_task_time(
                config,
                rng,
                operators[i][0],
                int(num_text_boxes[i]),
                int(num_images[i]),
                float(items_median[i]),
            )
            for i in range(n)
        ]
    )

    base_pickup_time = np.array(
        [
            _compose_pickup_time(
                config,
                rng,
                int(num_examples[i]),
                int(num_images[i]),
                float(items_median[i]),
            )
            for i in range(n)
        ]
    )

    template_salt = rng.integers(1, 2**31 - 1, size=n, dtype=np.int64)

    return TaskPopulation(
        goal=goal_arr,
        goals=goals,
        operators=operators,
        data_types=data_types,
        title=np.array(titles, dtype=object),
        num_words=num_words,
        num_text_boxes=num_text_boxes,
        num_examples=num_examples,
        num_images=num_images,
        items_median=items_median,
        cluster_size=cluster_size,
        start_week=start_week,
        duration_weeks=duration_weeks,
        burst=burst,
        subjective=subjective,
        num_choices=num_choices,
        redundancy=redundancy,
        target_disagreement=target_disagreement,
        base_task_time=base_task_time,
        base_pickup_time=base_pickup_time,
        template_salt=template_salt,
    )
