"""Worker-answer model: from target disagreement to raw responses.

Per batch the model is: each item has a latent modal ("true") answer among
``m`` alternatives; each of the item's ``R`` workers gives the modal answer
with probability ``q`` (modulated by their personal accuracy) and otherwise
a uniformly random wrong alternative.  The expected pairwise disagreement of
two answers is then::

    D(q, m) = 1 - [ q^2 + (1 - q)^2 / (m - 1) ]

:func:`modal_probability_for_disagreement` inverts this analytically so a
task's *target* disagreement (composed from design-feature effects in
:mod:`repro.simulator.tasks`) translates into the per-answer probability
the generator actually uses.  Subjective free-form tasks bypass the model:
every response is unique, yielding disagreement ≈ 1 × their target share.
"""

from __future__ import annotations

import numpy as np


def expected_disagreement(q: np.ndarray | float, m: np.ndarray | int) -> np.ndarray:
    """Expected pairwise disagreement given modal probability and choices."""
    q = np.asarray(q, dtype=np.float64)
    m = np.asarray(m, dtype=np.float64)
    if np.any(m < 2):
        raise ValueError("answer model needs at least 2 alternatives")
    return 1.0 - (q**2 + (1.0 - q) ** 2 / (m - 1.0))


def modal_probability_for_disagreement(
    target: np.ndarray | float, m: np.ndarray | int
) -> np.ndarray:
    """Invert :func:`expected_disagreement` for the root with q >= 1/m.

    The quadratic ``(1 + 1/(m-1)) q^2 - (2/(m-1)) q + (1/(m-1) - (1-D)) = 0``
    has its meaningful root on the high-agreement branch.  Targets above the
    maximum achievable disagreement (at q = 1/m, i.e. uniform answers) are
    clamped.
    """
    target = np.atleast_1d(np.asarray(target, dtype=np.float64))
    m = np.broadcast_to(np.asarray(m, dtype=np.float64), target.shape).copy()
    if np.any(m < 2):
        raise ValueError("answer model needs at least 2 alternatives")
    # Max disagreement occurs at q = 1/m: D_max = 1 - 1/m.
    d_max = 1.0 - 1.0 / m
    d = np.clip(target, 0.0, d_max - 1e-9)

    k = 1.0 / (m - 1.0)
    a = 1.0 + k
    b = -2.0 * k
    c = k - (1.0 - d)
    disc = np.maximum(b * b - 4.0 * a * c, 0.0)
    q = (-b + np.sqrt(disc)) / (2.0 * a)
    return np.clip(q, 1.0 / m, 1.0)


def draw_answers(
    rng: np.random.Generator,
    modal_prob: np.ndarray,
    true_answer: np.ndarray,
    num_choices: int,
) -> np.ndarray:
    """Draw per-instance answer *indices* (0..m-1).

    ``modal_prob`` and ``true_answer`` are per-instance arrays; wrong answers
    are uniform over the remaining ``m - 1`` alternatives.
    """
    n = len(true_answer)
    if num_choices < 2:
        raise ValueError("need at least 2 choices")
    correct = rng.random(n) < modal_prob
    # Wrong answer: offset 1..m-1 from the true index, modulo m.
    offsets = rng.integers(1, num_choices, size=n)
    answers = np.where(correct, true_answer, (true_answer + offsets) % num_choices)
    return answers.astype(np.int64)


def choice_strings(task_id: int, num_choices: int, textual: bool) -> list[str]:
    """Human-ish response strings for one task's answer alternatives.

    Click-based operators share a compact option vocabulary; textual
    operators get task-specific strings (the same distinct task re-uses its
    answer vocabulary across batches, which is harmless because the
    disagreement metric only compares answers *within* an item).
    """
    if textual:
        return [f"task{task_id}_answer_{k}" for k in range(num_choices)]
    if num_choices == 2:
        return ["yes", "no"]
    return [f"option_{k + 1}" for k in range(num_choices)]
