"""Per-day assignment of task instances to workers.

Instances are grouped by the day their pickup lands on, and each day's
volume is distributed by a *presence-implies-work* rule:

**Casual classes (one-day, short, regular).**  A worker who shows up on a
day came to work: they take a class-dependent task bundle.  One-day workers
take a single larger session (the paper's 52.7% one-day workers average
≈17 tasks, together ≈2.4% of all work); short and regular workers take
modest daily bundles.  On busy days bundles scale up toward the casual
share target (Figure 5b's bottom-90% also rises with load), bounded by a
maximum stretch factor and a hard volume cap.

**Power workers.**  Whatever remains goes to the available power workers by
a weight-proportional multinomial — the heavy-tailed dedicated core that
absorbs the marketplace's load flux (Figure 5b), keeping the distinct
active-worker count stable while per-worker hauls stretch (Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.simulator.config import Calibration
from repro.simulator.workers import POWER, WorkerPool


def allocate_workers(
    start_days: np.ndarray,
    workers: WorkerPool,
    rng: np.random.Generator,
    calibration: Calibration | None = None,
) -> np.ndarray:
    """Assign a worker id to every instance.

    ``start_days`` is the day index on which each instance is picked up.
    Returns an int array of worker indices aligned with ``start_days``.
    """
    cal = calibration if calibration is not None else Calibration()
    n = len(start_days)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out

    engagement = workers.engagement
    is_power = engagement == POWER
    lambda_of_class = np.zeros(4)
    lambda_of_class[:3] = cal.casual_bundle_lambdas

    order = np.argsort(start_days, kind="stable")
    sorted_days = start_days[order]
    boundaries = np.flatnonzero(np.r_[True, sorted_days[1:] != sorted_days[:-1]])
    ends = np.r_[boundaries[1:], n]

    for b, e in zip(boundaries, ends):
        day = int(sorted_days[b])
        count = e - b
        slots = order[b:e].copy()
        rng.shuffle(slots)

        available = workers.available_on_day(day)

        # --- casual bundles -------------------------------------------- #
        casual_ids = np.flatnonzero(available & ~is_power)
        cursor = 0
        if casual_ids.size:
            rng.shuffle(casual_ids)
            natural = 1 + rng.poisson(lambda_of_class[engagement[casual_ids]])
            natural_total = int(natural.sum())
            target = cal.casual_share_target * count
            cap = max(int(cal.casual_volume_cap * count), 1)
            if natural_total < target:
                # Quiet pool, busy day: stretch bundles toward the target.
                scale = min(target / max(natural_total, 1), cal.casual_max_scale)
                natural = np.maximum(np.round(natural * scale), 1).astype(np.int64)
            elif natural_total > cap:
                # Busy pool, quiet day: shrink bundles fairly so everyone
                # present still works (presence implies work).
                natural = np.maximum(
                    np.floor(natural * (cap / natural_total)), 1
                ).astype(np.int64)
            for worker, bundle in zip(casual_ids, natural):
                take = min(int(bundle), cap - cursor, count - cursor)
                if take <= 0:
                    break
                out[slots[cursor:cursor + take]] = worker
                cursor += take

        # --- power absorbs the flux ------------------------------------ #
        remaining = count - cursor
        if remaining == 0:
            continue
        pool = available & is_power
        if not pool.any():
            # Fallback 1: any power worker whose window covers the day.
            pool = (workers.start_day <= day) & (day <= workers.end_day) & is_power
        if not pool.any():
            # Fallback 2: any available worker at all.
            pool = available
        if not pool.any():
            # Fallback 3 (tiny scales / calendar edges): everyone.
            pool = np.ones(workers.num_workers, dtype=bool)
        candidate_ids = np.flatnonzero(pool)
        weights = workers.weight[candidate_ids]
        probabilities = weights / weights.sum()
        counts = rng.multinomial(remaining, probabilities)
        assigned = np.repeat(candidate_ids, counts)
        rng.shuffle(assigned)
        out[slots[cursor:]] = assigned
    return out
