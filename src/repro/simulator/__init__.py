"""The synthetic crowdsourcing-marketplace generator.

This is the substitute for the paper's proprietary dataset.  A single call to
:func:`~repro.simulator.engine.simulate_marketplace` produces a
:class:`~repro.simulator.engine.MarketplaceState` holding the full ground
truth: sources, workers, distinct tasks, batches, and the instance-level
event log (who did what, when, with which answer and trust score).

The generator is *calibrated to the paper's published statistics* — every
effect the paper reports (examples reduce disagreement and pickup time,
text-boxes slow workers down, heavy-hitter clusters dominate the batch count,
the top-10% of workers absorb load spikes, ...) is baked into the generative
process, and the analysis layer must recover it from raw rows only.
"""

from repro.simulator.config import Calibration, SimulationConfig
from repro.simulator.engine import MarketplaceState, simulate_marketplace

__all__ = [
    "Calibration",
    "MarketplaceState",
    "SimulationConfig",
    "simulate_marketplace",
]
