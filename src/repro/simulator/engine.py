"""The simulation engine: orchestrates all generators into a full event log.

The output :class:`MarketplaceState` contains both the *observable* world
(instances with timestamps, workers, responses, trust scores) and the
*latent* ground truth (task targets, worker skill) — the latter is exposed
only so tests can verify that the analysis layer recovers the truth from raw
rows; analysis code never reads it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.simulator.allocation import allocate_workers
from repro.simulator.answers import modal_probability_for_disagreement
from repro.simulator.arrivals import BatchSchedule, generate_batches, market_envelope
from repro.simulator.config import SimulationConfig
from repro.simulator.rng import StreamFactory
from repro.simulator.sources import SourcePool, generate_sources
from repro.simulator.tasks import (
    TEXT_RESPONSE_OPERATORS,
    TaskPopulation,
    generate_tasks,
)
from repro.simulator.workers import WorkerPool, generate_workers
from repro.stats.timeseries import DAY_SECONDS, WEEK_SECONDS

#: Rows of the instance event log produced by this process (across builds).
_ROWS_SIMULATED = obs.counter("simulate.instances_rows")


@dataclass
class InstanceLog:
    """Column-oriented per-instance event log (index = instance id)."""

    batch_idx: np.ndarray  # int: batch performing the work
    task_idx: np.ndarray  # int: distinct task (latent; released data omits it)
    item_id: np.ndarray  # int: globally unique item operated on
    worker_id: np.ndarray  # int
    start_time: np.ndarray  # int: seconds since epoch (pickup moment)
    end_time: np.ndarray  # int: seconds since epoch (completion)
    trust: np.ndarray  # float in [0, 1]
    response: np.ndarray  # object: worker's answer string
    #: Global instance ids.  ``None`` means the log is dense (row i == id i,
    #: e.g. hand-built logs in repro.abtest); a sharded simulation carries
    #: the monolithic ids of its slice here so downstream layers keep global
    #: numbering.
    instance_id: np.ndarray | None = None

    @property
    def num_instances(self) -> int:
        return len(self.batch_idx)

    @property
    def global_ids(self) -> np.ndarray:
        """Global instance ids, materializing ``arange`` for dense logs."""
        if self.instance_id is not None:
            return self.instance_id
        return np.arange(self.num_instances, dtype=np.int64)


@dataclass
class MarketplaceState:
    """Full simulator ground truth."""

    config: SimulationConfig
    envelope: np.ndarray
    sources: SourcePool
    workers: WorkerPool
    tasks: TaskPopulation
    batches: BatchSchedule
    instances: InstanceLog


def _weekly_load_factor(
    config: SimulationConfig, batches: BatchSchedule
) -> np.ndarray:
    """Per-batch load factor: weekly instance volume relative to the
    post-regime median (the §3.2 finding: high-load weeks move *faster*)."""
    weeks = batches.start_time // WEEK_SECONDS
    weekly = np.bincount(
        weeks, weights=batches.num_instances.astype(np.float64),
        minlength=config.num_weeks,
    )
    load_of_batch = weekly[weeks]
    # Normalize so the *typical batch* sits at factor 1 (median over
    # batches, not over calendar weeks — batches concentrate in busy weeks).
    median_load = float(np.median(load_of_batch)) if len(load_of_batch) else 1.0
    return np.maximum(load_of_batch / max(median_load, 1.0), 1e-3)


def _expand_batches(batches: BatchSchedule) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(instance->batch index, within-batch position, item id) arrays."""
    counts = batches.num_instances
    batch_of_instance = np.repeat(np.arange(batches.num_batches), counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    position = np.arange(counts.sum(), dtype=np.int64) - np.repeat(offsets, counts)
    # Items interleave: positions 0..k-1 are item 0..k-1's first answers,
    # then the replica rounds follow.
    items_per_batch = np.repeat(batches.num_items, counts)
    item_index = position % items_per_batch
    item_offsets = np.concatenate([[0], np.cumsum(batches.num_items)[:-1]])
    item_id = np.repeat(item_offsets, counts) + item_index
    return batch_of_instance, position, item_id


def _validate_shard(shard: int | None, num_shards: int | None) -> bool:
    """Validate a ``(shard, num_shards)`` pair; True when shard mode is on."""
    if shard is None and num_shards is None:
        return False
    if shard is None or num_shards is None:
        raise ValueError("shard and num_shards must be given together")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard must be in [0, {num_shards}), got {shard}")
    return True


def simulate_marketplace(
    config: SimulationConfig,
    *,
    shard: int | None = None,
    num_shards: int | None = None,
) -> MarketplaceState:
    """Run the full generative model for ``config``.  Deterministic in seed.

    With ``shard``/``num_shards`` set, the world layers (sources, envelope,
    tasks, batches, workers) are generated in full — they are cheap and the
    generative couplings (daily worker allocation, weekly load) span all
    batches — but the expensive instance *materialization* (answer strings,
    the event-log columns) is restricted to batches with
    ``batch_id % num_shards == shard``.  Numeric RNG draws are replayed at
    full size so the union of all shards is byte-identical to the monolithic
    run (see :mod:`repro.shard`).
    """
    sharded = _validate_shard(shard, num_shards)
    streams = StreamFactory(config.seed)

    with obs.span("simulate", seed=config.seed, weeks=config.num_weeks) as sp:
        with obs.span("simulate.sources"):
            sources = generate_sources(streams)
        with obs.span("simulate.envelope"):
            envelope = market_envelope(config, streams)
        with obs.span("simulate.tasks"):
            tasks = generate_tasks(config, envelope, streams)
        with obs.span("simulate.batches"):
            batches = generate_batches(config, tasks, envelope, streams)
        with obs.span("simulate.workers"):
            workers = generate_workers(config, sources, envelope, streams)

        keep_batches = None
        if sharded:
            # Partition key: batch id modulo shard count.  Must agree with
            # repro.shard.partition.shard_of_batches (kept inline here to
            # avoid an import cycle with the shard package).
            keep_batches = (
                np.arange(batches.num_batches, dtype=np.int64) % num_shards
                == shard
            )
            sp.set("shard", shard)
            sp.set("num_shards", num_shards)

        instances = simulate_instances(
            config, tasks, batches, workers, streams, keep_batches=keep_batches
        )
        sp.set("instances", instances.num_instances)
    return MarketplaceState(
        config=config,
        envelope=envelope,
        sources=sources,
        workers=workers,
        tasks=tasks,
        batches=batches,
        instances=instances,
    )


def simulate_instances(
    config: SimulationConfig,
    tasks: TaskPopulation,
    batches: BatchSchedule,
    workers: WorkerPool,
    streams: StreamFactory,
    *,
    keep_batches: np.ndarray | None = None,
) -> InstanceLog:
    """Simulate the instance-level event log for a given world.

    Exposed separately from :func:`simulate_marketplace` so controlled
    experiments (see :mod:`repro.abtest`) can run the identical pickup /
    allocation / timing / answer machinery over hand-built task and batch
    populations.

    ``keep_batches`` (bool per batch) restricts the *materialized* log to
    those batches while replaying every numeric RNG draw at full size, so a
    kept row carries exactly the bytes the monolithic run would give it.
    """
    with obs.span("simulate.instances") as sp:
        log = _simulate_instances(
            config, tasks, batches, workers, streams, keep_batches=keep_batches
        )
        sp.set("rows", log.num_instances)
    _ROWS_SIMULATED.inc(log.num_instances)
    return log


def _simulate_instances(
    config: SimulationConfig,
    tasks: TaskPopulation,
    batches: BatchSchedule,
    workers: WorkerPool,
    streams: StreamFactory,
    *,
    keep_batches: np.ndarray | None = None,
) -> InstanceLog:
    if keep_batches is not None:
        return _simulate_instances_sharded(
            config, tasks, batches, workers, streams, keep_batches
        )

    cal = config.calibration
    timing_rng = streams.stream("timing")
    answer_rng = streams.stream("answers")
    alloc_rng = streams.stream("allocation")

    batch_of_instance, position, item_id = _expand_batches(batches)
    n = len(batch_of_instance)
    task_of_instance = batches.task_idx[batch_of_instance]
    batch_start = batches.start_time[batch_of_instance]
    horizon_sec = config.num_weeks * WEEK_SECONDS

    # ------------------------------------------------------------------ #
    # Pickup times (latency): batch target x load factor x queue position.
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.pickup"):
        load_factor = _weekly_load_factor(config, batches)[batch_of_instance]
        pickup_target = (
            tasks.base_pickup_time[task_of_instance]
            * load_factor**cal.pickup_load_exponent
        )
        sequence_factor = (
            1.0 + position / cal.pickup_parallelism
        ) ** cal.pickup_sequence_exponent
        pickup = (
            pickup_target
            * sequence_factor
            * np.exp(timing_rng.normal(0.0, cal.pickup_instance_noise_sd, size=n))
        )
        start_time = np.minimum(
            batch_start + pickup.astype(np.int64), horizon_sec - 1
        )

    # ------------------------------------------------------------------ #
    # Worker assignment (per pickup day).
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.allocation"):
        start_days = start_time // DAY_SECONDS
        worker_id = allocate_workers(start_days, workers, alloc_rng, cal)

    # ------------------------------------------------------------------ #
    # Task times (cost): batch base x instance noise x worker speed x
    # within-batch learning (a worker's k-th instance of a batch is faster).
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.timing"):
        task_time = (
            tasks.base_task_time[task_of_instance]
            * np.exp(
                timing_rng.normal(0.0, cal.task_time_instance_noise_sd, size=n)
            )
            * workers.speed[worker_id]
        )
        if cal.within_batch_learning_exponent:
            experience = _within_batch_experience(
                batch_of_instance, worker_id, start_time
            )
            task_time = task_time * (
                (1.0 + experience) ** -cal.within_batch_learning_exponent
            )
        end_time = start_time + np.maximum(task_time.astype(np.int64), 1)

    # ------------------------------------------------------------------ #
    # Trust scores.
    # ------------------------------------------------------------------ #
    trust = np.clip(
        workers.accuracy[worker_id]
        + answer_rng.normal(0.0, cal.trust_noise_sd, size=n),
        0.0,
        1.0,
    )

    # ------------------------------------------------------------------ #
    # Answers.
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.answers"):
        response = _generate_responses(
            config,
            tasks,
            batches,
            batch_of_instance,
            task_of_instance,
            item_id,
            workers,
            worker_id,
            answer_rng,
        )

    return InstanceLog(
        batch_idx=batch_of_instance,
        task_idx=task_of_instance,
        item_id=item_id,
        worker_id=worker_id,
        start_time=start_time.astype(np.int64),
        end_time=end_time.astype(np.int64),
        trust=trust,
        response=response,
    )


def _simulate_instances_sharded(
    config: SimulationConfig,
    tasks: TaskPopulation,
    batches: BatchSchedule,
    workers: WorkerPool,
    streams: StreamFactory,
    keep_batches: np.ndarray,
) -> InstanceLog:
    """Shard-mode twin of :func:`_simulate_instances`: same draws, bounded
    memory.

    Every RNG call is replayed with the monolithic size and order (the
    timing/allocation/answer streams are shared across shards), but each
    full-length array is sliced down to this shard's rows at its first
    opportunity and the full-length original freed — elementwise arithmetic
    commutes with row selection, so a kept row still carries exactly the
    bytes the monolithic run would give it (the differential suite in
    ``tests/test_shard_equivalence.py`` pins this).  The only full-length
    arrays that must *persist* across stages are the pickup → start-time →
    allocation chain: worker allocation draws couple globally per pickup
    day, so it cannot run on a slice.
    """
    cal = config.calibration
    timing_rng = streams.stream("timing")
    answer_rng = streams.stream("answers")
    alloc_rng = streams.stream("allocation")

    batch_of_instance, position, item_id = _expand_batches(batches)
    n = len(batch_of_instance)
    horizon_sec = config.num_weeks * WEEK_SECONDS

    keep = keep_batches[batch_of_instance]
    sel = np.flatnonzero(keep)
    del keep
    item_sel = item_id[sel]
    del item_id  # answers only read this shard's item rows

    # ------------------------------------------------------------------ #
    # Pickup times.  The product accumulates in place, in the monolithic
    # association order ((target * sequence) * noise), so the bytes match.
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.pickup"):
        task_of_instance = batches.task_idx[batch_of_instance]
        task_sel = task_of_instance[sel]
        pickup = (
            tasks.base_pickup_time[task_of_instance]
            * _weekly_load_factor(config, batches)[batch_of_instance]
            ** cal.pickup_load_exponent
        )
        del task_of_instance
        batch_sel = batch_of_instance[sel]
        batch_start = batches.start_time[batch_of_instance]
        del batch_of_instance
        pickup *= (
            1.0 + position / cal.pickup_parallelism
        ) ** cal.pickup_sequence_exponent
        del position
        noise = timing_rng.normal(0.0, cal.pickup_instance_noise_sd, size=n)
        np.exp(noise, out=noise)  # in place: one full-length transient fewer
        pickup *= noise
        del noise
        start_time = batch_start + pickup.astype(np.int64)
        np.minimum(start_time, horizon_sec - 1, out=start_time)
        del batch_start, pickup

    # ------------------------------------------------------------------ #
    # Worker assignment — the one stage that must stay full length: each
    # pickup day's allocation draws depend on every instance landing on it.
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.allocation"):
        start_days = start_time // DAY_SECONDS
        worker_id = allocate_workers(start_days, workers, alloc_rng, cal)
        del start_days
        start_sel = start_time[sel]
        del start_time
        worker_sel = worker_id[sel]
        del worker_id

    # ------------------------------------------------------------------ #
    # Task times.  ``_within_batch_experience`` runs on the slice alone:
    # its (batch, worker) runs never cross shards (batches are whole within
    # a shard) and slicing preserves the stable lexsort's tie order, so the
    # within-run ranks are unchanged.
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.timing"):
        noise = timing_rng.normal(
            0.0, cal.task_time_instance_noise_sd, size=n
        )[sel]
        np.exp(noise, out=noise)
        task_time = (
            tasks.base_task_time[task_sel] * noise * workers.speed[worker_sel]
        )
        del noise
        if cal.within_batch_learning_exponent:
            experience = _within_batch_experience(
                batch_sel, worker_sel, start_sel
            )
            task_time = task_time * (
                (1.0 + experience) ** -cal.within_batch_learning_exponent
            )
        end_time = start_sel + np.maximum(task_time.astype(np.int64), 1)

    # ------------------------------------------------------------------ #
    # Trust scores.
    # ------------------------------------------------------------------ #
    trust = np.clip(
        workers.accuracy[worker_sel]
        + answer_rng.normal(0.0, cal.trust_noise_sd, size=n)[sel],
        0.0,
        1.0,
    )

    # ------------------------------------------------------------------ #
    # Answers.
    # ------------------------------------------------------------------ #
    with obs.span("simulate.instances.answers"):
        response = _generate_responses_sharded(
            config,
            tasks,
            batches,
            workers,
            answer_rng,
            n=n,
            sel=sel,
            task_sel=task_sel,
            item_sel=item_sel,
            worker_sel=worker_sel,
        )

    return InstanceLog(
        batch_idx=batch_sel,
        task_idx=task_sel,
        item_id=item_sel,
        worker_id=worker_sel,
        start_time=start_sel.astype(np.int64),
        end_time=end_time.astype(np.int64),
        trust=trust,
        response=response,
        instance_id=sel.astype(np.int64),
    )


def _within_batch_experience(
    batch_of_instance: np.ndarray,
    worker_id: np.ndarray,
    start_time: np.ndarray,
) -> np.ndarray:
    """0-based rank of each instance within its (batch, worker) sequence,
    ordered by start time — i.e. how many instances of this batch the worker
    has already completed."""
    order = np.lexsort((start_time, worker_id, batch_of_instance))
    sorted_batch = batch_of_instance[order]
    sorted_worker = worker_id[order]
    new_run = np.r_[
        True,
        (sorted_batch[1:] != sorted_batch[:-1])
        | (sorted_worker[1:] != sorted_worker[:-1]),
    ]
    run_id = np.cumsum(new_run) - 1
    position = np.arange(len(order), dtype=np.int64)
    run_starts = position[new_run]
    rank_sorted = position - run_starts[run_id]
    experience = np.empty(len(order), dtype=np.float64)
    experience[order] = rank_sorted
    return experience


def _build_choice_pool(
    num_choices: np.ndarray, textual: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The concatenated per-task answer-string pools, built in one pass.

    Returns ``(pool_array, pool_offsets)`` such that
    ``pool_array[pool_offsets[t] + k]`` is the k-th alternative of task
    ``t`` — string-for-string identical to concatenating
    :func:`repro.simulator.answers.choice_strings` per task, but with the
    offsets precomputed via ``np.cumsum`` and every slot filled from flat
    (task, k) index arrays instead of a per-task loop.
    """
    counts = num_choices.astype(np.int64)
    num_tasks = len(counts)
    pool_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    total = int(counts.sum())
    task_of_slot = np.repeat(np.arange(num_tasks, dtype=np.int64), counts)
    k_of_slot = np.arange(total, dtype=np.int64) - pool_offsets[task_of_slot]

    pool_array = np.empty(total, dtype=object)
    textual_slot = textual[task_of_slot]
    binary_slot = ~textual_slot & (counts[task_of_slot] == 2)
    option_slot = ~textual_slot & ~binary_slot

    pool_array[binary_slot & (k_of_slot == 0)] = "yes"
    pool_array[binary_slot & (k_of_slot == 1)] = "no"
    if option_slot.any():
        max_k = int(k_of_slot[option_slot].max()) + 1
        option_strings = np.array(
            [f"option_{k + 1}" for k in range(max_k)], dtype=object
        )
        pool_array[option_slot] = option_strings[k_of_slot[option_slot]]
    if textual_slot.any():
        t_idx = task_of_slot[textual_slot].tolist()
        k_idx = k_of_slot[textual_slot].tolist()
        pool_array[textual_slot] = np.array(
            [f"task{t}_answer_{k}" for t, k in zip(t_idx, k_idx)], dtype=object
        )
    return pool_array, pool_offsets


def _generate_responses(
    config: SimulationConfig,
    tasks: TaskPopulation,
    batches: BatchSchedule,
    batch_of_instance: np.ndarray,
    task_of_instance: np.ndarray,
    item_id: np.ndarray,
    workers: WorkerPool,
    worker_id: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Raw response strings for every instance."""
    cal = config.calibration
    n = len(batch_of_instance)

    # Per-task modal-answer probability from the target disagreement.
    num_choices = tasks.num_choices.astype(np.int64)
    q_task = modal_probability_for_disagreement(
        tasks.target_disagreement, num_choices
    )

    # Per-item latent modal answer.  Items are globally indexed in batch
    # order; each item's choice count is its batch's task's.
    total_items = int(batches.num_items.sum())
    m_of_batch = num_choices[batches.task_idx]
    m_of_item = np.repeat(m_of_batch, batches.num_items)
    true_answer_of_item = (
        rng.random(total_items) * m_of_item
    ).astype(np.int64)

    m_inst = m_of_item[item_id]
    true_inst = true_answer_of_item[item_id]

    # Worker-modulated modal probability.
    q_inst = np.clip(
        q_task[task_of_instance]
        + cal.worker_accuracy_coupling
        * (workers.accuracy[worker_id] - cal.mean_worker_accuracy),
        0.02,
        0.999,
    )
    correct = rng.random(n) < q_inst
    wrong_offset = 1 + (rng.random(n) * (m_inst - 1)).astype(np.int64)
    answer_idx = np.where(correct, true_inst, (true_inst + wrong_offset) % m_inst)

    # Map answer indices to strings through a global per-task choice pool.
    textual = np.array(
        [ops[0] in TEXT_RESPONSE_OPERATORS for ops in tasks.operators]
    )
    pool_array, pool_offsets = _build_choice_pool(num_choices, textual)
    response = pool_array[pool_offsets[task_of_instance] + answer_idx]

    # Subjective free-form tasks: every response is unique.
    subjective_inst = tasks.subjective[task_of_instance]
    num_subjective = int(subjective_inst.sum())
    if num_subjective:
        unique_ids = np.flatnonzero(subjective_inst)
        response[unique_ids] = np.array(
            [f"freeform response #{i}" for i in unique_ids], dtype=object
        )
    return response


def _generate_responses_sharded(
    config: SimulationConfig,
    tasks: TaskPopulation,
    batches: BatchSchedule,
    workers: WorkerPool,
    rng: np.random.Generator,
    *,
    n: int,
    sel: np.ndarray,
    task_sel: np.ndarray,
    item_sel: np.ndarray,
    worker_sel: np.ndarray,
) -> np.ndarray:
    """Shard-mode :func:`_generate_responses`: draws at full size ``n`` (the
    answer stream must match the monolithic run byte for byte), everything
    derived — modal probabilities, correctness, answer indices, and the
    object-string materialization — only on the ``sel`` rows this shard
    owns.  Subjective responses are keyed by *global* instance id so the
    union of shards reproduces the monolithic strings exactly.
    """
    cal = config.calibration

    num_choices = tasks.num_choices.astype(np.int64)
    q_task = modal_probability_for_disagreement(
        tasks.target_disagreement, num_choices
    )

    # The per-item modal answers stay full length: items are globally
    # indexed, and their array is item-sized, far below instance-sized.
    total_items = int(batches.num_items.sum())
    m_of_batch = num_choices[batches.task_idx]
    m_of_item = np.repeat(m_of_batch, batches.num_items)
    true_answer_of_item = (
        rng.random(total_items) * m_of_item
    ).astype(np.int64)

    m_sel = m_of_item[item_sel]
    true_sel = true_answer_of_item[item_sel]
    del m_of_item, true_answer_of_item

    q_sel = np.clip(
        q_task[task_sel]
        + cal.worker_accuracy_coupling
        * (workers.accuracy[worker_sel] - cal.mean_worker_accuracy),
        0.02,
        0.999,
    )
    correct = rng.random(n)[sel] < q_sel
    wrong_offset = 1 + (rng.random(n)[sel] * (m_sel - 1)).astype(np.int64)
    answer_idx = np.where(correct, true_sel, (true_sel + wrong_offset) % m_sel)

    textual = np.array(
        [ops[0] in TEXT_RESPONSE_OPERATORS for ops in tasks.operators]
    )
    pool_array, pool_offsets = _build_choice_pool(num_choices, textual)
    response = pool_array[pool_offsets[task_sel] + answer_idx]
    subjective_local = np.flatnonzero(tasks.subjective[task_sel])
    if len(subjective_local):
        response[subjective_local] = np.array(
            [f"freeform response #{i}" for i in sel[subjective_local]],
            dtype=object,
        )
    return response
