"""Deterministic random-stream management.

Each simulator stage gets its own named substream derived from the master
seed, so changing how many draws one stage makes never perturbs another
stage's output — essential for calibration work and for tests that pin
specific stages.
"""

from __future__ import annotations

import numpy as np

#: Stable per-stage tags (order matters only for readability).
_STAGES = (
    "sources",
    "workers",
    "tasks",
    "batches",
    "answers",
    "timing",
    "allocation",
    "html",
    "release",
    "labels",
)


class StreamFactory:
    """Factory of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int):
        self._seed = int(seed)

    def stream(self, stage: str, index: int = 0) -> np.random.Generator:
        """A generator unique to ``(seed, stage, index)``.

        ``stage`` may be any string; the constants in ``_STAGES`` document
        the streams the engine uses.
        """
        tag = sum(ord(c) * 1000003**i for i, c in enumerate(stage)) % (2**31)
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(tag, int(index)))
        return np.random.default_rng(seq)

    @property
    def seed(self) -> int:
        return self._seed
