"""The marketplace's 139 labor sources (paper Table 4) and their properties.

The paper's headline source facts, all encoded here:

- 139 distinct sources; the top-10 by workers supply ≈86% of workers and
  ≈95% of tasks (§5.1);
- NeoDev alone contributed ≈27k of ≈69k workers; Mechanical Turk (``amt``)
  only ≈1.5% of workers;
- the marketplace's ``internal`` pool is ≈2.5% of workers and ≈2% of tasks;
- ≈10% of sources have mean trust < 0.8 (some < 0.5); ≈5% of sources have
  mean relative task time ≥ 3, three of them ≥ 10; ``amt`` is poor on both
  (trust ≈ 0.75, relative time > 5);
- some sources are geographically specialized (``imerit_india``,
  ``yute_jamaica``, ``task_ph``, ``daproimafrica``, ...);
- sources split into *dedicated* pools (few workers, thousands of tasks
  each) and *on-demand* pools (many workers, ≤20 tasks each) — Figure 26a.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulator.rng import StreamFactory

#: Verbatim Table 4 of the paper (139 sources, reading order).
SOURCE_NAMES: tuple[str, ...] = (
    "neodev", "clixsense", "prodege", "elite", "instagc", "tremorgames",
    "internal", "bitcoinget",
    "amt", "superrewards", "eup_slw", "gifthunterclub", "taskhunter",
    "prizerebel", "hiving", "fusioncash",
    "points2shop", "clicksfx", "getpaid", "cotter", "coinworker", "vivatic",
    "piyanstantrewards", "inboxpounds",
    "imerit_india", "personaly", "stuffpoint", "errtopc", "taskspay",
    "zoombucks", "crowdgur", "gifthulk",
    "tasks4dollars", "dollarsignup", "indivillagetest", "cbf", "mycashtasks",
    "sendearnings", "treasuretrooper", "pokerowned",
    "diamondtask", "pforads", "quickrewards", "uniquerewards",
    "extralunchmoney", "cashcrate", "wannads", "gptbanks",
    "listia", "gradible", "dailyrewardsca", "clickfair", "superpayme",
    "memolink", "rewardok", "snowcirrustechbpo",
    "pedtoclick", "rewardingways", "callmemoney", "pocketmoneygpt",
    "goldtasks", "dollarrewardz", "surveymad", "sharecashgpt",
    "irazoo", "zapbux", "ptcsolution", "ptc123", "content_runner", "jetbux",
    "qpr", "cointasker",
    "point_dollars", "meprizescf", "keeprewarding", "gptking", "dollarsgpt",
    "prizeplank", "yute_jamaica", "onestopgpt",
    "gptway", "trial_pay", "task_ph", "golddiggergpt", "prizezombie",
    "daproimafrica", "aceinnovations", "getpaidto",
    "globalactioncash", "piyoogle", "supersonicads", "poin_web",
    "rewardsspot", "giftgpt", "giftcardgpt", "northclicks",
    "fastcashgpt", "dealbarbiepays", "dailysurveypanel", "points4rewards",
    "gptpal", "rewards1", "new_rules", "surewardsgpt",
    "zorbor", "steamgameswap", "buxense", "surveywage", "offernation",
    "probux", "freeride", "ojooo",
    "luckytaskz", "medievaleurope", "proudclick", "steampowers",
    "paiddailysurveys", "wrkshop", "simplegpt", "realworld",
    "surveytokens", "bemybux", "onestop", "plusdollars", "gptbucks",
    "fepcrowdflower", "embee", "makethatdollar",
    "ayuwage", "luckykoin", "pointst", "sedgroup", "easycashclicks",
    "candy_ph", "piggybankgpt", "peoplesgpt",
    "matomy", "earnthemost", "fsprizes",
)

#: Worker-count share of the ten biggest sources (≈86% of all workers, with
#: neodev ≈ 27k/69k ≈ 39%).  The remaining 129 sources share ≈14% on a
#: geometric tail.
_TOP10_WORKER_SHARES: dict[str, float] = {
    "neodev": 0.39,
    "clixsense": 0.15,
    "prodege": 0.10,
    "elite": 0.06,
    "instagc": 0.045,
    "tremorgames": 0.035,
    "internal": 0.025,
    "bitcoinget": 0.020,
    "amt": 0.015,
    "superrewards": 0.012,
}

#: Sources whose workers are concentrated in one country.
GEO_SPECIALIZED: dict[str, str] = {
    "imerit_india": "India",
    "indivillagetest": "India",
    "yute_jamaica": "Jamaica",
    "task_ph": "Philippines",
    "candy_ph": "Philippines",
    "daproimafrica": "Kenya",
    "internal": "United States",
    "medievaleurope": "Romania",
}

#: Sources designed to be slow (mean relative task time >= 3; the paper saw
#: ~5% of sources at >=3 and three sources at >=10).
_SLOW_SOURCES: dict[str, float] = {
    "amt": 5.5,
    "pedtoclick": 11.0,
    "ptcsolution": 12.5,
    "zapbux": 10.5,
    "clickfair": 3.5,
    "probux": 3.2,
    "jetbux": 4.0,
}

#: Sources designed to be low-trust (paper: ~10% of sources < 0.8 mean
#: trust, a few below 0.5).
_LOW_TRUST_SOURCES: dict[str, float] = {
    "amt": 0.75,
    "pedtoclick": 0.45,
    "zapbux": 0.48,
    "ptc123": 0.62,
    "clickfair": 0.70,
    "probux": 0.72,
    "jetbux": 0.74,
    "buxense": 0.76,
    "northclicks": 0.78,
    "pforads": 0.77,
    "golddiggergpt": 0.79,
    "easycashclicks": 0.78,
    "sharecashgpt": 0.79,
}

#: Dedicated-workforce sources: few workers each performing thousands of
#: tasks (Figure 26a's top end).  The marketplace's own ``internal`` pool is
#: deliberately NOT here — the paper shows it at ≈2.5% of workers and ≈2% of
#: tasks, i.e. ordinary per-worker load.
DEDICATED_SOURCES = frozenset(
    {"imerit_india", "indivillagetest", "snowcirrustechbpo",
     "daproimafrica", "content_runner", "sedgroup", "wrkshop",
     "aceinnovations", "fepcrowdflower"}
)


@dataclass
class SourcePool:
    """Column-oriented source attributes, aligned with :data:`SOURCE_NAMES`."""

    names: tuple[str, ...]
    worker_share: np.ndarray  # fraction of the worker population
    mean_trust: np.ndarray  # target mean trust of the source's workers
    speed_factor: np.ndarray  # multiplies task time (1.0 = typical)
    dedicated: np.ndarray  # bool: dedicated workforce?
    task_weight_boost: np.ndarray  # allocation weight multiplier
    home_country: list[str | None] = field(default_factory=list)

    @property
    def num_sources(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown source {name!r}") from None


def generate_sources(streams: StreamFactory) -> SourcePool:
    """Instantiate the 139 sources with calibrated attributes."""
    rng = streams.stream("sources")
    n = len(SOURCE_NAMES)

    # Worker shares: fixed top-10, geometric tail for the rest.
    share = np.zeros(n)
    tail_indices = [
        i for i, name in enumerate(SOURCE_NAMES) if name not in _TOP10_WORKER_SHARES
    ]
    tail_total = 1.0 - sum(_TOP10_WORKER_SHARES.values())
    tail_weights = 0.96 ** np.arange(len(tail_indices))
    tail_weights = tail_weights / tail_weights.sum() * tail_total
    for rank, i in enumerate(tail_indices):
        share[i] = tail_weights[rank]
    for name, s in _TOP10_WORKER_SHARES.items():
        share[SOURCE_NAMES.index(name)] = s

    # Trust: healthy sources ~N(0.90, 0.02); designated bad sources pinned.
    mean_trust = np.clip(rng.normal(0.90, 0.02, size=n), 0.82, 0.97)
    for name, trust in _LOW_TRUST_SOURCES.items():
        mean_trust[SOURCE_NAMES.index(name)] = trust

    # Speed: most near 1, slow sources pinned.
    speed = np.exp(rng.normal(0.0, 0.15, size=n))
    for name, factor in _SLOW_SOURCES.items():
        speed[SOURCE_NAMES.index(name)] = factor

    dedicated = np.array([name in DEDICATED_SOURCES for name in SOURCE_NAMES])

    # Dedicated sources' workers individually absorb far more tasks.
    boost = np.where(dedicated, 10.0, 1.0)
    # amt is push-routed only occasionally: mildly deprioritized.
    boost[SOURCE_NAMES.index("amt")] = 0.6

    home = [GEO_SPECIALIZED.get(name) for name in SOURCE_NAMES]

    return SourcePool(
        names=SOURCE_NAMES,
        worker_share=share,
        mean_trust=mean_trust,
        speed_factor=speed,
        dedicated=dedicated,
        task_weight_boost=boost,
        home_country=home,
    )
