"""Market envelope and batch scheduling (paper §3.1).

Two regimes: sparse activity from mid-2012 until January 2015, then a
high-activity regime with weekly lognormal fluctuation plus occasional big
spikes (the paper: busiest day ≈30× the median, lightest ≈0.0004×).  Within
a week, weekdays carry up to 2× the weekend volume and Monday is the peak,
declining across the week (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.config import SimulationConfig
from repro.simulator.rng import StreamFactory
from repro.simulator.tasks import TaskPopulation
from repro.stats.timeseries import DAY_SECONDS, WEEK_SECONDS

#: Relative batch-posting weight per weekday (Mon..Sun), Figure 3's shape.
WEEKDAY_WEIGHTS = np.array([1.40, 1.22, 1.10, 1.00, 0.92, 0.62, 0.58])


def market_envelope(config: SimulationConfig, streams: StreamFactory) -> np.ndarray:
    """Weekly market-intensity curve (arbitrary units, max ≈ spike level).

    Drives distinct-task start weeks, batch placement, and worker arrivals.
    """
    rng = streams.stream("batches", index=1)
    w = np.arange(config.num_weeks, dtype=np.float64)
    switch = config.regime_switch_week

    # Pre-2015: a slow exponential ramp from near-zero.
    pre = 0.004 * np.exp(3.2 * w / switch)
    # Post-2015: a high plateau with a gentle continued ramp.
    post = 1.0 + 0.4 * (w - switch) / max(config.num_weeks - switch, 1)
    envelope = np.where(w < switch, pre, post)

    # Weekly lognormal chop plus occasional demand spikes.
    envelope = envelope * np.exp(rng.normal(0.0, 0.55, size=config.num_weeks))
    spikes = rng.random(config.num_weeks) < 0.10
    envelope = envelope * np.where(
        spikes & (w >= switch), rng.uniform(2.5, 12.0, size=config.num_weeks), 1.0
    )
    return envelope


@dataclass
class BatchSchedule:
    """Column-oriented batch attributes (index = batch id)."""

    task_idx: np.ndarray  # int: distinct task of each batch
    start_time: np.ndarray  # int: batch creation time (seconds since epoch)
    num_items: np.ndarray  # int: items in the batch (a §4.5 design feature)
    redundancy: np.ndarray  # int: answers collected per item
    num_instances: np.ndarray  # int: num_items * redundancy

    @property
    def num_batches(self) -> int:
        return len(self.task_idx)

    @property
    def total_instances(self) -> int:
        return int(self.num_instances.sum())


def _batch_weeks_for_task(
    rng: np.random.Generator,
    start_week: int,
    duration: int,
    count: int,
    burst: bool,
    envelope: np.ndarray,
) -> np.ndarray:
    """Place ``count`` batches into the task's active window.

    Steady tasks spread across the window (weighted by the market
    envelope); burst tasks concentrate most batches into one or two weeks.
    """
    window = np.arange(start_week, start_week + max(duration, 1))
    window = window[window < len(envelope)]
    if window.size == 0:
        window = np.array([min(start_week, len(envelope) - 1)])
    weights = np.maximum(envelope[window], 1e-9)
    if burst and window.size > 1:
        # Concentrate: give one or two focus weeks most of the mass.
        focus = rng.choice(window.size, size=min(2, window.size), replace=False)
        boost = np.ones(window.size)
        boost[focus] = 25.0
        weights = weights * boost
    weights = weights / weights.sum()
    return window[rng.choice(window.size, size=count, p=weights)]


def _intra_week_offsets(rng: np.random.Generator, count: int) -> np.ndarray:
    """Second-of-week offsets with the weekday effect and business hours."""
    days = rng.choice(7, size=count, p=WEEKDAY_WEIGHTS / WEEKDAY_WEIGHTS.sum())
    # Posting times concentrate in an 8:00–20:00 window.
    seconds = (8 * 3600 + rng.integers(0, 12 * 3600, size=count)).astype(np.int64)
    return days.astype(np.int64) * DAY_SECONDS + seconds


def generate_batches(
    config: SimulationConfig,
    tasks: TaskPopulation,
    envelope: np.ndarray,
    streams: StreamFactory,
) -> BatchSchedule:
    """Expand the task population into the full batch schedule."""
    rng = streams.stream("batches")

    task_idx_parts: list[np.ndarray] = []
    week_parts: list[np.ndarray] = []
    for i in range(tasks.num_tasks):
        count = int(tasks.cluster_size[i])
        task_idx_parts.append(np.full(count, i, dtype=np.int64))
        week_parts.append(
            _batch_weeks_for_task(
                rng,
                int(tasks.start_week[i]),
                int(tasks.duration_weeks[i]),
                count,
                bool(tasks.burst[i]),
                envelope,
            )
        )
    task_idx = np.concatenate(task_idx_parts)
    weeks = np.concatenate(week_parts)

    n = len(task_idx)
    start_time = weeks * WEEK_SECONDS + _intra_week_offsets(rng, n)

    # Items per batch: lognormal jitter around the task's typical item count.
    items_median = tasks.items_median[task_idx]
    num_items = np.maximum(
        np.round(items_median * np.exp(rng.normal(0.0, 0.30, size=n))), 1
    ).astype(np.int64)
    # Keep the extreme tail bounded relative to scale (the paper's largest
    # batches are ~80k instances at 27M-instance scale).
    cap = max(int(5000 * config.instance_scale * 20), 200)
    num_items = np.minimum(num_items, cap)

    redundancy = tasks.redundancy[task_idx]
    num_instances = num_items * redundancy

    order = np.argsort(start_time, kind="stable")
    return BatchSchedule(
        task_idx=task_idx[order],
        start_time=start_time[order].astype(np.int64),
        num_items=num_items[order],
        redundancy=redundancy[order],
        num_instances=num_instances[order],
    )
