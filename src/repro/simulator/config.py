"""Simulation configuration: scale presets, calendar, and effect calibration.

The calendar runs from the marketplace epoch (Monday 2012-07-02) for 209
weeks, i.e. through early July 2016, matching the dataset's span.  Week 131
is the Monday of 2015-01-05 — the regime switch the paper observes ("the
task arrival plot is relatively sparse until Jan 2015").

All the paper's quantitative findings enter through :class:`Calibration`.
Changing a calibration constant changes the *generated world*; the analysis
layer never reads this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.taxonomy.labels import Operator

#: Total number of simulated weeks (Jul 2012 – Jul 2016).
NUM_WEEKS = 209

#: First week of the high-activity regime (Monday 2015-01-05).
REGIME_SWITCH_WEEK = 131


@dataclass(frozen=True)
class Calibration:
    """Generative effect sizes, calibrated to the paper's Tables 1–3 and §3/§5.

    Disagreement composition (per distinct task, additive on the target
    average pairwise disagreement):

    - ``base_disagreement_by_operator`` anchors difficulty: gather-style
      tasks are ambiguous, rating tasks are not (Figure 25a/25b).
    - ``disagreement_text_box_penalty`` reproduces Table 1's 0.102 vs 0.160.
    - ``disagreement_words_slope`` (per log2 of #words relative to the
      median 466) reproduces 0.147 vs 0.108.
    - ``disagreement_items_slope`` (per log10 of #items relative to 56)
      reproduces 0.169 vs 0.086.
    - ``disagreement_example_bonus`` reproduces 0.128 vs 0.101.

    Task-time composition (median seconds to complete one instance):
    multiplicative factors reproducing Table 2 (119s vs 286s for text boxes,
    184s vs 129s for images, 230s vs 136s for items via the experience
    exponent).

    Pickup-time composition (median seconds before an instance is started):
    multiplicative factors reproducing Table 3 (6,303s vs 1,353s for
    examples, 7,838s vs 2,431s for images, 4,521s vs 8,132s for items via the
    limited-parallelism exponent) and §3.2's inverse load/pickup relation.
    """

    # --- §4.3–4.6: disagreement ------------------------------------- #
    base_disagreement_by_operator: dict[Operator, float] = field(
        default_factory=lambda: {
            Operator.FILTER: 0.105,
            Operator.RATE: 0.095,
            Operator.SORT: 0.13,
            Operator.COUNT: 0.11,
            Operator.TAG: 0.13,
            Operator.GATHER: 0.21,
            Operator.EXTRACT: 0.14,
            Operator.GENERATE: 0.19,
            Operator.LOCALIZE: 0.15,
            Operator.EXTERNAL: 0.12,
        }
    )
    disagreement_text_box_penalty: float = 0.055
    disagreement_words_slope: float = 0.024  # per log2(#words / 466)
    disagreement_words_pivot: float = 466.0
    disagreement_items_slope: float = 0.075  # per log10(#items / 56)
    disagreement_items_pivot: float = 56.0
    disagreement_example_bonus: float = 0.028
    disagreement_noise_sd: float = 0.025
    #: Fraction of distinct tasks that display prominent examples (the paper:
    #: ~200 of ~3,700 clusters, i.e. ~5%).
    example_prevalence: float = 0.05
    #: Fraction of text-box tasks that are *subjective* (free-form answers
    #: with essentially no agreement); the paper prunes these at 0.5.
    subjective_text_fraction: float = 0.25
    subjective_disagreement_range: tuple[float, float] = (0.55, 0.98)

    # --- §4.4–4.5, 4.7: task time ------------------------------------ #
    base_task_time_by_operator: dict[Operator, float] = field(
        default_factory=lambda: {
            Operator.FILTER: 75.0,
            Operator.RATE: 85.0,
            Operator.SORT: 140.0,
            Operator.COUNT: 95.0,
            Operator.TAG: 110.0,
            Operator.GATHER: 290.0,
            Operator.EXTRACT: 230.0,
            Operator.GENERATE: 300.0,
            Operator.LOCALIZE: 190.0,
            Operator.EXTERNAL: 900.0,
        }
    )
    task_time_text_box_factor: float = 2.4
    task_time_image_factor: float = 0.70
    task_time_items_exponent: float = -0.22  # (items / 30) ** exponent
    task_time_items_pivot: float = 30.0
    task_time_batch_noise_sd: float = 0.50  # lognormal sigma across batches
    task_time_instance_noise_sd: float = 0.45  # lognormal sigma across instances
    #: Within-batch learning: a worker's k-th instance of the same batch
    #: takes ``(k + 1) ** -exponent`` of the base time.  This is the §4.5
    #: "workers get better with experience" mechanism, and the §7
    #: future-work "worker learning" phenomenon the analysis layer recovers
    #: (see repro.analysis.learning).
    within_batch_learning_exponent: float = 0.08

    # --- §3.2, §4.5–4.7: pickup time ---------------------------------- #
    pickup_base_seconds: float = 4200.0
    pickup_example_factor: float = 0.21
    pickup_image_factor: float = 0.33
    pickup_items_exponent: float = 0.40  # (items / 31) ** exponent
    pickup_items_pivot: float = 31.0
    pickup_load_exponent: float = -0.45  # (weekly load / median) ** exponent
    pickup_batch_noise_sd: float = 0.90
    pickup_instance_noise_sd: float = 0.80
    #: Effective worker parallelism per batch: later instances wait longer.
    pickup_parallelism: float = 150.0
    pickup_sequence_exponent: float = 0.85

    # --- answers ------------------------------------------------------ #
    #: Weight of a worker's accuracy deviation on their per-question
    #: probability of giving the modal answer.
    worker_accuracy_coupling: float = 0.35
    trust_noise_sd: float = 0.03

    # --- §5: workers and sources -------------------------------------- #
    #: Engagement class mix (fractions of the generated worker population):
    #: one-day 53%, short-lived, regular, power (the top tier).
    engagement_mix: tuple[float, float, float, float] = (0.46, 0.40, 0.09, 0.05)
    #: Relative per-day allocation weight of each engagement class (only the
    #: POWER entry matters for flux absorption; casual classes use bundles).
    engagement_weights: tuple[float, float, float, float] = (1.0, 3.0, 6.0, 25.0)
    #: Pareto tail exponent for within-class weight dispersion of power workers.
    power_weight_pareto_alpha: float = 1.8
    #: Mean extra tasks (beyond the first) in a casual worker's daily bundle,
    #: per class (one-day, short, regular).  One-day sessions are large: the
    #: paper's one-day workers average ≈17 tasks (2.4% of work by 52.7% of
    #: workers).
    casual_bundle_lambdas: tuple[float, float, float] = (13.0, 8.0, 7.0)
    #: Target fraction of a day's volume served by casual labor when volume
    #: allows; bundles scale up toward this on busy days (Figure 5b's
    #: bottom-90% also rises with load).
    casual_share_target: float = 0.22
    #: Hard cap on the casual fraction of a day's volume.
    casual_volume_cap: float = 0.60
    #: Maximum factor by which a busy day may inflate casual bundles.
    casual_max_scale: float = 6.0
    mean_worker_accuracy: float = 0.91
    worker_accuracy_concentration: float = 40.0  # Beta concentration

    def __post_init__(self) -> None:
        if abs(sum(self.engagement_mix) - 1.0) > 1e-9:
            raise ValueError(f"engagement_mix must sum to 1, got {self.engagement_mix}")
        lo, hi = self.subjective_disagreement_range
        if not 0.5 <= lo < hi <= 1.0:
            raise ValueError(
                f"subjective range must lie in [0.5, 1]: {self.subjective_disagreement_range}"
            )


#: Scale presets: (distinct tasks, workers, median instances per batch).
#: ``large`` is ~3x medium by instance volume — big enough that the
#: monolithic in-memory pipeline becomes uncomfortable and the sharded
#: executor (:mod:`repro.shard`) pays off.  ``xlarge`` is paper scale:
#: ~27M released instances (the dataset's §2.2 headline), sized for the
#: sharded executor only — a monolithic build at this scale needs tens of
#: GB of RAM.
_PRESETS = {
    "tiny": dict(num_distinct_tasks=70, num_workers=700, instance_scale=0.15),
    "small": dict(num_distinct_tasks=300, num_workers=2800, instance_scale=0.40),
    "medium": dict(num_distinct_tasks=1100, num_workers=11000, instance_scale=0.80),
    "large": dict(num_distinct_tasks=2200, num_workers=22000, instance_scale=1.20),
    "xlarge": dict(num_distinct_tasks=4400, num_workers=44000, instance_scale=2.20),
}


def preset_names() -> list[str]:
    """The valid ``scale`` arguments of :meth:`SimulationConfig.preset`."""
    return sorted(_PRESETS)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that determines a simulated marketplace.

    Use :meth:`preset` for the standard scales; construct directly for
    custom experiments.
    """

    seed: int = 7
    num_distinct_tasks: int = 300
    num_workers: int = 2800
    #: Multiplies batch instance counts; 1.0 ≈ a few hundred thousand
    #: instances ("medium").
    instance_scale: float = 0.55
    num_weeks: int = NUM_WEEKS
    regime_switch_week: int = REGIME_SWITCH_WEEK
    #: Per-batch probability of inclusion in the released sample.  The paper
    #: received 12k of 58k batches, covering 76% of distinct tasks (§2.2); at
    #: our smaller cluster sizes a probability of 0.62 lands task coverage in
    #: the same region.
    batch_sample_prob: float = 0.62
    calibration: Calibration = field(default_factory=Calibration)

    def __post_init__(self) -> None:
        if self.num_distinct_tasks < 1:
            raise ValueError("num_distinct_tasks must be positive")
        if self.num_workers < 10:
            raise ValueError("num_workers must be at least 10")
        if not 0 < self.batch_sample_prob <= 1:
            raise ValueError("batch_sample_prob must be in (0, 1]")
        if not 10 <= self.num_weeks <= NUM_WEEKS:
            raise ValueError(f"num_weeks must be in [10, {NUM_WEEKS}]")
        if not 0 < self.regime_switch_week < self.num_weeks:
            raise ValueError("regime_switch_week must fall inside the calendar")

    @classmethod
    def preset(cls, scale: str, *, seed: int = 7) -> "SimulationConfig":
        """A named scale preset (one of :func:`preset_names`)."""
        if scale not in _PRESETS:
            raise ValueError(
                f"unknown scale {scale!r}; choose from {preset_names()}"
            )
        return cls(seed=seed, **_PRESETS[scale])

    def with_seed(self, seed: int) -> "SimulationConfig":
        return replace(self, seed=seed)
