"""Derive a crowdsourcing benchmark workload from the marketplace analysis.

§3.4 motivates the label landscape as raw material "to develop a workload
of crowdsourcing, and to better understand the task types that are most
important for further research".  This module closes that loop: it distills
an enriched dataset into a :class:`WorkloadSpec` — a weighted mix of task
archetypes with realistic shape parameters — that crowd-powered systems
(CrowdDB/Deco/CDAS-style engines, §6's audience) can replay as a benchmark.

A spec is JSON-serializable and can be sampled into a concrete task list.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.enrichment.pipeline import EnrichedDataset


@dataclass(frozen=True)
class WorkloadEntry:
    """One task archetype in the workload mix."""

    goal: str
    operator: str
    data_type: str
    weight: float  # fraction of instances this archetype carries
    median_items_per_batch: float
    median_task_seconds: float
    median_disagreement: float  # NaN when unmeasurable
    uses_text_box: bool
    num_clusters: int  # support: distinct tasks behind the archetype


@dataclass(frozen=True)
class WorkloadSpec:
    """A weighted crowdsourcing workload."""

    entries: tuple[WorkloadEntry, ...] = field(default_factory=tuple)

    @property
    def num_archetypes(self) -> int:
        return len(self.entries)

    def total_weight(self) -> float:
        return float(sum(entry.weight for entry in self.entries))

    # -- persistence ---------------------------------------------------- #

    def to_json(self) -> str:
        def clean(entry: WorkloadEntry) -> dict:
            d = asdict(entry)
            if isinstance(d["median_disagreement"], float) and math.isnan(
                d["median_disagreement"]
            ):
                d["median_disagreement"] = None
            return d

        return json.dumps({"entries": [clean(e) for e in self.entries]}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        payload = json.loads(text)
        entries = []
        for raw in payload["entries"]:
            if raw.get("median_disagreement") is None:
                raw = {**raw, "median_disagreement": float("nan")}
            entries.append(WorkloadEntry(**raw))
        return cls(entries=tuple(entries))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadSpec":
        return cls.from_json(Path(path).read_text())

    # -- sampling --------------------------------------------------------- #

    def sample(self, n: int, *, rng: np.random.Generator | None = None) -> list[WorkloadEntry]:
        """Draw ``n`` task archetypes proportional to weight."""
        if not self.entries:
            raise ValueError("cannot sample from an empty workload")
        rng = rng or np.random.default_rng(0)
        weights = np.array([entry.weight for entry in self.entries])
        weights = weights / weights.sum()
        picks = rng.choice(len(self.entries), size=n, p=weights)
        return [self.entries[i] for i in picks]


def derive_workload(
    enriched: EnrichedDataset, *, min_support: int = 2, top: int | None = None
) -> WorkloadSpec:
    """Distill the enriched dataset into a workload spec.

    Archetypes are (primary goal, primary operator, primary data type)
    triples with at least ``min_support`` clusters; weights are instance
    shares; shape parameters are medians over the archetype's clusters.
    ``top`` optionally truncates to the heaviest archetypes (weights are
    then renormalized over the kept set).
    """
    ct = enriched.cluster_table
    groups: dict[tuple[str, str, str], list[int]] = {}
    for i in range(ct.num_rows):
        goal = ct["primary_goal"][i]
        operator = ct["primary_operator"][i]
        data_type = ct["primary_data_type"][i]
        if not goal or not operator or not data_type:
            continue
        groups.setdefault((goal, operator, data_type), []).append(i)

    total_instances = float(ct["num_instances"].sum())
    entries: list[WorkloadEntry] = []
    for (goal, operator, data_type), rows in groups.items():
        if len(rows) < min_support:
            continue
        idx = np.asarray(rows)
        instances = float(ct["num_instances"][idx].sum())
        disagreement = ct["disagreement"][idx]
        finite = disagreement[~np.isnan(disagreement)]
        entries.append(
            WorkloadEntry(
                goal=goal,
                operator=operator,
                data_type=data_type,
                weight=instances / total_instances,
                median_items_per_batch=float(np.median(ct["num_items"][idx])),
                median_task_seconds=float(np.median(ct["task_time"][idx])),
                median_disagreement=float(np.median(finite))
                if finite.size
                else float("nan"),
                uses_text_box=bool(np.median(ct["num_text_boxes"][idx]) > 0),
                num_clusters=len(rows),
            )
        )

    entries.sort(key=lambda e: e.weight, reverse=True)
    if top is not None:
        entries = entries[:top]
        total = sum(e.weight for e in entries) or 1.0
        entries = [
            WorkloadEntry(**{**asdict(e), "weight": e.weight / total})
            for e in entries
        ]
    return WorkloadSpec(entries=tuple(entries))
