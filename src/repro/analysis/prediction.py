"""The §4.9 predictive setting: bucket each metric, predict with a tree.

For each metric the paper uses a small feature set:

- disagreement: ``{#items, has-example, #words, #text-boxes}``
- task-time:    ``{#items, has-image, #text-boxes}``
- pickup-time:  ``{#items, has-example, has-image}``

and two bucketizations of the metric into 10 classes (by range and by
percentiles), evaluated with 5-fold cross-validation on exact-bucket and
within-one-bucket accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.taskdesign import analysis_clusters
from repro.enrichment.pipeline import EnrichedDataset
from repro.ml import (
    Bucketization,
    CrossValResult,
    DecisionTreeClassifier,
    bucketize_by_percentile,
    bucketize_by_range,
    cross_validate,
)

#: Feature sets per metric, straight from §4.9.
FEATURE_SETS: dict[str, tuple[str, ...]] = {
    "disagreement": ("num_items", "has_example", "num_words", "num_text_boxes"),
    "task_time": ("num_items", "has_image", "num_text_boxes"),
    "pickup_time": ("num_items", "has_example", "has_image"),
}

NUM_BUCKETS = 10
NUM_FOLDS = 5


@dataclass(frozen=True)
class PredictionOutcome:
    """One metric × bucketization result."""

    metric: str
    strategy: str  # "range" or "percentile"
    bucketization: Bucketization
    cross_val: CrossValResult

    @property
    def exact_accuracy(self) -> float:
        return self.cross_val.exact_accuracy

    @property
    def within_one_accuracy(self) -> float:
        return self.cross_val.within_one_accuracy


def _feature_matrix(clusters, names: tuple[str, ...]) -> np.ndarray:
    columns = []
    for name in names:
        if name == "has_example":
            columns.append((clusters["num_examples"] > 0).astype(np.float64))
        elif name == "has_image":
            columns.append((clusters["num_images"] > 0).astype(np.float64))
        else:
            columns.append(clusters[name].astype(np.float64))
    return np.column_stack(columns)


def run_prediction_study(
    enriched: EnrichedDataset,
    *,
    seed: int = 0,
    max_depth: int = 10,
    min_samples_split: int = 5,
) -> list[PredictionOutcome]:
    """All six §4.9 experiments (3 metrics × 2 bucketizations)."""
    outcomes = []
    rng = np.random.default_rng(seed)
    for metric, feature_names in FEATURE_SETS.items():
        clusters = analysis_clusters(enriched, metric=metric)
        if clusters.num_rows < NUM_FOLDS * 2:
            raise ValueError(
                f"too few clusters ({clusters.num_rows}) to cross-validate {metric}"
            )
        features = _feature_matrix(clusters, feature_names)
        values = clusters[metric].astype(np.float64)
        for strategy, bucketizer in (
            ("range", bucketize_by_range),
            ("percentile", bucketize_by_percentile),
        ):
            bucketization = bucketizer(values, num_buckets=NUM_BUCKETS)
            result = cross_validate(
                lambda: DecisionTreeClassifier(
                    max_depth=max_depth, min_samples_split=min_samples_split
                ),
                features,
                bucketization.labels,
                k=NUM_FOLDS,
                tolerance=1,
                rng=rng,
            )
            outcomes.append(
                PredictionOutcome(
                    metric=metric,
                    strategy=strategy,
                    bucketization=bucketization,
                    cross_val=result,
                )
            )
    return outcomes
