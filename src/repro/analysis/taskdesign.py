"""Task-design analyses: the §4.2 correlation methodology and its outputs.

The methodology, verbatim from the paper:

1. **Cluster** — operate on labeled clusters, taking the median of metric
   and feature values across each cluster's batches (done upstream in
   :mod:`repro.enrichment.pipeline`).
2. **Binning** — split clusters at the global median feature value into
   Bin-1 (low) and Bin-2 (high); features with a natural zero (examples,
   text boxes, images) split at =0 vs >0.
3. **Statistical significance** — Welch t-test between the bins' metric
   values, significant at p < 0.01.
4. **Visualization** — empirical CDFs of the metric per bin.

For disagreement analyses the paper prunes clusters with disagreement > 0.5
(subjective free-text tasks); :func:`analysis_clusters` applies the same
rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.enrichment.labels import split_labels
from repro.enrichment.pipeline import EnrichedDataset
from repro.stats.cdf import EmpiricalCDF
from repro.stats.ttest import TTestResult, welch_t_test
from repro.tables import Table, col

#: The paper's §4.1 prune threshold for subjective tasks.
DISAGREEMENT_PRUNE_THRESHOLD = 0.5

#: The three metrics and their table columns.
METRICS = ("disagreement", "task_time", "pickup_time")

#: The features §4.3–4.7 analyze, with their binning mode.
FEATURES = {
    "num_words": "median",
    "num_items": "median",
    "num_text_boxes": "zero",
    "num_examples": "zero",
    "num_images": "zero",
}


@dataclass(frozen=True)
class BinComparison:
    """One {feature, metric} correlation experiment (§4.2)."""

    feature: str
    metric: str
    split_description: str
    threshold: float
    count_low: int
    count_high: int
    median_low: float
    median_high: float
    t_test: TTestResult
    cdf_low: EmpiricalCDF
    cdf_high: EmpiricalCDF

    @property
    def significant(self) -> bool:
        return self.t_test.significant()

    @property
    def direction(self) -> str:
        """``"high_better"`` when the high-feature bin has the lower
        (better) median metric value, else ``"low_better"``."""
        return "high_better" if self.median_high < self.median_low else "low_better"


def analysis_clusters(enriched: EnrichedDataset, *, metric: str) -> Table:
    """The cluster set used for a given metric's correlation analyses.

    Keeps labeled clusters with a finite metric value; for disagreement,
    additionally prunes values above :data:`DISAGREEMENT_PRUNE_THRESHOLD`.
    """
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")
    frame = (
        enriched.cluster_table.lazy()
        .filter(col(metric).notnan())
        .filter(col("goals").notnull() & col("goals").ne(""))
    )
    if metric == "disagreement":
        frame = frame.filter(~(col(metric) > DISAGREEMENT_PRUNE_THRESHOLD))
    return frame.collect()


def bin_comparison(clusters: Table, feature: str, metric: str) -> BinComparison:
    """Run the §4.2 binning + t-test + CDF experiment for one pair."""
    if feature not in FEATURES:
        raise ValueError(f"unknown feature {feature!r}; expected one of {list(FEATURES)}")
    feature_values = clusters[feature].astype(np.float64)
    metric_values = clusters[metric].astype(np.float64)

    mode = FEATURES[feature]
    if mode == "zero":
        threshold = 0.0
        low_mask = feature_values == 0
        split_description = f"{feature} = 0 vs > 0"
    else:
        threshold = float(np.median(feature_values))
        low_mask = feature_values <= threshold
        # Keep bins as balanced as possible when many values tie the median.
        if low_mask.sum() > len(feature_values) - low_mask.sum():
            strictly_low = feature_values < threshold
            if strictly_low.sum() > 0 and abs(
                2 * strictly_low.sum() - len(feature_values)
            ) < abs(2 * low_mask.sum() - len(feature_values)):
                low_mask = strictly_low
        split_description = f"{feature} <= {threshold:g} vs > {threshold:g}"

    low = metric_values[low_mask]
    high = metric_values[~low_mask]
    if low.size < 2 or high.size < 2:
        raise ValueError(
            f"degenerate split for {feature}/{metric}: {low.size} vs {high.size}"
        )
    return BinComparison(
        feature=feature,
        metric=metric,
        split_description=split_description,
        threshold=threshold,
        count_low=int(low.size),
        count_high=int(high.size),
        median_low=float(np.median(low)),
        median_high=float(np.median(high)),
        t_test=welch_t_test(low, high),
        cdf_low=EmpiricalCDF.from_sample(low),
        cdf_high=EmpiricalCDF.from_sample(high),
    )


def run_all_experiments(enriched: EnrichedDataset) -> list[BinComparison]:
    """Every {feature, metric} experiment (up to 15 pairs), as §4.8 surveys.

    Pairs whose split degenerates (e.g. almost no cluster has examples in a
    small sample) are skipped.
    """
    out = []
    for metric in METRICS:
        clusters = analysis_clusters(enriched, metric=metric)
        for feature in FEATURES:
            try:
                out.append(bin_comparison(clusters, feature, metric))
            except ValueError:
                continue
    return out


def drilldown(
    enriched: EnrichedDataset,
    *,
    feature: str,
    metric: str,
    category: str,
    label: str,
) -> BinComparison:
    """A Figure-25-style experiment restricted to clusters with a label.

    ``category`` is ``goals``/``operators``/``data_types``; ``label`` the
    code (e.g. ``"Gat"`` for gather, ``"LU"``).
    """
    clusters = analysis_clusters(enriched, metric=metric)
    mask = np.array(
        [
            joined is not None and label in split_labels(joined)
            for joined in clusters[category]
        ]
    )
    subset = clusters.filter(mask)
    if subset.num_rows < 4:
        raise ValueError(
            f"too few clusters ({subset.num_rows}) labeled {label!r} for a drilldown"
        )
    return bin_comparison(subset, feature, metric)


@dataclass(frozen=True)
class LatencyDecomposition:
    """Figure 13: pickup-time dominates end-to-end turnaround."""

    end_to_end: np.ndarray
    pickup_time: np.ndarray
    task_time: np.ndarray
    median_pickup: float
    median_task_time: float
    pickup_dominance_ratio: float  # median pickup / median task time


def latency_decomposition(enriched: EnrichedDataset) -> LatencyDecomposition:
    """Batch-level latency decomposition (Figure 13a)."""
    bt = enriched.batch_table
    pickup = bt["pickup_time"].astype(np.float64)
    task_time = bt["task_time"].astype(np.float64)
    end_to_end = pickup + task_time
    median_pickup = float(np.median(pickup))
    median_task = float(np.median(task_time))
    return LatencyDecomposition(
        end_to_end=end_to_end,
        pickup_time=pickup,
        task_time=task_time,
        median_pickup=median_pickup,
        median_task_time=median_task,
        pickup_dominance_ratio=median_pickup / max(median_task, 1e-9),
    )


@dataclass(frozen=True)
class CompletionProfile:
    """Batch completion-time quantiles (requester-facing turnaround).

    ``time_to_half`` / ``time_to_90`` / ``time_to_full`` are, per batch, the
    seconds from batch creation until 50% / 90% / 100% of its instances have
    *completed* — the quantity a requester actually waits for.  The paper's
    §4.1 argues pickup dominates this; the profile quantifies it.
    """

    batch_id: np.ndarray
    time_to_half: np.ndarray
    time_to_90: np.ndarray
    time_to_full: np.ndarray

    def medians(self) -> dict[str, float]:
        return {
            "time_to_half": float(np.median(self.time_to_half)),
            "time_to_90": float(np.median(self.time_to_90)),
            "time_to_full": float(np.median(self.time_to_full)),
        }


def batch_completion_profile(released) -> CompletionProfile:
    """Compute per-batch completion quantiles from the released instances."""
    instances = released.instances
    batch = instances["batch_id"]
    end = instances["end_time"].astype(np.float64)

    catalog = released.batch_catalog
    created = np.zeros(int(catalog["batch_id"].max()) + 1)
    created[catalog["batch_id"]] = catalog["created_at"]

    order = np.argsort(batch, kind="stable")
    sorted_batch = batch[order]
    starts = np.flatnonzero(np.r_[True, sorted_batch[1:] != sorted_batch[:-1]])
    ends = np.r_[starts[1:], len(sorted_batch)]
    ids = sorted_batch[starts]
    half = np.empty(len(starts))
    p90 = np.empty(len(starts))
    full = np.empty(len(starts))
    ordered_end = end[order]
    for i, (s, e) in enumerate(zip(starts, ends)):
        segment = np.sort(ordered_end[s:e]) - created[ids[i]]
        half[i] = segment[int(0.5 * (len(segment) - 1))]
        p90[i] = segment[int(0.9 * (len(segment) - 1))]
        full[i] = segment[-1]
    return CompletionProfile(
        batch_id=ids.astype(np.int64),
        time_to_half=half,
        time_to_90=p90,
        time_to_full=full,
    )


def summary_table(enriched: EnrichedDataset, metric: str) -> list[BinComparison]:
    """The rows of paper Table 1/2/3: significant features for ``metric``.

    Degenerate splits are skipped (they cannot be significant).
    """
    clusters = analysis_clusters(enriched, metric=metric)
    rows = []
    for feature in FEATURES:
        try:
            comparison = bin_comparison(clusters, feature, metric)
        except ValueError:
            continue
        if comparison.significant:
            rows.append(comparison)
    return rows
