"""Marketplace-dynamics analyses (paper §3).

All functions consume the released/enriched data only.  "Task instances
arriving" follow the batch creation time (work becomes available when its
batch is posted); completions follow instance end times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.release import ReleasedDataset
from repro.enrichment.labels import split_labels
from repro.enrichment.pipeline import EnrichedDataset
from repro.stats.timeseries import (
    bucket_by_day,
    bucket_by_week,
    week_index,
)
from repro.tables import Table, col
from repro.taxonomy.labels import (
    is_complex_data,
    is_complex_goal,
    is_complex_operator,
)


# --------------------------------------------------------------------- #
# §3.1 Task arrivals
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ArrivalSeries:
    """Weekly marketplace-load series (Figures 1, 2)."""

    instances_issued: np.ndarray  # per week, by batch creation
    instances_completed: np.ndarray  # per week, by instance end time
    batches_issued: np.ndarray
    distinct_tasks_issued: np.ndarray  # clusters with >= 1 batch that week
    median_pickup_time: np.ndarray  # per week, NaN when no batch


def _catalog_sampled(released: ReleasedDataset) -> Table:
    return released.batch_catalog.lazy().filter(col("sampled")).collect()


def weekly_arrivals(
    released: ReleasedDataset, enriched: EnrichedDataset, *, num_weeks: int
) -> ArrivalSeries:
    """All weekly §3.1 series in one pass."""
    batch_table = enriched.batch_table
    created = batch_table["created_at"]
    instances_per_batch = batch_table["num_instances"].astype(np.float64)

    issued = bucket_by_week(created, num_weeks=num_weeks, weights=instances_per_batch)
    batches = bucket_by_week(created, num_weeks=num_weeks)

    completed = bucket_by_week(
        np.minimum(released.instances["end_time"], num_weeks * 7 * 86400 - 1),
        num_weeks=num_weeks,
    )

    # Distinct tasks (clusters) per week.
    weeks = week_index(created)
    clusters = batch_table["cluster_id"]
    distinct = np.zeros(num_weeks)
    for w in range(num_weeks):
        mask = weeks == w
        if mask.any():
            distinct[w] = len(np.unique(clusters[mask]))

    # Median pickup time per week (across batches created that week).
    pickup = batch_table["pickup_time"]
    median_pickup = np.full(num_weeks, np.nan)
    order = np.argsort(weeks, kind="stable")
    sorted_weeks = weeks[order]
    starts = np.flatnonzero(np.r_[True, sorted_weeks[1:] != sorted_weeks[:-1]])
    ends = np.r_[starts[1:], len(sorted_weeks)]
    for s, e in zip(starts, ends):
        median_pickup[sorted_weeks[s]] = float(np.median(pickup[order[s:e]]))

    return ArrivalSeries(
        instances_issued=issued,
        instances_completed=completed,
        batches_issued=batches,
        distinct_tasks_issued=distinct,
        median_pickup_time=median_pickup,
    )


@dataclass(frozen=True)
class LoadVariation:
    """§3.1's headline load-variation statistics (daily granularity)."""

    median_daily_instances: float
    busiest_day_instances: float
    lightest_day_instances: float
    busiest_over_median: float
    lightest_over_median: float


def load_variation(
    enriched: EnrichedDataset, *, start_week: int, num_weeks: int
) -> LoadVariation:
    """Daily instance-arrival variation within the active regime."""
    batch_table = enriched.batch_table
    created = batch_table["created_at"]
    weights = batch_table["num_instances"].astype(np.float64)
    daily = bucket_by_day(created, num_days=num_weeks * 7, weights=weights)
    regime = daily[start_week * 7:]
    active = regime[regime > 0]
    if active.size == 0:
        raise ValueError("no activity in the requested regime window")
    med = float(np.median(active))
    busiest = float(active.max())
    lightest = float(active.min())
    return LoadVariation(
        median_daily_instances=med,
        busiest_day_instances=busiest,
        lightest_day_instances=lightest,
        busiest_over_median=busiest / med,
        lightest_over_median=lightest / med,
    )


def weekday_totals(enriched: EnrichedDataset) -> np.ndarray:
    """Instances issued per day-of-week, Mon..Sun (Figure 3)."""
    batch_table = enriched.batch_table
    weights = batch_table["num_instances"].astype(np.float64)
    days = (batch_table["created_at"] // 86400) % 7
    return np.bincount(days.astype(np.int64), weights=weights, minlength=7)


# --------------------------------------------------------------------- #
# §3.2 Worker availability & engagement
# --------------------------------------------------------------------- #

def weekly_active_workers(released: ReleasedDataset, *, num_weeks: int) -> np.ndarray:
    """Distinct workers performing work each week (Figure 4)."""
    weeks = week_index(released.instances["start_time"])
    workers = released.instances["worker_id"]
    out = np.zeros(num_weeks)
    order = np.argsort(weeks, kind="stable")
    sorted_weeks = weeks[order]
    starts = np.flatnonzero(np.r_[True, sorted_weeks[1:] != sorted_weeks[:-1]])
    ends = np.r_[starts[1:], len(sorted_weeks)]
    for s, e in zip(starts, ends):
        w = int(sorted_weeks[s])
        if w < num_weeks:
            out[w] = len(np.unique(workers[order[s:e]]))
    return out


@dataclass(frozen=True)
class EngagementSplit:
    """Weekly top-10% vs bottom-90% worker series (Figure 5b)."""

    tasks_top10: np.ndarray
    tasks_bottom90: np.ndarray
    active_time_top10: np.ndarray  # mean active seconds per top-10% worker
    active_time_bottom90: np.ndarray


def engagement_split(released: ReleasedDataset, *, num_weeks: int) -> EngagementSplit:
    """Split weekly completions by overall worker rank (top 10% by tasks)."""
    instances = released.instances
    workers = instances["worker_id"]
    counts_per_worker = np.bincount(workers)
    ranked = np.argsort(counts_per_worker)[::-1]
    active_ids = ranked[counts_per_worker[ranked] > 0]
    cut = max(1, int(round(0.10 * len(active_ids))))
    top_set = np.zeros(counts_per_worker.size, dtype=bool)
    top_set[active_ids[:cut]] = True

    weeks = week_index(instances["start_time"])
    in_range = weeks < num_weeks
    weeks = weeks[in_range]
    is_top = top_set[workers[in_range]]
    durations = (
        instances["end_time"][in_range] - instances["start_time"][in_range]
    ).astype(np.float64)

    tasks_top = np.bincount(weeks[is_top], minlength=num_weeks).astype(np.float64)
    tasks_bot = np.bincount(weeks[~is_top], minlength=num_weeks).astype(np.float64)

    def mean_active_time(mask: np.ndarray) -> np.ndarray:
        time_total = np.bincount(
            weeks[mask], weights=durations[mask], minlength=num_weeks
        )
        # Distinct workers of that class active per week.
        distinct = np.zeros(num_weeks)
        wk = weeks[mask]
        ids = workers[in_range][mask]
        order = np.argsort(wk, kind="stable")
        sw = wk[order]
        starts = np.flatnonzero(np.r_[True, sw[1:] != sw[:-1]])
        ends = np.r_[starts[1:], len(sw)]
        for s, e in zip(starts, ends):
            distinct[sw[s]] = len(np.unique(ids[order[s:e]]))
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(distinct > 0, time_total / distinct, 0.0)

    return EngagementSplit(
        tasks_top10=tasks_top,
        tasks_bottom90=tasks_bot,
        active_time_top10=mean_active_time(is_top),
        active_time_bottom90=mean_active_time(~is_top),
    )


def weekly_backlog(
    released: ReleasedDataset, enriched: EnrichedDataset, *, num_weeks: int
) -> np.ndarray:
    """Open-work backlog at each week's end: instances posted but not yet
    completed.

    §3.1 frames the push mechanism as a way to "clear backlogged tasks";
    this series makes the backlog visible.  Posting time is the batch
    creation time; completion is the instance end time (clamped into the
    calendar, so the series ends at zero for fully-drained marketplaces).
    """
    issued = bucket_by_week(
        enriched.batch_table["created_at"],
        num_weeks=num_weeks,
        weights=enriched.batch_table["num_instances"].astype(np.float64),
    )
    horizon = num_weeks * 7 * 86400 - 1
    completed = bucket_by_week(
        np.minimum(released.instances["end_time"], horizon),
        num_weeks=num_weeks,
    )
    return np.cumsum(issued) - np.cumsum(completed)


def internal_external_split(
    released: ReleasedDataset, *, num_weeks: int
) -> tuple[np.ndarray, np.ndarray]:
    """Weekly completions split by the marketplace's own pool vs external
    sources (§3.2's observation that "internal workers account for a very
    small fraction of tasks").

    Returns ``(internal_weekly, external_weekly)``.
    """
    instances = released.instances
    weeks = week_index(instances["start_time"])
    is_internal = np.array([s == "internal" for s in instances["source"]])
    in_range = weeks < num_weeks
    internal = np.bincount(
        weeks[in_range & is_internal], minlength=num_weeks
    ).astype(np.float64)
    external = np.bincount(
        weeks[in_range & ~is_internal], minlength=num_weeks
    ).astype(np.float64)
    return internal, external


# --------------------------------------------------------------------- #
# §3.3 Cluster / heavy-hitter structure
# --------------------------------------------------------------------- #

def cluster_size_distribution(enriched: EnrichedDataset) -> np.ndarray:
    """Batches per cluster, one entry per cluster (Figure 6's sample)."""
    return enriched.cluster_table["num_batches"].astype(np.float64)


def tasks_per_cluster_distribution(enriched: EnrichedDataset) -> np.ndarray:
    """Instances per cluster, one entry per cluster (Figure 7's sample)."""
    return enriched.cluster_table["num_instances"].astype(np.float64)


def heavy_hitter_curves(
    enriched: EnrichedDataset, *, num_weeks: int, top: int = 10
) -> dict[int, np.ndarray]:
    """Cumulative instances issued per week for the top clusters (Figure 8).

    Clusters ranked by number of batches; returns ``cluster_id ->
    cumulative weekly instance counts``.
    """
    ct = enriched.cluster_table
    order = np.argsort(ct["num_batches"])[::-1][:top]
    chosen = set(int(c) for c in ct["cluster_id"][order])

    bt = enriched.batch_table
    weeks = week_index(bt["created_at"])
    out: dict[int, np.ndarray] = {}
    for cluster in chosen:
        mask = bt["cluster_id"] == cluster
        weekly = np.bincount(
            weeks[mask],
            weights=bt["num_instances"][mask].astype(np.float64),
            minlength=num_weeks,
        )
        out[cluster] = np.cumsum(weekly)
    return out


# --------------------------------------------------------------------- #
# §3.4 Label landscape
# --------------------------------------------------------------------- #

def label_distribution(enriched: EnrichedDataset, category: str) -> dict[str, float]:
    """Instance-weighted label counts (Figures 9a–9c).

    ``category`` is ``goals``, ``operators``, or ``data_types``.  A
    multi-labeled cluster contributes its full instance count to each of its
    labels, as in the paper ("tasks have one or more label under each
    category").
    """
    if category not in ("goals", "operators", "data_types"):
        raise ValueError(f"unknown label category {category!r}")
    ct = enriched.cluster_table
    totals: dict[str, float] = {}
    for joined, weight in zip(ct[category], ct["num_instances"]):
        if joined is None:
            continue
        for label in split_labels(joined):
            totals[label] = totals.get(label, 0.0) + float(weight)
    return totals


def label_correlation(
    enriched: EnrichedDataset, *, rows: str, columns: str
) -> dict[str, dict[str, float]]:
    """Percentage breakdown of ``columns`` labels within each ``rows`` label.

    ``label_correlation(e, rows="goals", columns="operators")`` reproduces
    Figure 10b: for each goal, which operators serve it (percentages summing
    to 100 per goal).
    """
    ct = enriched.cluster_table
    joint: dict[str, dict[str, float]] = {}
    for row_joined, col_joined, weight in zip(ct[rows], ct[columns], ct["num_instances"]):
        if row_joined is None or col_joined is None:
            continue
        for row_label in split_labels(row_joined):
            bucket = joint.setdefault(row_label, {})
            for col_label in split_labels(col_joined):
                bucket[col_label] = bucket.get(col_label, 0.0) + float(weight)
    out: dict[str, dict[str, float]] = {}
    for row_label, bucket in joint.items():
        total = sum(bucket.values())
        out[row_label] = {
            k: (100.0 * v / total if total else 0.0) for k, v in bucket.items()
        }
    return out


# --------------------------------------------------------------------- #
# §3.5 Simple vs complex trends
# --------------------------------------------------------------------- #

_COMPLEXITY_PREDICATE = {
    "goals": is_complex_goal,
    "operators": is_complex_operator,
    "data_types": is_complex_data,
}


def simple_complex_trend(
    enriched: EnrichedDataset, category: str, *, num_weeks: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative (simple, complex) distinct-cluster counts per week (Fig 12).

    A cluster counts as complex if *any* of its labels in the category is
    complex; it is counted once, in the week of its first batch.
    """
    predicate = _COMPLEXITY_PREDICATE.get(category)
    if predicate is None:
        raise ValueError(f"unknown label category {category!r}")
    ct = enriched.cluster_table
    weeks = week_index(ct["first_time"])
    simple_weekly = np.zeros(num_weeks)
    complex_weekly = np.zeros(num_weeks)
    for joined, week in zip(ct[category], weeks):
        if joined is None or week >= num_weeks:
            continue
        labels = split_labels(joined)
        if not labels:
            continue
        if any(predicate(label) for label in labels):
            complex_weekly[week] += 1
        else:
            simple_weekly[week] += 1
    return np.cumsum(simple_weekly), np.cumsum(complex_weekly)
