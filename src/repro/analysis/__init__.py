"""Analyses reproducing the paper's Sections 3 (marketplace), 4 (task
design), 4.9 (prediction), and 5 (workers).

Each module exposes plain functions from released/enriched data to
structured results; :mod:`repro.figures` maps them onto the paper's figure
and table numbering.
"""

from repro.analysis import learning, marketplace, prediction, taskdesign, workers

__all__ = ["learning", "marketplace", "prediction", "taskdesign", "workers"]
