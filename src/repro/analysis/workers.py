"""Worker-centric analyses (paper §5).

Everything derives from the released instance log: a worker's source,
country, per-instance times and trust scores.  Per-worker aggregates are
computed once by :func:`worker_profiles` and reused by the §5.2/§5.3
functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.release import ReleasedDataset
from repro.stats.descriptive import top_share
from repro.stats.timeseries import DAY_SECONDS, week_index
from repro.tables import Table, group_by

SECONDS_PER_HOUR = 3600.0


# --------------------------------------------------------------------- #
# §5.1 Sources
# --------------------------------------------------------------------- #

def source_statistics(released: ReleasedDataset) -> Table:
    """Per-source statistics (Figures 26a, 27).

    Columns: ``source``, ``num_workers``, ``num_tasks``,
    ``tasks_per_worker``, ``mean_trust``, ``mean_relative_task_time``.

    Relative task time normalizes each instance's duration by the median
    duration of its batch, so slow sources stand out regardless of task mix.
    """
    instances = released.instances
    duration = (instances["end_time"] - instances["start_time"]).astype(np.float64)

    # Median duration per batch, mapped back onto instances.
    batch = instances["batch_id"]
    order = np.argsort(batch, kind="stable")
    sorted_batches = batch[order]
    starts = np.flatnonzero(np.r_[True, sorted_batches[1:] != sorted_batches[:-1]])
    ends = np.r_[starts[1:], len(sorted_batches)]
    batch_median = np.empty(len(starts))
    for i, (s, e) in enumerate(zip(starts, ends)):
        batch_median[i] = np.median(duration[order[s:e]])
    median_of_instance = np.empty(len(duration))
    for i, (s, e) in enumerate(zip(starts, ends)):
        median_of_instance[order[s:e]] = batch_median[i]
    relative = duration / np.maximum(median_of_instance, 1e-9)

    table = Table(
        {
            "source": instances["source"],
            "worker_id": instances["worker_id"],
            "trust": instances["trust"],
            "relative_time": relative,
        },
        copy=False,
    )
    stats = group_by(table, "source").agg(
        {
            "num_workers": ("worker_id", "nunique"),
            "num_tasks": ("worker_id", "count"),
            "mean_trust": ("trust", "mean"),
            "mean_relative_task_time": ("relative_time", "mean"),
        }
    )
    return stats.with_column(
        "tasks_per_worker",
        stats["num_tasks"] / np.maximum(stats["num_workers"], 1),
    )


def active_sources_per_week(released: ReleasedDataset, *, num_weeks: int) -> np.ndarray:
    """Distinct sources with any activity each week (Figure 26b)."""
    instances = released.instances
    weeks = week_index(instances["start_time"])
    sources = instances["source"]
    out = np.zeros(num_weeks)
    order = np.argsort(weeks, kind="stable")
    sw = weeks[order]
    starts = np.flatnonzero(np.r_[True, sw[1:] != sw[:-1]])
    ends = np.r_[starts[1:], len(sw)]
    for s, e in zip(starts, ends):
        w = int(sw[s])
        if w < num_weeks:
            out[w] = len(set(sources[order[s:e]]))
    return out


def top_sources(
    stats: Table, *, by: str, top: int = 10
) -> Table:
    """The top sources by a statistic column (e.g. ``num_workers``)."""
    return stats.sort_by(by, descending=True).head(top)


def source_share(stats: Table, names: list[str], *, of: str) -> float:
    """Fraction of column ``of``'s total held by the named sources."""
    total = float(stats[of].sum())
    mask = np.array([s in set(names) for s in stats["source"]])
    return float(stats[of][mask].sum()) / total if total else float("nan")


# --------------------------------------------------------------------- #
# §5.1 Geography
# --------------------------------------------------------------------- #

def country_distribution(released: ReleasedDataset) -> Table:
    """Workers per country, descending (Figure 28)."""
    instances = released.instances
    table = Table(
        {"country": instances["country"], "worker_id": instances["worker_id"]},
        copy=False,
    )
    counts = group_by(table, "country").agg(
        {"num_workers": ("worker_id", "nunique")}
    )
    return counts.sort_by("num_workers", descending=True)


# --------------------------------------------------------------------- #
# §5.2–5.4 Worker profiles
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class WorkerProfiles:
    """Per-worker aggregates over the full evaluation period."""

    worker_id: np.ndarray
    num_tasks: np.ndarray
    lifetime_days: np.ndarray  # last active day - first active day + 1
    working_days: np.ndarray  # distinct days with >= 1 instance
    total_hours: np.ndarray  # sum of task durations, in hours
    mean_trust: np.ndarray

    @property
    def num_workers(self) -> int:
        return len(self.worker_id)

    def hours_per_working_day(self) -> np.ndarray:
        return self.total_hours / np.maximum(self.working_days, 1)

    def fraction_of_lifetime_active(self) -> np.ndarray:
        return self.working_days / np.maximum(self.lifetime_days, 1)


def worker_profiles(released: ReleasedDataset) -> WorkerProfiles:
    """Compute per-worker aggregates from the instance log."""
    instances = released.instances
    workers = instances["worker_id"]
    start = instances["start_time"]
    duration = (instances["end_time"] - start).astype(np.float64)
    days = start // DAY_SECONDS
    trust = instances["trust"]

    order = np.argsort(workers, kind="stable")
    sw = workers[order]
    starts = np.flatnonzero(np.r_[True, sw[1:] != sw[:-1]])
    ends = np.r_[starts[1:], len(sw)]

    n = len(starts)
    out_ids = sw[starts]
    num_tasks = (ends - starts).astype(np.int64)
    lifetime = np.empty(n, dtype=np.int64)
    working = np.empty(n, dtype=np.int64)
    hours = np.empty(n)
    mean_trust = np.empty(n)
    days_ordered = days[order]
    duration_ordered = duration[order]
    trust_ordered = trust[order]
    for i, (s, e) in enumerate(zip(starts, ends)):
        d = days_ordered[s:e]
        lifetime[i] = int(d.max() - d.min()) + 1
        working[i] = len(np.unique(d))
        hours[i] = duration_ordered[s:e].sum() / SECONDS_PER_HOUR
        mean_trust[i] = trust_ordered[s:e].mean()

    return WorkerProfiles(
        worker_id=out_ids.astype(np.int64),
        num_tasks=num_tasks,
        lifetime_days=lifetime,
        working_days=working,
        total_hours=hours,
        mean_trust=mean_trust,
    )


@dataclass(frozen=True)
class WorkloadConcentration:
    """§5.2's headline numbers."""

    top10_task_share: float  # fraction of tasks by the top-10% of workers
    one_day_worker_fraction: float  # workers with lifetime == 1 day
    one_day_task_share: float  # fraction of tasks they performed
    active_worker_fraction: float  # workers with > 10 working days
    active_task_share: float


def workload_concentration(profiles: WorkerProfiles) -> WorkloadConcentration:
    total_tasks = float(profiles.num_tasks.sum())
    one_day = profiles.lifetime_days == 1
    active = profiles.working_days > 10
    return WorkloadConcentration(
        top10_task_share=top_share(profiles.num_tasks, 0.10),
        one_day_worker_fraction=float(one_day.mean()),
        one_day_task_share=float(profiles.num_tasks[one_day].sum()) / total_tasks,
        active_worker_fraction=float(active.mean()),
        active_task_share=float(profiles.num_tasks[active].sum()) / total_tasks,
    )


def workload_rank_curve(profiles: WorkerProfiles) -> np.ndarray:
    """Tasks per worker, sorted descending (Figure 29a)."""
    return np.sort(profiles.num_tasks)[::-1].astype(np.float64)


# --------------------------------------------------------------------- #
# Attention spans (the §1/§2.5 goal, operationalized as work sessions)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SessionStatistics:
    """Work-session structure of the marketplace.

    A *session* is a maximal run of one worker's instances in which each
    instance starts within ``gap`` seconds of the previous instance's end —
    the natural operationalization of the paper's "worker attention spans"
    (§1, §2.5).
    """

    num_sessions: int
    session_lengths_seconds: np.ndarray  # duration per session
    tasks_per_session: np.ndarray
    sessions_per_worker: np.ndarray  # aligned with distinct workers

    def median_session_minutes(self) -> float:
        return float(np.median(self.session_lengths_seconds)) / 60.0

    def median_tasks_per_session(self) -> float:
        return float(np.median(self.tasks_per_session))


def session_statistics(
    released: ReleasedDataset, *, gap_seconds: int = 1800
) -> SessionStatistics:
    """Segment every worker's instance stream into attention-span sessions."""
    instances = released.instances
    worker = instances["worker_id"]
    start = instances["start_time"]
    end = instances["end_time"]

    order = np.lexsort((start, worker))
    w = worker[order]
    s = start[order].astype(np.int64)
    e = end[order].astype(np.int64)

    new_worker = np.r_[True, w[1:] != w[:-1]]
    # A new session starts on a worker switch or a gap larger than allowed.
    gap_break = np.r_[True, (s[1:] - e[:-1]) > gap_seconds]
    new_session = new_worker | gap_break
    session_id = np.cumsum(new_session) - 1
    num_sessions = int(session_id[-1]) + 1 if len(session_id) else 0

    session_start = np.full(num_sessions, np.iinfo(np.int64).max, dtype=np.int64)
    session_end = np.zeros(num_sessions, dtype=np.int64)
    np.minimum.at(session_start, session_id, s)
    # Sessions are chronologically ordered within a worker, so the max end
    # works via maximum.at (ends need not be monotone across overlaps).
    np.maximum.at(session_end, session_id, e)
    lengths = (session_end - session_start).astype(np.float64)
    tasks = np.bincount(session_id, minlength=num_sessions).astype(np.float64)

    # Sessions per worker.
    first_of_session = np.flatnonzero(new_session)
    session_worker = w[first_of_session]
    _, sessions_per_worker = np.unique(session_worker, return_counts=True)

    return SessionStatistics(
        num_sessions=num_sessions,
        session_lengths_seconds=lengths,
        tasks_per_session=tasks,
        sessions_per_worker=sessions_per_worker.astype(np.float64),
    )
