"""Worker-learning analysis (the paper's §7 future-work direction).

§4.5 hypothesizes that "workers get better with experience (both faster and
more accurate)" to explain the #items effect.  This module measures the
*within-batch learning curve* directly from the released instance log: for
each (batch, worker) pair, instances are ranked by start time, each
duration is normalized by its batch's median duration, and the normalized
durations are averaged per rank.

If workers speed up with practice, the curve decays; a log-log least-squares
fit of the curve estimates the learning exponent (the generative ground
truth is ``Calibration.within_batch_learning_exponent``, which the tests
verify this analysis recovers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.release import ReleasedDataset


@dataclass(frozen=True)
class LearningCurve:
    """Duration relative to the worker's own first instance, per rank."""

    ranks: np.ndarray  # experience ranks (>= 1) with enough support
    mean_relative_duration: np.ndarray  # geometric mean of dur_k / dur_0
    counts: np.ndarray  # observations per rank
    learning_exponent: float  # fitted: duration ~ (1 + rank) ** -exponent

    @property
    def speedup_at(self) -> dict[int, float]:
        """Relative duration at a few reference ranks (read-friendly)."""
        out = {}
        for rank in (1, 4, 9, 19):
            idx = np.flatnonzero(self.ranks == rank)
            if idx.size:
                out[rank] = float(self.mean_relative_duration[idx[0]])
        return out


def learning_curve(
    released: ReleasedDataset,
    *,
    max_rank: int = 30,
    min_observations: int = 30,
) -> LearningCurve:
    """Estimate the within-batch learning curve from raw instances."""
    instances = released.instances
    batch = instances["batch_id"]
    worker = instances["worker_id"]
    start = instances["start_time"]
    duration = (instances["end_time"] - start).astype(np.float64)

    # Experience rank within (batch, worker), by start time.
    order = np.lexsort((start, worker, batch))
    sb, sw = batch[order], worker[order]
    new_run = np.r_[True, (sb[1:] != sb[:-1]) | (sw[1:] != sw[:-1])]
    run_id = np.cumsum(new_run) - 1
    position = np.arange(len(order))
    run_starts = position[new_run]
    rank = position - run_starts[run_id]

    # Within-run differencing: compare each duration to the SAME worker's
    # first duration in the SAME batch.  This cancels worker speed, task
    # difficulty, and pool-composition effects (naive per-rank averages are
    # badly biased: high ranks only contain high-volume workers).
    log_duration = np.log(np.maximum(duration[order], 1e-9))
    base = log_duration[run_starts][run_id]
    log_ratio = log_duration - base

    keep = (rank >= 1) & (rank <= max_rank)
    kept_rank = rank[keep]
    kept_ratio = log_ratio[keep]

    sums = np.bincount(kept_rank, weights=kept_ratio, minlength=max_rank + 1)
    counts = np.bincount(kept_rank, minlength=max_rank + 1)
    supported = counts >= min_observations
    supported[0] = False  # rank 0 is the reference point
    ranks = np.flatnonzero(supported)
    if ranks.size < 3:
        raise ValueError(
            "not enough repeated (batch, worker) sequences to fit a learning "
            f"curve (ranks with support: {ranks.size})"
        )
    mean_log_ratio = sums[ranks] / counts[ranks]
    means = np.exp(mean_log_ratio)

    # Fit duration ~ (1 + rank) ** -gamma: log ratio = -gamma * log1p(rank).
    x = np.log1p(ranks.astype(np.float64))
    slope = float(np.sum(x * mean_log_ratio) / np.sum(x * x))
    return LearningCurve(
        ranks=ranks,
        mean_relative_duration=means,
        counts=counts[ranks],
        learning_exponent=-slope,
    )
