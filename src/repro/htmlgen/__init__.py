"""Task-interface HTML generation.

The marketplace released the raw HTML of one sample task instance per batch;
all §4 design parameters are extracted from it.  This subpackage *writes*
that HTML from a task's latent design features, such that
:func:`repro.html.extract_features` recovers the features — the enrichment
pipeline therefore runs on genuinely raw markup, exactly like the paper.
"""

from repro.htmlgen.render import render_task_html

__all__ = ["render_task_html"]
