"""Render a task interface as HTML from its design features.

Guarantees (verified by tests):

- ``extract_features(render_task_html(...))`` recovers ``num_text_boxes``,
  ``num_examples`` and ``num_images`` exactly, and ``num_words`` within a
  small tolerance of the requested count;
- two batches of the same distinct task render nearly identical HTML
  (differing only in the embedded sample item), while different tasks use
  different instruction vocabulary — so HTML-similarity clustering can
  recover distinct tasks, as the paper's §3.3 pipeline does.
"""

from __future__ import annotations

import numpy as np

from repro.taxonomy.labels import DataType, Goal, Operator

#: Small deterministic vocabulary for instruction filler text.
_VOCABULARY = (
    "please review the provided item carefully and follow each step "
    "before submitting your judgement when unsure use best effort and "
    "consult the guidance above answers must reflect only what the data "
    "shows avoid guessing mark uncertain cases accordingly workers who "
    "consistently submit accurate responses retain access to this job "
    "read every field check spelling copy values exactly as displayed "
    "match the format shown do not include extra punctuation or notes "
    "if the page fails to load skip the unit and flag it for review"
).split()

_GOAL_PHRASES: dict[Goal, str] = {
    Goal.ENTITY_RESOLUTION: "decide whether the two records describe the same real world entity",
    Goal.HUMAN_BEHAVIOR: "answer the survey questions honestly based on your own experience",
    Goal.SEARCH_RELEVANCE: "judge how relevant the result is to the search query shown",
    Goal.QUALITY_ASSURANCE: "flag content that violates the policy described in the guidelines",
    Goal.SENTIMENT_ANALYSIS: "classify the overall sentiment expressed by the author",
    Goal.LANGUAGE_UNDERSTANDING: "analyze the language of the passage and identify the requested elements",
    Goal.TRANSCRIPTION: "transcribe the content exactly as it appears in the media",
}

_OPERATOR_PROMPTS: dict[Operator, str] = {
    Operator.FILTER: "Select the category that applies:",
    Operator.RATE: "Rate the item on the scale below:",
    Operator.SORT: "Order the entries from best to worst:",
    Operator.COUNT: "How many occurrences do you see?",
    Operator.TAG: "Apply every tag that fits:",
    Operator.GATHER: "Find the requested information on the web and enter it:",
    Operator.EXTRACT: "Copy the requested value exactly as shown:",
    Operator.GENERATE: "Write your answer in your own words:",
    Operator.LOCALIZE: "Mark the region described in the item:",
    Operator.EXTERNAL: "Open the link below and complete the activity:",
}

_DATA_SNIPPETS: dict[DataType, str] = {
    DataType.TEXT: '<blockquote class="item-text">{item}</blockquote>',
    DataType.IMAGE: '<img src="https://cdn.example.com/items/{item}.jpg" alt="item">',
    DataType.AUDIO: '<audio controls src="https://cdn.example.com/items/{item}.mp3"></audio>',
    DataType.VIDEO: '<video controls src="https://cdn.example.com/items/{item}.mp4"></video>',
    DataType.MAPS: '<iframe class="map" src="https://maps.example.com/embed?q={item}"></iframe>',
    DataType.SOCIAL_MEDIA: '<blockquote class="social-post">{item}</blockquote>',
    DataType.WEBPAGE: '<a href="https://web.example.com/{item}">open the webpage</a>',
}


def _filler(rng: np.random.Generator, num_words: int) -> str:
    if num_words <= 0:
        return ""
    picks = rng.choice(len(_VOCABULARY), size=num_words)
    return " ".join(_VOCABULARY[i] for i in picks)


def render_task_html(
    *,
    title: str,
    goals: tuple[Goal, ...],
    operators: tuple[Operator, ...],
    data_types: tuple[DataType, ...],
    num_words: int,
    num_text_boxes: int,
    num_examples: int,
    num_images: int,
    num_choices: int,
    template_salt: int,
    item_token: str,
) -> str:
    """Render the sample-task HTML for one batch.

    ``template_salt`` fixes the task-specific filler vocabulary draw (so all
    batches of a task share their instruction text); ``item_token``
    identifies the sample item embedded in this batch's interface.
    """
    rng = np.random.default_rng(template_salt)
    parts: list[str] = [
        "<html><head>",
        f"<title>{title}</title>",
        "</head><body>",
        f'<h1>{title}</h1>',
    ]

    # Fixed structural words so far: title (in h1) repeats; budget the rest.
    structural_words = len(title.split()) * 2 + 10
    goal_phrases = [_GOAL_PHRASES[g] for g in goals]
    structural_words += sum(len(p.split()) for p in goal_phrases)
    structural_words += sum(
        len(_OPERATOR_PROMPTS[op].split()) for op in operators
    )
    structural_words += 2 * num_choices  # radio labels "choice N"

    example_words_each = 0
    if num_examples > 0:
        example_words_each = max(8, min(60, num_words // (4 * num_examples)))
        structural_words += num_examples * (example_words_each + 1)

    instruction_words = max(num_words - structural_words, 5)

    parts.append('<div class="instructions"><h2>Instructions</h2>')
    for goal_phrase in goal_phrases:
        parts.append(f"<p>{goal_phrase}.</p>")
    parts.append(f"<p>{_filler(rng, instruction_words)}</p>")
    parts.append("</div>")

    for e in range(num_examples):
        parts.append('<div class="example-block">')
        parts.append(f"<b>Example {e + 1}:</b>")
        parts.append(f"<p>{_filler(rng, example_words_each)}</p>")
        parts.append("</div>")

    # The sample item of an image data type renders as an <img> below, so
    # only the remainder appear as instructional/asset images — keeping the
    # extracted #images equal to the task's latent feature.
    item_image_count = sum(1 for dt in data_types if dt is DataType.IMAGE)
    for k in range(max(num_images - item_image_count, 0)):
        parts.append(
            f'<img src="https://cdn.example.com/assets/t{template_salt % 99991}_{k}.png">'
        )

    parts.append(f'<div class="task-unit" data-unit="{item_token}">')
    for j, data_type in enumerate(data_types):
        snippet = _DATA_SNIPPETS[data_type]
        parts.append(snippet.format(item=f"{item_token}-{j}"))
    for operator in operators:
        parts.append(f"<p>{_OPERATOR_PROMPTS[operator]}</p>")

    uses_clicks = operators[0] not in (
        Operator.GATHER,
        Operator.EXTRACT,
        Operator.GENERATE,
    ) or num_text_boxes == 0
    if uses_clicks:
        for c in range(num_choices):
            parts.append(
                f'<label><input type="radio" name="q" value="{c}"> choice {c + 1}</label>'
            )
    for t in range(num_text_boxes):
        parts.append(f'<input type="text" name="free_{t}" placeholder="type here">')

    parts.append("</div>")
    parts.append('<button type="submit">Submit</button>')
    parts.append("</body></html>")
    return "\n".join(parts)
