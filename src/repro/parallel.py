"""Small process-parallel map used by the enrichment hot paths.

The enrichment pipeline is embarrassingly parallel over batch HTML
(shingling for clustering, feature extraction for design parameters), so a
plain order-preserving ``Pool.map`` with chunking is all that is needed.

Parallelism is opt-in and controlled by the ``REPRO_WORKERS`` environment
variable:

- unset, empty, or ``1`` — serial (the default; deterministic and safe in
  every environment);
- ``auto`` or ``0`` — one worker per CPU;
- any other integer — that many workers.

``map_chunks`` always preserves input order and falls back to a serial loop
whenever multiprocessing is unavailable (missing semaphores in sandboxes,
unpicklable callables, interpreter shutdown), so callers never need to
branch on the environment.  Results are identical either way because the
mapped functions are pure.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable selecting the worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Below this many items the fork/pickle overhead outweighs any fan-out win.
_MIN_PARALLEL_ITEMS = 32


def worker_count(workers: int | None = None) -> int:
    """Resolve the effective worker count (``workers`` overrides the env)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return 1
        if raw == "auto":
            return os.cpu_count() or 1
        try:
            workers = int(raw)
        except ValueError:
            return 1
    if workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


def map_chunks(
    func: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[_R]:
    """Order-preserving parallel map with a serial fallback.

    ``func`` must be a picklable top-level function for the parallel path;
    anything else silently degrades to the serial loop.
    """
    seq: Sequence[_T] = items if isinstance(items, (list, tuple)) else list(items)
    n = worker_count(workers)
    if n <= 1 or len(seq) < _MIN_PARALLEL_ITEMS:
        return [func(item) for item in seq]
    try:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        if chunk_size is None:
            chunk_size = max(1, len(seq) // (n * 4))
        with ctx.Pool(processes=n) as pool:
            return pool.map(func, seq, chunksize=chunk_size)
    except Exception:  # pragma: no cover - environment-dependent fallback
        return [func(item) for item in seq]
