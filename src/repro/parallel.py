"""Small process-parallel map used by the enrichment hot paths.

The enrichment pipeline is embarrassingly parallel over batch HTML
(shingling for clustering, feature extraction for design parameters), so a
plain order-preserving chunked map over a process pool is all that is
needed.

Parallelism is opt-in and controlled by the ``REPRO_WORKERS`` environment
variable:

- unset, empty, or ``1`` — serial (the default; deterministic and safe in
  every environment);
- ``auto`` or ``0`` — one worker per CPU;
- any other positive integer — that many workers;
- anything else (garbage, negative) — serial, with a ``RuntimeWarning`` and
  a ``parallel.serial_fallback`` increment so a misconfigured fleet is
  diagnosable from its metrics.

Failure semantics — the load-bearing part:

- **Pool-infrastructure failures** (missing semaphores in sandboxes,
  unpicklable callables, a worker crash, interpreter shutdown) degrade to
  the serial loop.  The degradation is *visible*: a ``RuntimeWarning``
  (emitted once per process per cause, so a long run does not spam) and a
  ``parallel.serial_fallback`` counter increment *per event*.  Results are
  identical either way because the mapped functions are pure.
- **Pool creation** is retried up to :data:`_POOL_SPAWN_ATTEMPTS` times
  with exponential backoff (``parallel.pool_retries`` counts retries)
  before the serial fallback engages.
- **Mapped-function exceptions** are *not* infrastructure failures: each
  worker guards the mapped call and ships the exception back as a value, so
  the original exception type re-raises in the parent immediately — the
  workload is never re-executed serially just to reproduce a deterministic
  error.
- **Hung chunks**: with a timeout (``timeout=`` argument or the
  ``REPRO_POOL_TIMEOUT`` env var, seconds), every in-flight chunk carries a
  deadline measured from its *dispatch* — not from its position in an
  await-in-order queue — so a hung chunk is detected within one timeout of
  being handed to the pool no matter how many slow chunks precede it.  A
  stall bumps ``parallel.timeout``, tears the pool down, and falls back to
  the serial loop.

Scheduling — the as-completed dispatcher:

- Chunks are dispatched through a **bounded in-flight window** and
  collected as they complete, not in submission order.  With a timeout
  configured the window is exactly the worker count, so a dispatched chunk
  starts (almost) immediately and its deadline-from-dispatch is honest;
  without one the window doubles for pipelining.
- Whenever any chunk completes, the freed slot immediately dispatches the
  next pending chunk — whichever worker went idle takes it (counted in
  ``parallel.steals``), so one straggler chunk never leaves the other
  workers idle the way a static round-robin placement would.
- Results are reassembled in input order and spans/counters fold in chunk
  order after the last chunk arrives, so the schedule never changes a byte
  of output or a fold.

Fault-injection sites (:mod:`repro.faults`): ``pool.spawn:fail`` makes one
pool-creation attempt raise, ``pool.chunk:fail`` crashes a worker chunk,
``pool.chunk:hang`` stalls one past the timeout — all three must leave the
mapped results byte-identical to a serial run.

With span tracing enabled (:mod:`repro.obs`), each worker records a
``parallel.chunk`` span (plus any spans the mapped function opens) and its
counter increments, and ships both back to the parent, where they fold into
the enclosing ``parallel.map`` span.  Untraced pool runs still ship counter
deltas back, so parallel runs converge to the serial counts either way.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

from repro import faults, obs
from repro.obs import live as obs_live

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable selecting the worker count.
WORKERS_ENV = "REPRO_WORKERS"
#: Environment variable setting the per-chunk result timeout in seconds.
POOL_TIMEOUT_ENV = "REPRO_POOL_TIMEOUT"

#: Below this many items the fork/pickle overhead outweighs any fan-out win.
_MIN_PARALLEL_ITEMS = 32

#: Pool-creation attempts before degrading to the serial loop.
_POOL_SPAWN_ATTEMPTS = 3
#: First retry backoff; doubles per attempt.
_POOL_SPAWN_BACKOFF_S = 0.05
#: How long an injected ``pool.chunk:hang`` fault sleeps.
_HANG_SLEEP_S = 30.0
#: How long an abandoned pool's background teardown may take before the
#: driver stops waiting for it.
_ABANDON_JOIN_S = 5.0

_FALLBACKS = obs.counter("parallel.serial_fallback")
_POOL_MAPS = obs.counter("parallel.pool_maps")
_POOL_RETRIES = obs.counter("parallel.pool_retries")
_TIMEOUTS = obs.counter("parallel.timeout")
#: Chunks dispatched by the as-completed loop after the initial window
#: fill — i.e. chunks an idle worker picked up the moment it freed, where
#: a static placement would have pinned them to a predetermined worker.
_STEALS = obs.counter("parallel.steals")
#: Chunks that completed (and shipped spans/deltas) before a timeout or
#: worker crash abandoned the whole pool result; their telemetry is
#: deliberately discarded (see the fold-only-on-success note in _pool_map)
#: and this counter is the visible record of how many were lost.
_CHUNKS_DROPPED = obs.counter("parallel.chunks_dropped")
_WORKERS_GAUGE = obs.gauge("parallel.workers")
_CHUNK_SECONDS = obs.histogram("parallel.chunk_seconds")


class PoolTimeoutError(RuntimeError):
    """A worker chunk exceeded the configured result timeout."""


# A long run hitting the same degradation on every map (bad REPRO_WORKERS,
# unpicklable closure, sandbox without semaphores) would repeat an identical
# RuntimeWarning hundreds of times; the warning is a human signal, so each
# *cause* warns once per process while parallel.serial_fallback keeps
# counting every event for metrics-based triage.
_WARNED_CAUSES: set[str] = set()


def _warn_once(cause: str, message: str, stacklevel: int = 3) -> None:
    if cause in _WARNED_CAUSES:
        return
    _WARNED_CAUSES.add(cause)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel + 1)


def reset_warnings() -> None:
    """Forget which causes already warned (tests asserting on warnings)."""
    _WARNED_CAUSES.clear()


def _misconfigured(raw: str, why: str) -> int:
    _FALLBACKS.inc()
    _warn_once(
        f"workers_env:{raw}",
        f"repro.parallel: {WORKERS_ENV}={raw!r} {why}; running serial",
        stacklevel=3,
    )
    return 1


def worker_count(workers: int | None = None) -> int:
    """Resolve the effective worker count (``workers`` overrides the env).

    Bad env input (non-integer garbage, negative counts) resolves to serial
    — but loudly: a ``RuntimeWarning`` plus a ``parallel.serial_fallback``
    increment, never a silent 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return 1
        if raw == "auto":
            return os.cpu_count() or 1
        try:
            workers = int(raw)
        except ValueError:
            return _misconfigured(raw, "is not an integer or 'auto'")
        if workers < 0:
            return _misconfigured(raw, "is negative")
    if workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


def chunk_timeout(timeout: float | None = None) -> float | None:
    """Resolve the per-chunk result timeout (argument over env, ``None`` off)."""
    if timeout is not None:
        return timeout if timeout > 0 else None
    raw = os.environ.get(POOL_TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        _warn_once(
            f"timeout_env:{raw}",
            f"repro.parallel: {POOL_TIMEOUT_ENV}={raw!r} is not a number; "
            f"chunk timeouts disabled",
            stacklevel=2,
        )
        return None
    return value if value > 0 else None


def _shippable(exc: Exception) -> Exception:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.dumps(exc)
    except Exception:
        return RuntimeError(f"unpicklable {type(exc).__name__}: {exc}")
    return exc


class _ChunkRunner:
    """Run one chunk of items in a worker, guarding mapped-function errors.

    Picklable as long as the mapped function is.  Returns ``(guarded,
    spans, deltas, hist_deltas, mark)`` where ``guarded`` holds ``(True,
    result)`` per item — or ``(False, exc)`` if the mapped function
    raised, shipped back as a value so the parent re-raises the *original*
    exception instead of mistaking it for a pool failure.  Injected
    ``pool.chunk`` faults raise out of the runner, i.e. they look exactly
    like a worker crash.

    ``spans``/``deltas``/``hist_deltas`` carry the worker's trace spans,
    counter increments, and histogram observations (including the runner's
    own ``parallel.chunk_seconds`` timing) back to the parent (spans only
    when tracing is on).  ``mark`` is the chunk's busy interval — ``(pid,
    start, end)`` in ``time.perf_counter()`` terms, which is
    ``CLOCK_MONOTONIC`` and therefore comparable across the fork — shipped
    on *every* chunk so resource timelines can place each worker's work as
    it happened instead of one opaque block folded at pool completion.
    """

    __slots__ = ("func", "traced")

    def __init__(self, func: Callable[[_T], _R], traced: bool):
        self.func = func
        self.traced = traced

    def _run(
        self, chunk: Sequence[_T]
    ) -> tuple[list[tuple[bool, object]], tuple[int, float, float]]:
        kind = faults.fire("pool.chunk")
        if kind == "fail":
            raise faults.InjectedFault("injected fault: pool.chunk:fail")
        if kind == "hang":
            time.sleep(_HANG_SLEEP_S)
        t0 = time.perf_counter()
        guarded: list[tuple[bool, object]] = []
        for item in chunk:
            try:
                guarded.append((True, self.func(item)))
            except Exception as exc:
                guarded.append((False, _shippable(exc)))
                break  # the parent raises at the first error anyway
        t1 = time.perf_counter()
        _CHUNK_SECONDS.observe(t1 - t0)
        return guarded, (os.getpid(), t0, t1)

    def __call__(
        self, chunk: Sequence[_T]
    ) -> tuple[
        list[tuple[bool, object]],
        list[obs.SpanRecord] | None,
        dict[str, int] | None,
        dict[str, dict] | None,
        tuple[int, float, float],
    ]:
        if self.traced:
            with obs.worker_collector() as collector:
                with obs.span("parallel.chunk", items=len(chunk)):
                    guarded, mark = self._run(chunk)
            return (
                guarded,
                collector.spans,
                collector.counter_deltas,
                collector.histogram_deltas,
                mark,
            )
        before = obs.REGISTRY.counter_values()
        hists_before = obs.REGISTRY.histogram_values()
        guarded, mark = self._run(chunk)
        deltas = obs.counter_deltas(before, obs.REGISTRY.counter_values())
        hist_deltas = obs.histogram_deltas(
            hists_before, obs.REGISTRY.histogram_values()
        )
        return guarded, None, deltas, hist_deltas or None, mark


def _create_pool(ctx, n: int):
    """Create a pool, retrying transient failures with bounded backoff."""
    for attempt in range(1, _POOL_SPAWN_ATTEMPTS + 1):
        try:
            faults.check("pool.spawn")
            return ctx.Pool(processes=n)
        except Exception:
            if attempt == _POOL_SPAWN_ATTEMPTS:
                raise
            _POOL_RETRIES.inc()
            time.sleep(_POOL_SPAWN_BACKOFF_S * (2 ** (attempt - 1)))
    raise RuntimeError("unreachable")  # pragma: no cover


def _abandon_pool(pool) -> None:
    """Tear down a pool whose workers may be mid-chunk, without deadlock.

    ``Pool.terminate()`` begins with ``_help_stuff_finish``, which acquires
    the task queue's shared read-lock — a lock an active worker holds while
    blocked reading the next task.  Calling it synchronously on a pool that
    is being abandoned (timeout, crash) can therefore deadlock the driver
    against a worker that will never release the lock.  Instead: SIGKILL
    every worker first (a killed worker can never re-acquire anything),
    then run ``terminate()`` on a daemon thread with a bounded join, so a
    teardown that still wedges strands one daemon thread instead of the
    build.
    """
    import threading

    for proc in getattr(pool, "_pool", []):
        try:
            proc.kill()
        except Exception:  # already dead / not a real process
            pass
    reaper = threading.Thread(
        target=pool.terminate, name="repro-pool-reaper", daemon=True
    )
    reaper.start()
    reaper.join(timeout=_ABANDON_JOIN_S)


def _dispatch_chunks(
    pool,
    runner: "_ChunkRunner",
    chunks: list[Sequence[_T]],
    window: int,
    timeout: float | None,
) -> list:
    """As-completed dispatcher: bounded in-flight window, deadlines from
    dispatch, next pending chunk handed to whichever worker frees first.

    Returns the raw chunk results indexed by chunk position.  Raises
    :class:`PoolTimeoutError` when any dispatched chunk's result is not
    ready within ``timeout`` seconds of its *dispatch*, and re-raises a
    worker/runner infrastructure failure as soon as it surfaces — in both
    cases after counting the already-completed chunks whose results (and
    shipped telemetry) the abandonment throws away (``parallel.
    chunks_dropped``).
    """
    import queue as queue_mod

    done: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
    parts: list = [None] * len(chunks)
    dispatched_at: dict[int, float] = {}
    next_idx = 0

    def _submit(index: int, steal: bool = False) -> None:
        def _ok(result, index=index):
            done.put((index, True, result))

        def _err(exc, index=index):
            done.put((index, False, exc))

        dispatched_at[index] = time.perf_counter()
        obs_live.publish(
            "chunk.dispatch", index=index, total=len(chunks), steal=steal
        )
        pool.apply_async(
            runner, (chunks[index],), callback=_ok, error_callback=_err
        )

    def _completed() -> int:
        return sum(1 for part in parts if part is not None)

    while next_idx < len(chunks) and len(dispatched_at) < window:
        _submit(next_idx)
        next_idx += 1
    while dispatched_at:
        wait_s = None
        if timeout is not None:
            earliest = min(dispatched_at.values())
            wait_s = max(0.0, earliest + timeout - time.perf_counter())
        try:
            index, ok, payload = done.get(timeout=wait_s)
        except queue_mod.Empty:
            now = time.perf_counter()
            stale = [
                i for i, t0 in dispatched_at.items()
                if now - t0 >= timeout
            ]
            if not stale:  # woke a hair early; keep waiting
                continue
            _TIMEOUTS.inc()
            _CHUNKS_DROPPED.inc(_completed())
            raise PoolTimeoutError(
                f"worker chunk {min(stale)} result not ready within "
                f"{timeout:g}s of dispatch"
            ) from None
        del dispatched_at[index]
        if not ok:
            # Worker crash / injected chunk fault / pickling failure: the
            # caller degrades to the serial loop, abandoning every chunk
            # that already completed.
            _CHUNKS_DROPPED.inc(_completed())
            raise payload
        parts[index] = payload
        obs_live.publish(
            "chunk.complete",
            index=index,
            total=len(chunks),
            done=_completed(),
            pending=len(dispatched_at),
        )
        if next_idx < len(chunks):
            _STEALS.inc()
            _submit(next_idx, steal=True)
            next_idx += 1
    return parts


def _pool_map(
    func: Callable[[_T], _R],
    seq: Sequence[_T],
    n: int,
    chunk_size: int,
    timeout: float | None,
) -> list[tuple[bool, object]]:
    """Map over the pool; returns guarded per-item results in input order.

    Raises on any pool-infrastructure problem (spawn failure after retries,
    worker crash, pickling error, chunk timeout) — the caller's cue to fall
    back to the serial loop.

    Chunks flow through :func:`_dispatch_chunks`: at most ``window`` in
    flight, collected as completed.  With a timeout the window equals the
    worker count so a dispatched chunk starts essentially immediately and
    its deadline-from-dispatch is honest; without one the window doubles so
    pickling of the next chunk overlaps with worker compute.
    """
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    _WORKERS_GAUGE.set(n)
    chunks = [seq[i:i + chunk_size] for i in range(0, len(seq), chunk_size)]
    runner = _ChunkRunner(func, traced=obs.enabled())
    window = n if timeout is not None else 2 * n
    with obs.span(
        "parallel.map", items=len(seq), workers=n, chunks=len(chunks)
    ):
        pool = _create_pool(ctx, n)
        try:
            _POOL_MAPS.inc()
            parts = _dispatch_chunks(pool, runner, chunks, window, timeout)
        except BaseException:
            # Workers may be hung or mid-chunk; a synchronous terminate()
            # can deadlock on the task queue's read-lock (see
            # _abandon_pool).  Kill-then-background-terminate instead.
            _abandon_pool(pool)
            raise
        else:
            # Every chunk completed, so the workers are idle at their
            # task-queue read: the ordinary synchronous teardown is safe.
            pool.terminate()
        # Fold-only-on-success invariant (load-bearing): spans, counter and
        # histogram deltas, and sampler busy marks fold only after *every*
        # chunk arrived.  A failure above abandons the whole pool result and
        # the serial fallback recomputes it, so folding any completed
        # chunk's telemetry would double-count work; the price is that a
        # degraded run under-reports parallel.chunk_seconds and worker
        # utilization by exactly the chunks parallel.chunks_dropped counts.
        # Folding happens in chunk-index order, not completion order, so a
        # trace is deterministic under any schedule.
        from repro.obs import sampler

        guarded: list[tuple[bool, object]] = []
        for idx, (part, spans, deltas, hist_deltas, mark) in enumerate(parts):
            guarded.extend(part)
            if spans:
                obs.fold_spans(spans)
            if deltas:
                obs.merge_counter_deltas(deltas)
            if hist_deltas:
                obs.merge_histogram_deltas(hist_deltas)
            pid, t0, t1 = mark
            sampler.note_interval(pid, t0, t1, "parallel.chunk")
            # Worker events ride the chunk-result channel: the worker's
            # spans/deltas just folded into the parent registry, so surface
            # one fold event per chunk for live SSE clients.
            obs_live.publish(
                "chunk.folded",
                index=idx,
                pid=pid,
                wall_s=round(t1 - t0, 6),
                spans=len(spans) if spans else 0,
            )
        return guarded


def map_chunks(
    func: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    timeout: float | None = None,
    min_items: int | None = None,
) -> list[_R]:
    """Order-preserving parallel map with a serial fallback.

    ``func`` must be a picklable top-level function for the parallel path;
    anything else degrades to the serial loop (with a ``RuntimeWarning``
    and a ``parallel.serial_fallback`` counter increment).  An exception
    raised *by ``func``* is not a degradation: it re-raises with its
    original type, without re-executing the workload.

    ``timeout`` bounds how long each chunk's result may take, measured
    from the moment the chunk is dispatched to the pool (seconds; default
    off, or the ``REPRO_POOL_TIMEOUT`` env var); a stall counts in
    ``parallel.timeout`` and degrades to the serial loop.

    ``min_items`` overrides the built-in "too few items to be worth a pool"
    threshold (default :data:`_MIN_PARALLEL_ITEMS`).  Coarse fan-outs whose
    items are whole pipeline stages — e.g. one shard build per item in
    :mod:`repro.shard` — pass a small value so even a handful of items
    parallelizes.
    """
    seq: Sequence[_T] = items if isinstance(items, (list, tuple)) else list(items)
    n = worker_count(workers)
    floor = _MIN_PARALLEL_ITEMS if min_items is None else max(1, min_items)
    if n <= 1 or len(seq) < floor:
        return [func(item) for item in seq]
    if chunk_size is None:
        chunk_size = max(1, len(seq) // (n * 4))
    try:
        guarded = _pool_map(func, seq, n, chunk_size, chunk_timeout(timeout))
    except Exception as exc:
        _FALLBACKS.inc()
        _warn_once(
            f"pool_unavailable:{type(exc).__name__}",
            f"repro.parallel: process pool unavailable ({exc!r}); "
            f"degrading to a serial loop over {len(seq)} items",
            stacklevel=2,
        )
        return [func(item) for item in seq]
    results: list[_R] = []
    for ok, value in guarded:
        if not ok:
            raise value  # the mapped function's own exception, original type
        results.append(value)
    return results
