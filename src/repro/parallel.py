"""Small process-parallel map used by the enrichment hot paths.

The enrichment pipeline is embarrassingly parallel over batch HTML
(shingling for clustering, feature extraction for design parameters), so a
plain order-preserving ``Pool.map`` with chunking is all that is needed.

Parallelism is opt-in and controlled by the ``REPRO_WORKERS`` environment
variable:

- unset, empty, or ``1`` — serial (the default; deterministic and safe in
  every environment);
- ``auto`` or ``0`` — one worker per CPU;
- any other integer — that many workers.

``map_chunks`` always preserves input order and falls back to a serial loop
whenever multiprocessing is unavailable (missing semaphores in sandboxes,
unpicklable callables, interpreter shutdown), so callers never need to
branch on the environment.  Results are identical either way because the
mapped functions are pure.  The degradation is *visible*: it raises a
``RuntimeWarning`` and bumps the ``parallel.serial_fallback`` counter so a
silently-serial run can be diagnosed from its metrics.

With span tracing enabled (:mod:`repro.obs`), the pool path switches to
explicit chunks run through :class:`_ChunkRunner`: each worker records a
``parallel.chunk`` span (plus any spans the mapped function opens) and its
counter increments, and ships both back to the parent, where they fold into
the enclosing ``parallel.map`` span.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable selecting the worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Below this many items the fork/pickle overhead outweighs any fan-out win.
_MIN_PARALLEL_ITEMS = 32

_FALLBACKS = obs.counter("parallel.serial_fallback")
_POOL_MAPS = obs.counter("parallel.pool_maps")
_WORKERS_GAUGE = obs.gauge("parallel.workers")


def worker_count(workers: int | None = None) -> int:
    """Resolve the effective worker count (``workers`` overrides the env)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return 1
        if raw == "auto":
            return os.cpu_count() or 1
        try:
            workers = int(raw)
        except ValueError:
            return 1
    if workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


class _ChunkRunner:
    """Run one chunk of items in a worker under a local span collector.

    Picklable as long as the mapped function is.  Returns the chunk's
    results plus the spans and counter deltas recorded while computing
    them, for folding back into the parent process's trace.
    """

    __slots__ = ("func",)

    def __init__(self, func: Callable[[_T], _R]):
        self.func = func

    def __call__(
        self, chunk: Sequence[_T]
    ) -> tuple[list[_R], list[obs.SpanRecord], dict[str, int]]:
        with obs.worker_collector() as collector:
            with obs.span("parallel.chunk", items=len(chunk)):
                results = [self.func(item) for item in chunk]
        return results, collector.spans, collector.counter_deltas


def _traced_pool_map(
    pool, func: Callable[[_T], _R], seq: Sequence[_T], chunk_size: int, n: int
) -> list[_R]:
    chunks = [seq[i:i + chunk_size] for i in range(0, len(seq), chunk_size)]
    with obs.span(
        "parallel.map", items=len(seq), workers=n, chunks=len(chunks)
    ):
        results: list[_R] = []
        for part, spans, deltas in pool.map(_ChunkRunner(func), chunks, chunksize=1):
            results.extend(part)
            obs.fold_spans(spans)
            obs.merge_counter_deltas(deltas)
        return results


def map_chunks(
    func: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[_R]:
    """Order-preserving parallel map with a serial fallback.

    ``func`` must be a picklable top-level function for the parallel path;
    anything else degrades to the serial loop (with a ``RuntimeWarning``
    and a ``parallel.serial_fallback`` counter increment).
    """
    seq: Sequence[_T] = items if isinstance(items, (list, tuple)) else list(items)
    n = worker_count(workers)
    if n <= 1 or len(seq) < _MIN_PARALLEL_ITEMS:
        return [func(item) for item in seq]
    if chunk_size is None:
        chunk_size = max(1, len(seq) // (n * 4))
    try:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        _WORKERS_GAUGE.set(n)
        with ctx.Pool(processes=n) as pool:
            _POOL_MAPS.inc()
            if obs.enabled():
                return _traced_pool_map(pool, func, seq, chunk_size, n)
            return pool.map(func, seq, chunksize=chunk_size)
    except Exception as exc:
        _FALLBACKS.inc()
        warnings.warn(
            f"repro.parallel: process pool unavailable ({exc!r}); "
            f"degrading to a serial loop over {len(seq)} items",
            RuntimeWarning,
            stacklevel=2,
        )
        return [func(item) for item in seq]
