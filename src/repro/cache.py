"""Content-addressed on-disk cache for built studies.

``build_study`` is a pure function of ``(SimulationConfig, code)``: the
simulator, release lens, and enrichment pipeline are all deterministic in
the seed.  That makes the released + enriched layers safe to persist and
reuse across sessions — a warm ``build_study`` skips simulation and
enrichment entirely.

Keying
------
A cache entry's key is the SHA-256 of:

- a schema version (bumped when the on-disk layout changes),
- a *code fingerprint* — the hash of every ``.py`` file in the packages
  that determine the released/enriched bytes (simulator, dataset,
  enrichment, htmlgen, html, tables, taxonomy, stats, parallel) — so any
  code change invalidates automatically, and
- every field of the :class:`~repro.simulator.config.SimulationConfig`
  (including the full calibration), normalized to JSON.

Layout
------
One directory per key under the cache root (``REPRO_CACHE_DIR`` env var,
default ``~/.cache/repro-study``): tables as ``.npz`` (object columns
pickled inside the archive), the HTML corpus and batch→cluster map as npz
object/int arrays, plus a human-readable ``manifest.json``.  Entries are
written to a temp directory and atomically renamed, so concurrent builders
never observe a partial entry; unreadable entries are treated as misses.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset
    from repro.simulator.config import SimulationConfig
    from repro.tables import Table

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the cache entirely (any non-empty value).
NO_CACHE_ENV = "REPRO_NO_CACHE"

_DEFAULT_CACHE_DIR = "~/.cache/repro-study"

#: Bump when the on-disk layout changes incompatibly.
_SCHEMA_VERSION = 1

#: Packages/modules (relative to the ``repro`` package root) whose source
#: determines the cached bytes.  Figures/analysis/reporting run on top of
#: the cached layers and deliberately do not invalidate.
_CODE_SCOPE = (
    "simulator",
    "dataset",
    "enrichment",
    "htmlgen",
    "html",
    "tables",
    "taxonomy",
    "stats",
    "parallel.py",
)

#: Cache-traffic counters: a cold ``build_study`` is one miss + one write, a
#: warm rebuild is one hit, and ``REPRO_NO_CACHE`` records none of them.
_HITS = obs.counter("cache.hit")
_MISSES = obs.counter("cache.miss")
_WRITES = obs.counter("cache.write")
_BYTES_WRITTEN = obs.counter("cache.bytes_written")
_BYTES_READ = obs.counter("cache.bytes_read")

_TABLE_FILES = {
    "batch_catalog": "released_batch_catalog.npz",
    "instances": "released_instances.npz",
    "batch_table": "enriched_batch_table.npz",
    "cluster_table": "enriched_cluster_table.npz",
    "labels": "enriched_labels.npz",
}


def cache_dir() -> Path:
    """The cache root (``REPRO_CACHE_DIR`` env var or ``~/.cache/repro-study``)."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip() or _DEFAULT_CACHE_DIR
    return Path(raw).expanduser()


def cache_enabled(explicit: bool | None = None) -> bool:
    """Resolve whether the cache should be used.

    ``explicit`` (from an API/CLI caller) wins; otherwise the cache is on
    unless ``REPRO_NO_CACHE`` is set to a non-empty value.
    """
    if explicit is not None:
        return explicit
    return not os.environ.get(NO_CACHE_ENV, "").strip()


_code_fingerprint_cache: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the source files that determine cached content."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for entry in _CODE_SCOPE:
            path = root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                digest.update(str(file.relative_to(root)).encode())
                digest.update(file.read_bytes())
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def _jsonable(value: Any) -> Any:
    """Normalize config values (enums, tuples, nested dataclasses) to JSON."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(_jsonable(k)): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


def study_key(config: "SimulationConfig") -> str:
    """Content-addressed cache key for a simulation configuration."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "code": code_fingerprint(),
        "config": _jsonable(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# Table / corpus serialization
# --------------------------------------------------------------------- #


def _save_table(table: "Table", path: Path) -> list[str]:
    np.savez(path, **{name: table[name] for name in table.column_names})
    return list(table.column_names)


def _load_table(path: Path, column_order: list[str]) -> "Table":
    from repro.tables import Table

    with np.load(path, allow_pickle=True) as archive:
        columns = {name: archive[name] for name in column_order}
    return Table(columns, copy=False)


def _entry_size_bytes(entry: Path) -> int:
    try:
        return sum(f.stat().st_size for f in entry.iterdir() if f.is_file())
    except OSError:
        return 0


def store_study(
    config: "SimulationConfig",
    released: "ReleasedDataset",
    enriched: "EnrichedDataset",
) -> Path | None:
    """Persist the released + enriched layers; returns the entry path.

    Best-effort: any I/O failure leaves the cache unchanged and returns
    ``None`` (the caller already has the in-memory study).
    """
    with obs.span("cache.store") as sp:
        entry = _store_study(config, released, enriched)
        if entry is not None:
            sp.set("entry", entry.name[:16])
    return entry


def _store_study(
    config: "SimulationConfig",
    released: "ReleasedDataset",
    enriched: "EnrichedDataset",
) -> Path | None:
    key = study_key(config)
    root = cache_dir()
    final = root / key
    if final.exists():
        return final
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=f".{key[:16]}-", dir=root))
    except OSError:
        return None
    try:
        column_orders: dict[str, list[str]] = {}
        column_orders["batch_catalog"] = _save_table(
            released.batch_catalog, tmp / _TABLE_FILES["batch_catalog"]
        )
        column_orders["instances"] = _save_table(
            released.instances, tmp / _TABLE_FILES["instances"]
        )
        column_orders["batch_table"] = _save_table(
            enriched.batch_table, tmp / _TABLE_FILES["batch_table"]
        )
        column_orders["cluster_table"] = _save_table(
            enriched.cluster_table, tmp / _TABLE_FILES["cluster_table"]
        )
        column_orders["labels"] = _save_table(
            enriched.labels, tmp / _TABLE_FILES["labels"]
        )

        html_ids = np.array(sorted(released.batch_html), dtype=np.int64)
        html_docs = np.array(
            [released.batch_html[int(b)] for b in html_ids], dtype=object
        )
        np.savez(tmp / "batch_html.npz", batch_id=html_ids, html=html_docs)

        cb_ids = np.array(sorted(enriched.cluster_of_batch), dtype=np.int64)
        cb_clusters = np.array(
            [enriched.cluster_of_batch[int(b)] for b in cb_ids], dtype=np.int64
        )
        np.savez(
            tmp / "cluster_of_batch.npz", batch_id=cb_ids, cluster_id=cb_clusters
        )

        manifest = {
            "schema": _SCHEMA_VERSION,
            "key": key,
            "config": _jsonable(config),
            "column_orders": column_orders,
            "num_instances": released.instances.num_rows,
            "num_sampled_batches": released.num_sampled_batches,
            "num_clusters": enriched.num_clusters,
        }
        (tmp / "manifest.json").write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, final)
        _WRITES.inc()
        _BYTES_WRITTEN.inc(_entry_size_bytes(final))
        return final
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        return None
    finally:
        if tmp.exists() and tmp != final:
            shutil.rmtree(tmp, ignore_errors=True)


def load_study(
    config: "SimulationConfig",
) -> tuple["ReleasedDataset", "EnrichedDataset"] | None:
    """Load a cached entry for ``config``; ``None`` on miss or corruption."""
    with obs.span("cache.load") as sp:
        loaded = _load_study(config)
        if loaded is None:
            _MISSES.inc()
            sp.set("result", "miss")
        else:
            _HITS.inc()
            sp.set("result", "hit")
    return loaded


def _load_study(
    config: "SimulationConfig",
) -> tuple["ReleasedDataset", "EnrichedDataset"] | None:
    entry = cache_dir() / study_key(config)
    if not entry.is_dir():
        return None
    try:
        manifest = json.loads((entry / "manifest.json").read_text())
        if manifest.get("schema") != _SCHEMA_VERSION:
            return None
        orders = manifest["column_orders"]
        tables = {
            name: _load_table(entry / filename, orders[name])
            for name, filename in _TABLE_FILES.items()
        }
        with np.load(entry / "batch_html.npz", allow_pickle=True) as archive:
            batch_html = {
                int(b): str(doc)
                for b, doc in zip(archive["batch_id"], archive["html"])
            }
        with np.load(entry / "cluster_of_batch.npz") as archive:
            cluster_of_batch = {
                int(b): int(c)
                for b, c in zip(archive["batch_id"], archive["cluster_id"])
            }
    except (OSError, KeyError, ValueError, json.JSONDecodeError):
        return None
    _BYTES_READ.inc(_entry_size_bytes(entry))

    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset

    released = ReleasedDataset(
        batch_catalog=tables["batch_catalog"],
        batch_html=batch_html,
        instances=tables["instances"],
    )
    enriched = EnrichedDataset(
        cluster_of_batch=cluster_of_batch,
        batch_table=tables["batch_table"],
        cluster_table=tables["cluster_table"],
        labels=tables["labels"],
    )
    return released, enriched


def clear_cache() -> int:
    """Remove every cache entry; returns the number of entries removed."""
    root = cache_dir()
    if not root.is_dir():
        return 0
    removed = 0
    for entry in root.iterdir():
        if entry.is_dir():
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
    return removed


def list_entries() -> list[dict[str, Any]]:
    """Manifests of every readable cache entry (for ``repro cache``)."""
    root = cache_dir()
    if not root.is_dir():
        return []
    entries = []
    for entry in sorted(root.iterdir()):
        manifest_path = entry / "manifest.json"
        if not manifest_path.is_file():
            continue
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        manifest["path"] = str(entry)
        manifest["size_bytes"] = sum(
            f.stat().st_size for f in entry.iterdir() if f.is_file()
        )
        entries.append(manifest)
    return entries
