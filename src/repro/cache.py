"""Content-addressed on-disk cache for built studies.

``build_study`` is a pure function of ``(SimulationConfig, code)``: the
simulator, release lens, and enrichment pipeline are all deterministic in
the seed.  That makes the released + enriched layers safe to persist and
reuse across sessions — a warm ``build_study`` skips simulation and
enrichment entirely.

Keying
------
A cache entry's key is the SHA-256 of:

- a schema version (bumped when the on-disk layout changes),
- a *code fingerprint* — the hash of every ``.py`` file in the packages
  that determine the released/enriched bytes (simulator, dataset,
  enrichment, htmlgen, html, tables, taxonomy, stats, parallel) — so any
  code change invalidates automatically, and
- every field of the :class:`~repro.simulator.config.SimulationConfig`
  (including the full calibration), normalized to JSON.

Layout
------
One directory per key under the cache root (``REPRO_CACHE_DIR`` env var,
default ``~/.cache/repro-study``): tables as ``.npz`` (object columns
pickled inside the archive), the HTML corpus and batch→cluster map as npz
object/int arrays, plus a human-readable ``manifest.json``.  Entries are
written to a temp directory and atomically renamed, so concurrent builders
never observe a partial entry.

Failure handling
----------------
The manifest records a SHA-256 checksum per data file, verified before any
file is deserialized.  An entry that fails verification — or that raises
any deserialization error (truncated archive, corrupt pickled object
column) — is *quarantined*: renamed to a hidden ``.quarantine-*`` directory
(best effort), counted in ``cache.corrupt``, and reported as a plain miss,
so the next build rebuilds and re-writes the entry instead of crashing or
reusing damage.  A failed write warns (``RuntimeWarning``) and counts in
``cache.write_failed`` but never loses the in-memory study.  Cache listing
and clearing tolerate concurrent eviction (entries vanishing
mid-iteration) and skip in-progress ``.<key>-*`` temp directories.

Deterministic fault injection (:mod:`repro.faults`): ``cache.write:fail``
makes the entry write raise, ``cache.load:fail`` makes reading an existing
entry raise, and ``cache.load:corrupt`` truncates a data file on disk so
the checksum/quarantine defenses themselves are exercised.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import shutil
import stat as stat_module
import tempfile
import time
import warnings
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import faults, obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset
    from repro.simulator.config import SimulationConfig
    from repro.tables import Table

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the cache entirely (any non-empty value).
NO_CACHE_ENV = "REPRO_NO_CACHE"

_DEFAULT_CACHE_DIR = "~/.cache/repro-study"

#: Bump when the on-disk layout changes incompatibly.
#: v2: per-file SHA-256 checksums in the manifest, verified on load.
_SCHEMA_VERSION = 2

#: Packages/modules (relative to the ``repro`` package root) whose source
#: determines the cached bytes.  Figures/analysis/reporting run on top of
#: the cached layers and deliberately do not invalidate.
_CODE_SCOPE = (
    "simulator",
    "dataset",
    "enrichment",
    "htmlgen",
    "html",
    "tables",
    "taxonomy",
    "stats",
    "parallel.py",
)

#: Cache-traffic counters: a cold ``build_study`` is one miss + one write, a
#: warm rebuild is one hit, and ``REPRO_NO_CACHE`` records none of them.
_HITS = obs.counter("cache.hit")
_MISSES = obs.counter("cache.miss")
_WRITES = obs.counter("cache.write")
_BYTES_WRITTEN = obs.counter("cache.bytes_written")
_BYTES_READ = obs.counter("cache.bytes_read")
#: Entries that failed checksum verification or deserialization (each is
#: also a miss) and writes that could not be persisted.
_CORRUPT = obs.counter("cache.corrupt")
_WRITE_FAILED = obs.counter("cache.write_failed")
#: Entry read/write latency distributions (seconds).
_LOAD_SECONDS = obs.histogram("cache.load_seconds")
_STORE_SECONDS = obs.histogram("cache.store_seconds")

#: Exceptions a damaged on-disk entry can raise while being read: plain
#: I/O and JSON/shape errors, plus everything a truncated ``.npz`` throws
#: (bad zip structure, short reads, corrupt pickled object columns).
_ENTRY_READ_ERRORS = (
    OSError,
    KeyError,
    ValueError,  # includes json.JSONDecodeError
    EOFError,
    pickle.UnpicklingError,
    zipfile.BadZipFile,
    zlib.error,
)

_TABLE_FILES = {
    "batch_catalog": "released_batch_catalog.npz",
    "instances": "released_instances.npz",
    "batch_table": "enriched_batch_table.npz",
    "cluster_table": "enriched_cluster_table.npz",
    "labels": "enriched_labels.npz",
}


def cache_dir() -> Path:
    """The cache root (``REPRO_CACHE_DIR`` env var or ``~/.cache/repro-study``)."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip() or _DEFAULT_CACHE_DIR
    return Path(raw).expanduser()


def cache_enabled(explicit: bool | None = None) -> bool:
    """Resolve whether the cache should be used.

    ``explicit`` (from an API/CLI caller) wins; otherwise the cache is on
    unless ``REPRO_NO_CACHE`` is set to a non-empty value.
    """
    if explicit is not None:
        return explicit
    return not os.environ.get(NO_CACHE_ENV, "").strip()


_code_fingerprint_cache: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the source files that determine cached content."""
    global _code_fingerprint_cache
    if _code_fingerprint_cache is None:
        root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for entry in _CODE_SCOPE:
            path = root / entry
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                digest.update(str(file.relative_to(root)).encode())
                digest.update(file.read_bytes())
        _code_fingerprint_cache = digest.hexdigest()
    return _code_fingerprint_cache


def _jsonable(value: Any) -> Any:
    """Normalize config values (enums, tuples, nested dataclasses) to JSON."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(_jsonable(k)): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


def study_key(config: "SimulationConfig") -> str:
    """Content-addressed cache key for a simulation configuration."""
    payload = {
        "schema": _SCHEMA_VERSION,
        "code": code_fingerprint(),
        "config": _jsonable(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# Table / corpus serialization
# --------------------------------------------------------------------- #


def _save_table(table: "Table", path: Path) -> list[str]:
    np.savez(path, **{name: table[name] for name in table.column_names})
    return list(table.column_names)


def _load_table(path: Path, column_order: list[str]) -> "Table":
    from repro.tables import Table

    with np.load(path, allow_pickle=True) as archive:
        columns = {name: archive[name] for name in column_order}
    return Table(columns, copy=False)


def _entry_size_bytes(entry: Path) -> int:
    try:
        files = list(entry.iterdir())
    except OSError:
        return 0
    total = 0
    for f in files:
        try:
            st = f.stat()
        except OSError:
            continue  # deleted by a concurrent eviction mid-iteration
        if stat_module.S_ISREG(st.st_mode):
            total += st.st_size
    return total


def _sha256_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _quarantine_entry(entry: Path) -> None:
    """Move a damaged entry out of its key slot (best effort).

    The hidden ``.quarantine-*`` name keeps it around for forensics while
    making the key slot free for a rebuild; if the rename races or fails,
    fall back to deleting the entry outright.  Either way the next build
    sees a clean miss and re-writes the entry.
    """
    target = entry.parent / f".quarantine-{entry.name[:16]}"
    try:
        if target.exists():
            shutil.rmtree(target, ignore_errors=True)
        entry.rename(target)
    except OSError:
        shutil.rmtree(entry, ignore_errors=True)


def store_study(
    config: "SimulationConfig",
    released: "ReleasedDataset",
    enriched: "EnrichedDataset",
) -> Path | None:
    """Persist the released + enriched layers; returns the entry path.

    Best-effort: any I/O failure leaves the cache unchanged and returns
    ``None`` (the caller already has the in-memory study) — but visibly:
    a failed write raises a ``RuntimeWarning`` and counts in
    ``cache.write_failed`` so a cache that never warms is diagnosable.
    """
    with obs.span("cache.store") as sp:
        t0 = time.perf_counter()
        entry = _store_study(config, released, enriched)
        _STORE_SECONDS.observe(time.perf_counter() - t0)
        if entry is not None:
            sp.set("entry", entry.name[:16])
        else:
            sp.set("result", "write_failed")
            _WRITE_FAILED.inc()
            warnings.warn(
                "repro.cache: failed to persist the study entry "
                "(cache left unchanged; the in-memory study is unaffected)",
                RuntimeWarning,
                stacklevel=2,
            )
    return entry


def _store_study(
    config: "SimulationConfig",
    released: "ReleasedDataset",
    enriched: "EnrichedDataset",
) -> Path | None:
    key = study_key(config)
    root = cache_dir()
    final = root / key
    if final.exists():
        return final
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=f".{key[:16]}-", dir=root))
    except OSError:
        return None
    try:
        faults.check("cache.write")
        column_orders: dict[str, list[str]] = {}
        column_orders["batch_catalog"] = _save_table(
            released.batch_catalog, tmp / _TABLE_FILES["batch_catalog"]
        )
        column_orders["instances"] = _save_table(
            released.instances, tmp / _TABLE_FILES["instances"]
        )
        column_orders["batch_table"] = _save_table(
            enriched.batch_table, tmp / _TABLE_FILES["batch_table"]
        )
        column_orders["cluster_table"] = _save_table(
            enriched.cluster_table, tmp / _TABLE_FILES["cluster_table"]
        )
        column_orders["labels"] = _save_table(
            enriched.labels, tmp / _TABLE_FILES["labels"]
        )

        html_ids = np.array(sorted(released.batch_html), dtype=np.int64)
        html_docs = np.array(
            [released.batch_html[int(b)] for b in html_ids], dtype=object
        )
        np.savez(tmp / "batch_html.npz", batch_id=html_ids, html=html_docs)

        cb_ids = np.array(sorted(enriched.cluster_of_batch), dtype=np.int64)
        cb_clusters = np.array(
            [enriched.cluster_of_batch[int(b)] for b in cb_ids], dtype=np.int64
        )
        np.savez(
            tmp / "cluster_of_batch.npz", batch_id=cb_ids, cluster_id=cb_clusters
        )

        # Per-file content checksums, verified before any load deserializes
        # a byte — a flipped bit or truncated file is a quarantined miss,
        # never a crash or a silently wrong study.
        checksums = {
            f.name: _sha256_file(f) for f in sorted(tmp.iterdir())
        }
        manifest = {
            "schema": _SCHEMA_VERSION,
            "key": key,
            "config": _jsonable(config),
            "column_orders": column_orders,
            "checksums": checksums,
            "num_instances": released.instances.num_rows,
            "num_sampled_batches": released.num_sampled_batches,
            "num_clusters": enriched.num_clusters,
        }
        (tmp / "manifest.json").write_text(json.dumps(manifest, indent=2))
        os.replace(tmp, final)
        _WRITES.inc()
        _BYTES_WRITTEN.inc(_entry_size_bytes(final))
        return final
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        return None
    finally:
        if tmp.exists() and tmp != final:
            shutil.rmtree(tmp, ignore_errors=True)


def load_study(
    config: "SimulationConfig",
) -> tuple["ReleasedDataset", "EnrichedDataset"] | None:
    """Load a cached entry for ``config``; ``None`` on miss or corruption."""
    with obs.span("cache.load") as sp:
        t0 = time.perf_counter()
        loaded = _load_study(config)
        _LOAD_SECONDS.observe(time.perf_counter() - t0)
        if loaded is None:
            _MISSES.inc()
            sp.set("result", "miss")
        else:
            _HITS.inc()
            sp.set("result", "hit")
    return loaded


def _corrupt_entry(entry: Path) -> None:
    """Injected ``cache.load:corrupt``: truncate one data file on disk.

    Deliberately physical — the real checksum/deserialization defenses are
    the thing under test, not a simulated error path.
    """
    target = entry / _TABLE_FILES["labels"]
    if not target.is_file():
        candidates = sorted(entry.glob("*.npz"))
        if not candidates:
            return
        target = candidates[0]
    data = target.read_bytes()
    target.write_bytes(data[: len(data) // 2])


def _load_study(
    config: "SimulationConfig",
) -> tuple["ReleasedDataset", "EnrichedDataset"] | None:
    entry = cache_dir() / study_key(config)
    if not entry.is_dir():
        return None
    try:
        kind = faults.fire("cache.load")
        if kind == "corrupt":
            _corrupt_entry(entry)
        elif kind == "fail":
            raise faults.InjectedFault("injected fault: cache.load:fail")
        manifest = json.loads((entry / "manifest.json").read_text())
        if manifest.get("schema") != _SCHEMA_VERSION:
            # A different (older/newer) layout, not damage: plain miss, and
            # leave the entry alone for whichever code version owns it.
            return None
        for filename, expected in manifest["checksums"].items():
            if _sha256_file(entry / filename) != expected:
                raise ValueError(f"checksum mismatch in {filename}")
        orders = manifest["column_orders"]
        tables = {
            name: _load_table(entry / filename, orders[name])
            for name, filename in _TABLE_FILES.items()
        }
        with np.load(entry / "batch_html.npz", allow_pickle=True) as archive:
            batch_html = {
                int(b): str(doc)
                for b, doc in zip(archive["batch_id"], archive["html"])
            }
        with np.load(entry / "cluster_of_batch.npz") as archive:
            cluster_of_batch = {
                int(b): int(c)
                for b, c in zip(archive["batch_id"], archive["cluster_id"])
            }
    except _ENTRY_READ_ERRORS:
        # The entry exists but cannot be read back: quarantine it so the
        # next build re-writes a healthy one, and count the damage.
        _CORRUPT.inc()
        _quarantine_entry(entry)
        return None
    _BYTES_READ.inc(_entry_size_bytes(entry))

    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset

    released = ReleasedDataset(
        batch_catalog=tables["batch_catalog"],
        batch_html=batch_html,
        instances=tables["instances"],
    )
    enriched = EnrichedDataset(
        cluster_of_batch=cluster_of_batch,
        batch_table=tables["batch_table"],
        cluster_table=tables["cluster_table"],
        labels=tables["labels"],
    )
    return released, enriched


# --------------------------------------------------------------------- #
# Content-addressed response bodies (the service's disk cache tier)
# --------------------------------------------------------------------- #

#: Hidden subdirectory holding content-addressed HTTP response bodies for
#: :mod:`repro.service.respcache` (hidden so study-entry listing/clearing
#: skip it as they do every dot-directory).
_RESPONSES_DIR = ".responses"

_RESPONSE_WRITES = obs.counter("cache.response_writes")
_RESPONSE_HITS = obs.counter("cache.response_hits")
_RESPONSE_CORRUPT = obs.counter("cache.response_corrupt")


def response_cache_dir() -> Path:
    """Where content-addressed response bodies live."""
    return cache_dir() / _RESPONSES_DIR


def response_digest(body: bytes) -> str:
    """The content address (and HTTP ETag) of a response body."""
    return hashlib.sha256(body).hexdigest()


def store_response(body: bytes) -> str:
    """Persist a response body under its content address; returns the digest.

    Best-effort and atomic (temp file + rename), following the study-entry
    conventions: a failed write never raises, it just means the body is
    only available from memory.  With ``REPRO_NO_CACHE`` set nothing is
    written, but the digest — the ETag — is still computed and returned.
    """
    digest = response_digest(body)
    if not cache_enabled():
        return digest
    root = response_cache_dir()
    final = root / digest
    if final.exists():
        return digest
    try:
        root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=f".{digest[:16]}-", dir=root)
        with os.fdopen(fd, "wb") as handle:
            handle.write(body)
        os.replace(tmp, final)
        _RESPONSE_WRITES.inc()
        _BYTES_WRITTEN.inc(len(body))
    except OSError:
        _WRITE_FAILED.inc()
    return digest


def load_response(digest: str) -> bytes | None:
    """Read a body back by content address; ``None`` on miss or damage.

    The address *is* the checksum: a body whose sha-256 no longer matches
    its name (bit rot, truncated write that somehow landed) is deleted and
    reported as a miss, mirroring the quarantine discipline of study
    entries.
    """
    path = response_cache_dir() / digest
    try:
        body = path.read_bytes()
    except OSError:
        return None
    if response_digest(body) != digest:
        _RESPONSE_CORRUPT.inc()
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _RESPONSE_HITS.inc()
    _BYTES_READ.inc(len(body))
    return body


def clear_cache() -> int:
    """Remove every cache entry; returns the number of entries removed.

    Hidden ``.<key>-*`` temp directories (in-progress writes) and
    ``.quarantine-*`` corpses are swept too but *not* counted — they were
    never readable entries.
    """
    root = cache_dir()
    if not root.is_dir():
        return 0
    try:
        children = sorted(root.iterdir())
    except OSError:
        return 0
    removed = 0
    for entry in children:
        if not entry.is_dir():
            continue
        shutil.rmtree(entry, ignore_errors=True)
        if not entry.name.startswith("."):
            removed += 1
    return removed


def list_entries() -> list[dict[str, Any]]:
    """Manifests of every readable cache entry (for ``repro cache``).

    Robust against concurrent eviction: entries or files vanishing between
    listing and reading are skipped, never raised.  Hidden temp/quarantine
    directories are not entries and are skipped.
    """
    root = cache_dir()
    if not root.is_dir():
        return []
    try:
        children = sorted(root.iterdir())
    except OSError:
        return []
    entries = []
    for entry in children:
        if entry.name.startswith("."):
            continue
        manifest_path = entry / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        manifest["path"] = str(entry)
        manifest["size_bytes"] = _entry_size_bytes(entry)
        entries.append(manifest)
    return entries
