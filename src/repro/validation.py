"""Validate a study against the paper's published statistics.

Anyone who edits :class:`repro.simulator.config.Calibration` (to explore a
counterfactual marketplace, or to re-tune) needs to know whether the world
still *behaves like the paper's*.  :func:`validate_study` runs the full
checklist — one check per headline claim — and reports pass/fail with the
measured value, the paper's value, and the tolerance band used.

Bands are deliberately loose: they encode "same shape / same regime", not
numeric equality (the simulation is ~1/12 of the real data's volume).

Run at ``small`` scale or larger: the ``tiny`` preset has too few clusters
for the effect-direction checks to be reliable (they are median
comparisons over ~40 pruned clusters there).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import taskdesign as td
from repro.study import Study


@dataclass(frozen=True)
class ValidationCheck:
    """Outcome of one headline-claim check."""

    name: str
    paper_value: float
    measured: float
    low: float
    high: float

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.name:46s} paper={self.paper_value:<10.4g} "
            f"measured={self.measured:<10.4g} band=[{self.low:g}, {self.high:g}]"
        )


@dataclass(frozen=True)
class ValidationReport:
    """All checks plus an overall verdict."""

    checks: tuple[ValidationCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[ValidationCheck]:
        return [check for check in self.checks if not check.ok]

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        verdict = "ALL CHECKS PASS" if self.ok else (
            f"{len(self.failures)} CHECK(S) FAIL"
        )
        return "\n".join([*lines, verdict])


def _direction_checks(study: Study) -> list[ValidationCheck]:
    """Every Table 1–3 effect direction, encoded as a ratio check."""
    expected = {
        # (feature, metric): True when the high bin should be LOWER (better).
        ("num_words", "disagreement"): True,
        ("num_items", "disagreement"): True,
        ("num_text_boxes", "disagreement"): False,
        ("num_items", "task_time"): True,
        ("num_text_boxes", "task_time"): False,
        ("num_images", "task_time"): True,
        ("num_items", "pickup_time"): False,
        ("num_examples", "pickup_time"): True,
        ("num_images", "pickup_time"): True,
    }
    checks = []
    for (feature, metric), high_better in expected.items():
        clusters = td.analysis_clusters(study.enriched, metric=metric)
        try:
            comparison = td.bin_comparison(clusters, feature, metric)
        except ValueError:
            # Too few clusters on one side (e.g. a tiny sample with a single
            # example cluster): skip rather than fail.
            checks.append(
                ValidationCheck(
                    name=f"effect {feature}->{metric} (skipped: degenerate split)",
                    paper_value=1.0, measured=1.0, low=0.0, high=np.inf,
                )
            )
            continue
        ratio = comparison.median_high / max(comparison.median_low, 1e-12)
        if high_better:
            check = ValidationCheck(
                name=f"effect {feature}->{metric} (high bin better)",
                paper_value=0.7, measured=ratio, low=0.0, high=0.97,
            )
        else:
            check = ValidationCheck(
                name=f"effect {feature}->{metric} (low bin better)",
                paper_value=1.5, measured=ratio, low=1.03, high=np.inf,
            )
        checks.append(check)
    return checks


def validate_study(study: Study) -> ValidationReport:
    """Run the full headline checklist against a built study."""
    figures = study.figures
    checks: list[ValidationCheck] = []

    load = figures.headline_load_variation()
    # Upper bound is loose: at small scales a single mega-batch can create
    # an extreme spike day; the check exists to catch a *flat* marketplace.
    checks.append(ValidationCheck(
        "busiest day / median (30x)", 30.0,
        load["busiest_over_median"], 5.0, 1000.0,
    ))
    checks.append(ValidationCheck(
        "lightest day / median (0.0004x)", 0.0004,
        load["lightest_over_median"], 0.0, 0.08,
    ))

    weekday = figures.fig03_weekday()
    checks.append(ValidationCheck(
        "weekday/weekend load (up to 2x)", 2.0,
        weekday["weekday_weekend_ratio"], 1.25, 3.0,
    ))

    latency = figures.fig13_latency()
    checks.append(ValidationCheck(
        "pickup/task-time dominance (orders of magnitude)", 40.0,
        latency["pickup_dominance_ratio"], 5.0, 500.0,
    ))

    lifetimes = figures.fig30_lifetimes()
    checks.append(ValidationCheck(
        "one-day worker fraction (0.527)", 0.527,
        lifetimes["one_day_worker_fraction"], 0.35, 0.70,
    ))
    checks.append(ValidationCheck(
        "one-day workers' task share (0.024)", 0.024,
        lifetimes["one_day_task_share"], 0.002, 0.08,
    ))
    checks.append(ValidationCheck(
        "active (>10d) task share (0.83)", 0.83,
        lifetimes["active_task_share"], 0.70, 1.0,
    ))
    checks.append(ValidationCheck(
        "mean trust of active workers (>=0.91)", 0.91,
        lifetimes["mean_trust_active"], 0.84, 1.0,
    ))

    workload = figures.fig29_workload()
    checks.append(ValidationCheck(
        "top-10% worker task share (>0.8)", 0.80,
        workload["top10_task_share"], 0.70, 1.0,
    ))

    quality = figures.fig27_source_quality()
    checks.append(ValidationCheck(
        "top-10 source task share (0.95)", 0.95,
        quality["top10_task_share"], 0.70, 1.0,
    ))

    geo = figures.fig28_geography()
    checks.append(ValidationCheck(
        "top-5 country worker share (0.50)", 0.50,
        geo["top5_share"], 0.35, 0.75,
    ))

    checks.extend(_direction_checks(study))
    return ValidationReport(checks=tuple(checks))
