"""Batch clustering by HTML similarity (paper §3.3).

"We first clustered the batches in our dataset based on metadata from the
extracted HTML source ... and tuned the threshold of a match to ensure that
the tasks that on inspection look very similar ... are actually clustered
together."

Pipeline: token shingles → 64-permutation minhash signatures → LSH banding
to find candidate pairs → exact Jaccard verification at ``threshold`` →
union-find to form clusters.

Every stage is vectorized: ASCII documents are tokenized and CRC32-hashed in
one byte-level numpy pass over a whole corpus chunk (token spans come from a
character-class mask plus a tag-pairing scan over ``<``/``>`` positions only,
so no per-token Python strings are built; non-ASCII documents fall back to
the regex tokenizer), shingle hashes from a flat polynomial scan over every
document's windows at once, signatures from a single
``(num_perm × total_shingles)`` pass with ``minimum.reduceat`` per document,
and Jaccard verification from sorted-array intersection.  The scalar helpers
(:func:`shingles`, :func:`minhash_signature`, :func:`jaccard`) are exact
set-level equivalents kept as the public single-document API.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.parallel import map_chunks

#: Exact-Jaccard verifications performed / merges accepted by union-find.
_PAIRS_COMPARED = obs.counter("cluster.pairs_compared")
_PAIRS_MERGED = obs.counter("cluster.pairs_merged")
#: Documents pushed through the batched minhash signature kernel.
_MINHASH_DOCS = obs.counter("cluster.minhash_docs")
#: Documents shingled (fast byte-level path + regex fallback respectively).
_SHINGLE_DOCS = obs.counter("cluster.shingle_docs")
_SHINGLE_FALLBACK_DOCS = obs.counter("cluster.shingle_fallback_docs")

_TOKEN_RE = re.compile(r"<[^>]+>|[^\s<>]+")

#: Attribute noise that varies between batches of the same task (the sample
#: item token); stripped before shingling.
_UNIT_RE = re.compile(r'(data-unit="[^"]*"|unit-\d+(-\d+)?(\.\w+)?)')

_MERSENNE = np.uint64((1 << 61) - 1)


def _tokens(html: str) -> list[str]:
    cleaned = _UNIT_RE.sub("", html)
    return _TOKEN_RE.findall(cleaned)


#: Polynomial base for combining token hashes into shingle hashes.  Python's
#: builtin ``hash`` is process-salted and would make clustering vary across
#: runs; CRC32 token hashes keep the whole pipeline deterministic.
_POLY_BASE = 1_000_003

#: Shingle hashes live in [0, 2^61): the polynomial accumulator is reduced
#: mod 2^61 after every step.
_SHINGLE_MASK = np.uint64(0x1FFFFFFFFFFFFFFF)
_POLY_BASE_U64 = np.uint64(_POLY_BASE)
_MASK29 = np.uint64((1 << 29) - 1)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _shingle_hash(token_hashes: list[int]) -> int:
    """Scalar reference for the polynomial shingle hash (mod 2^61)."""
    acc = 0
    for h in token_hashes:
        acc = (acc * _POLY_BASE + h) & 0x1FFFFFFFFFFFFFFF  # mod 2^61
    return acc


def _make_crc32_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
        table[i] = c
    return table


_CRC32_TABLE = _make_crc32_table()


def _crc32_batch(tokens: Sequence[bytes]) -> np.ndarray:
    """``zlib.crc32`` of many byte strings in one table-driven numpy pass.

    The tokens are laid out in a flat byte array and the CRC state of every
    token advances one byte per iteration (iteration count = longest token),
    so the Python-level work is O(max token length), not O(total bytes).
    """
    n = len(tokens)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    lengths = np.fromiter((len(t) for t in tokens), dtype=np.int64, count=n)
    flat = np.frombuffer(b"".join(tokens), dtype=np.uint8)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return _crc32_spans(flat, offsets, lengths)


def _poly_step(acc: np.ndarray, h: np.ndarray) -> np.ndarray:
    """One exact ``acc * BASE + h (mod 2^61)`` step on uint64 arrays.

    ``acc * BASE`` can reach 2^81, past uint64; split ``acc`` into 32-bit
    halves so every intermediate stays below 2^62 and the modular result is
    bit-identical to unbounded-integer arithmetic.
    """
    hi = acc >> _SHIFT32
    lo = acc & _MASK32
    hi_term = ((hi * _POLY_BASE_U64) & _MASK29) << _SHIFT32
    return (hi_term + lo * _POLY_BASE_U64 + h) & _SHINGLE_MASK


#: Character-class tables for the byte-level ASCII tokenizer, derived from
#: the tokenizer regex's own character classes so the two paths can never
#: disagree on what counts as whitespace or a word character.
_WS_RE = re.compile(r"\s")
_WORD_LUT = np.array(
    [not _WS_RE.match(chr(i)) and chr(i) not in "<>" for i in range(128)],
    dtype=bool,
)
_LT_BYTE, _GT_BYTE = 0x3C, 0x3E  # "<", ">"


def _tag_spans(lts: np.ndarray, gts: np.ndarray) -> tuple[list[int], list[int]]:
    """Pair ``<`` positions with ``>`` positions the way the regex scan does.

    A ``<`` at ``p`` matches the first ``>`` after it at ``q`` iff
    ``q > p + 1`` (``<[^>]+>`` needs at least one inner character); the whole
    span is one token and any ``<`` inside it is swallowed.  ``<>`` consumes
    both characters without producing a token, and a ``<`` with no later
    ``>`` kills every remaining ``<``.  Only special-character positions are
    visited, so this loop is O(tags), not O(bytes).
    """
    starts: list[int] = []
    ends: list[int] = []
    li, gi, nl, ng = 0, 0, len(lts), len(gts)
    cursor = -1
    while li < nl:
        p = lts[li]
        if p < cursor:
            li += 1
            continue
        while gi < ng and gts[gi] <= p:
            gi += 1
        if gi == ng:
            break
        q = gts[gi]
        if q == p + 1:
            gi += 1
            li += 1
            cursor = q + 1
            continue
        starts.append(p)
        ends.append(q)
        cursor = q + 1
        li += 1
    return starts, ends


def _token_spans_ascii(
    flat: np.ndarray, doc_offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Regex-equivalent token spans of a flat ASCII byte buffer.

    ``doc_offsets`` holds ``n + 1`` document boundaries (documents are
    separated by one space so no run straddles them).  Returns token
    ``(starts, lengths, per-document counts)``.  Word runs come from one
    boolean-mask diff over the whole buffer; tag spans from
    :func:`_tag_spans`; word runs inside a tag span are replaced by the
    span's single token.
    """
    word = _WORD_LUT[flat]
    lt_pos = np.flatnonzero(flat == _LT_BYTE)
    gt_pos = np.flatnonzero(flat == _GT_BYTE)
    span_starts: list[int] = []
    span_ends: list[int] = []
    if len(lt_pos) and len(gt_pos):
        lt_doc = np.searchsorted(lt_pos, doc_offsets)
        gt_doc = np.searchsorted(gt_pos, doc_offsets)
        for d in range(len(doc_offsets) - 1):
            ls = lt_pos[lt_doc[d]:lt_doc[d + 1]]
            if not len(ls):
                continue
            gs = gt_pos[gt_doc[d]:gt_doc[d + 1]]
            if not len(gs):
                continue
            s, e = _tag_spans(ls, gs)
            span_starts.extend(s)
            span_ends.extend(e)
    run_bounds = np.flatnonzero(np.diff(np.r_[False, word, False]))
    run_starts = run_bounds[0::2]
    run_ends = run_bounds[1::2]
    if span_starts:
        sp_s = np.asarray(span_starts, dtype=np.int64)
        sp_e = np.asarray(span_ends, dtype=np.int64)
        # A word run never contains < or >, so it is either fully inside a
        # tag span or fully outside; inside runs are part of the tag token.
        idx = np.searchsorted(sp_s, run_starts, side="right") - 1
        inside = (idx >= 0) & (run_starts <= sp_e[np.maximum(idx, 0)])
        run_starts = run_starts[~inside]
        run_ends = run_ends[~inside]
        ins = np.searchsorted(run_starts, sp_s)
        tok_starts = np.insert(run_starts, ins, sp_s)
        tok_ends = np.insert(run_ends, ins, sp_e + 1)
    else:
        tok_starts = run_starts
        tok_ends = run_ends
    counts = np.diff(np.searchsorted(tok_starts, doc_offsets))
    return tok_starts, tok_ends - tok_starts, counts


def _crc32_spans(
    flat: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """CRC32 of many byte spans of ``flat``, one byte per iteration."""
    n = len(starts)
    crc = np.full(n, 0xFFFFFFFF, dtype=np.uint32)
    if n:
        for j in range(int(lengths.max())):
            active = lengths > j
            byte = flat[starts[active] + j].astype(np.uint32)
            state = crc[active]
            crc[active] = _CRC32_TABLE[(state ^ byte) & np.uint32(0xFF)] ^ (
                state >> np.uint32(8)
            )
    return (crc ^ np.uint32(0xFFFFFFFF)).astype(np.uint64)


def _doc_hashes(htmls: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """uint64 token-hash stream of every document: ``(h_flat, doc lengths)``.

    ASCII documents (after unit-noise stripping) are concatenated into one
    byte buffer and tokenized + CRC32-hashed in a single vectorized pass;
    non-ASCII documents fall back to the regex tokenizer per document.  The
    hash stream is identical either way — CRC32 of the UTF-8 token bytes.
    """
    n = len(htmls)
    # Both unit-noise alternatives contain the literal "unit"; the substring
    # probe skips the regex scan for the vast majority of documents.
    cleaned = [_UNIT_RE.sub("", h) if "unit" in h else h for h in htmls]
    ascii_mask = [h.isascii() for h in cleaned]
    fallback: dict[int, np.ndarray] = {}
    for i, ok in enumerate(ascii_mask):
        if not ok:
            toks = _TOKEN_RE.findall(cleaned[i])
            fallback[i] = _crc32_batch([t.encode() for t in toks])
    if fallback:
        _SHINGLE_FALLBACK_DOCS.inc(len(fallback))
    ascii_ids = [i for i in range(n) if ascii_mask[i]]
    lengths = np.zeros(n, dtype=np.int64)
    if ascii_ids:
        bufs = [cleaned[i].encode() for i in ascii_ids]
        sizes = np.fromiter(
            (len(b) for b in bufs), dtype=np.int64, count=len(bufs)
        )
        flat = np.frombuffer(b" ".join(bufs), dtype=np.uint8)
        doc_offsets = np.r_[0, np.cumsum(sizes + 1)]
        doc_offsets[-1] -= 1
        tok_starts, tok_lens, counts = _token_spans_ascii(flat, doc_offsets)
        crcs = _crc32_spans(flat, tok_starts, tok_lens)
        lengths[ascii_ids] = counts
    else:
        crcs = np.empty(0, dtype=np.uint64)
        counts = np.empty(0, dtype=np.int64)
    for i, fh in fallback.items():
        lengths[i] = len(fh)
    if not fallback:
        return crcs, lengths
    pieces: list[np.ndarray] = []
    bounds = np.r_[0, np.cumsum(counts)]
    ai = 0
    for i in range(n):
        if ascii_mask[i]:
            pieces.append(crcs[bounds[ai]:bounds[ai + 1]])
            ai += 1
        else:
            pieces.append(fallback[i])
    return np.concatenate(pieces), lengths


def shingle_arrays(htmls: Sequence[str], *, k: int = 4) -> list[np.ndarray]:
    """Sorted unique uint64 shingle hashes of many documents at once.

    Batched equivalent of calling :func:`_shingle_array` per document: the
    whole chunk is tokenized and hashed in one byte-level pass, every
    document's k-windows are combined in ``k - 1`` flat polynomial steps
    (documents grouped by window geometry), and deduplication is one
    row-wise sort per group instead of one ``np.unique`` per document.
    """
    htmls = list(htmls)
    n = len(htmls)
    out: list[np.ndarray | None] = [None] * n
    if not n:
        return out
    _SHINGLE_DOCS.inc(n)
    h_flat, lengths = _doc_hashes(htmls)
    nonempty = np.flatnonzero(lengths > 0)
    for i in np.flatnonzero(lengths == 0):
        out[i] = np.zeros(1, dtype=np.uint64)
    if not nonempty.size:
        return out
    all_offsets = np.r_[0, np.cumsum(lengths)[:-1]]
    offsets = all_offsets[nonempty]
    lens = lengths[nonempty]
    widths = np.minimum(lens, k)
    ms = lens - widths + 1
    # Group documents sharing (window width, window count): each group's
    # windows form a dense (docs × windows) grid.
    geometry = widths * (int(ms.max()) + 1) + ms
    for key in np.unique(geometry):
        sel = np.flatnonzero(geometry == key)
        w = int(widths[sel[0]])
        m = int(ms[sel[0]])
        nd = len(sel)
        starts = np.tile(np.arange(m, dtype=np.int64), nd) + np.repeat(
            offsets[sel], m
        )
        acc = h_flat[starts]
        for j in range(1, w):
            acc = _poly_step(acc, h_flat[starts + j])
        grid = np.sort(acc.reshape(nd, m), axis=1)
        gf = grid.ravel()
        keep = np.empty(nd * m, dtype=bool)
        keep[1:] = gf[1:] != gf[:-1]
        keep[0::m] = True
        cnt = np.add.reduceat(keep, np.arange(0, nd * m, m))
        kv = gf[keep]
        hi = np.cumsum(cnt)
        lo = 0
        for di, bound in zip(sel, hi):
            out[int(nonempty[di])] = kv[lo:int(bound)]
            lo = int(bound)
    return out


def _shingle_array(html: str, *, k: int = 4) -> np.ndarray:
    """Sorted unique uint64 shingle hashes of one HTML token stream.

    Single-document view of :func:`shingle_arrays` (kept as the scalar
    kernel behind :func:`shingles` and the benchmarks).
    """
    return shingle_arrays([html], k=k)[0]


def shingles(html: str, *, k: int = 4) -> set[int]:
    """Stably hashed k-token shingles of the HTML token stream."""
    return set(map(int, _shingle_array(html, k=k)))


def jaccard(a: set[int], b: set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def _intersection_size(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| for sorted unique arrays, via binary search (no re-sort)."""
    if a.size > b.size:
        a, b = b, a
    idx = np.searchsorted(b, a)
    valid = idx < b.size
    return int(np.count_nonzero(b[idx[valid]] == a[valid]))


def _jaccard_sorted(a: np.ndarray, b: np.ndarray) -> float:
    """Exact Jaccard similarity of two sorted unique shingle arrays."""
    if a.size == 0 and b.size == 0:
        return 1.0
    inter = _intersection_size(a, b)
    union = int(a.size) + int(b.size) - inter
    return 1.0 if union == 0 else inter / union


_SHIFT61 = np.uint64(61)


def _mod_mersenne(x: np.ndarray) -> np.ndarray:
    """``x % (2^61 - 1)`` without integer division (in place).

    Because ``2^61 ≡ 1 (mod M)``, folding the top 3 bits onto the low 61
    is congruent; one fold leaves a value below ``M + 8``, so a single
    conditional subtract finishes the reduction.  Bit-identical to ``%``
    and ~5x faster (shifts and adds instead of 64-bit division).
    """
    high = x >> _SHIFT61
    x &= _MERSENNE
    x += high
    np.subtract(x, _MERSENNE, out=x, where=x >= _MERSENNE)
    return x


def _permutation_params(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.integers(1, int(_MERSENNE), size=num_perm, dtype=np.uint64)
    b = rng.integers(0, int(_MERSENNE), size=num_perm, dtype=np.uint64)
    return a, b


def minhash_signature(
    shingle_set: Iterable[int], *, num_perm: int = 64, seed: int = 1234
) -> np.ndarray:
    """Minhash signature (length ``num_perm``) of a shingle set."""
    if isinstance(shingle_set, np.ndarray):
        values = shingle_set.astype(np.uint64, copy=False)
    else:
        values = np.fromiter(
            ((s & 0xFFFFFFFFFFFFFFFF) for s in shingle_set), dtype=np.uint64
        )
    if values.size == 0:
        return np.full(num_perm, np.iinfo(np.uint64).max, dtype=np.uint64)
    a, b = _permutation_params(num_perm, seed)
    # (a * x + b) mod p for each permutation; rows = permutations.
    with np.errstate(over="ignore"):
        hashed = _mod_mersenne(values[None, :] * a[:, None] + b[:, None])
    return hashed.min(axis=1)


#: Tile sizes for the batched signature pass.  The hash/fold/reduce sweeps
#: are memory-bound on the scratch matrix, so it is tiled to stay
#: cache-resident: chunks of ~2^13 shingles (document-aligned) by blocks of
#: 8 permutations — a 512 KB uint64 scratch per tile.
_CHUNK_SHINGLES = 1 << 13
_PERM_BLOCK = 8


def minhash_signatures(
    shingle_arrays: Sequence[np.ndarray], *, num_perm: int = 64, seed: int = 1234
) -> np.ndarray:
    """Minhash signatures of many shingle arrays in one batched pass.

    Returns a ``(len(shingle_arrays), num_perm)`` uint64 matrix; row ``i``
    equals ``minhash_signature(shingle_arrays[i])`` exactly.  All documents
    share one flat value array; per-permutation hashes are reduced per
    document with ``minimum.reduceat``, blocked over permutations to bound
    peak memory.
    """
    num_docs = len(shingle_arrays)
    _MINHASH_DOCS.inc(num_docs)
    out = np.full((num_docs, num_perm), np.iinfo(np.uint64).max, dtype=np.uint64)
    if num_docs == 0:
        return out
    lengths = np.fromiter(
        (len(s) for s in shingle_arrays), dtype=np.int64, count=num_docs
    )
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size == 0:
        return out
    flat = np.concatenate(
        [np.asarray(shingle_arrays[i], dtype=np.uint64) for i in nonempty]
    )
    counts = lengths[nonempty]
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    a, b = _permutation_params(num_perm, seed)
    mins = np.empty((nonempty.size, num_perm), dtype=np.uint64)

    # Document-aligned shingle chunks of roughly _CHUNK_SHINGLES each (one
    # oversized document becomes its own chunk).
    chunk_bounds = [0]
    acc = 0
    for i, c in enumerate(counts):
        acc += int(c)
        if acc >= _CHUNK_SHINGLES:
            chunk_bounds.append(i + 1)
            acc = 0
    if chunk_bounds[-1] != len(counts):
        chunk_bounds.append(len(counts))

    ends = offsets + counts
    max_chunk = max(
        int(ends[hi - 1] - offsets[lo])
        for lo, hi in zip(chunk_bounds[:-1], chunk_bounds[1:])
    )
    scratch = np.empty((min(_PERM_BLOCK, num_perm), max_chunk), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for lo, hi in zip(chunk_bounds[:-1], chunk_bounds[1:]):
            f0, f1 = int(offsets[lo]), int(ends[hi - 1])
            sub = flat[None, f0:f1]
            sub_offsets = offsets[lo:hi] - f0
            for p0 in range(0, num_perm, _PERM_BLOCK):
                p1 = min(num_perm, p0 + _PERM_BLOCK)
                hashed = scratch[: p1 - p0, : f1 - f0]
                np.multiply(sub, a[p0:p1, None], out=hashed)
                hashed += b[p0:p1, None]
                _mod_mersenne(hashed)
                mins[lo:hi, p0:p1] = np.minimum.reduceat(
                    hashed, sub_offsets, axis=1
                ).T
    out[nonempty] = mins
    return out


class _UnionFind:
    """Union-find with union-by-size and two-pass path compression."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]


def _validate_lsh_params(threshold: float, num_perm: int, bands: int) -> None:
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if num_perm % bands != 0:
        raise ValueError(f"bands ({bands}) must divide num_perm ({num_perm})")


#: Documents per :func:`shingle_arrays` call in :func:`shingle_corpus`:
#: large enough to amortize the batched kernel's setup, small enough to
#: fan out across workers.
_SHINGLE_DOC_CHUNK = 64


def _shingle_chunk(htmls: Sequence[str]) -> list[np.ndarray]:
    return shingle_arrays(htmls)


def shingle_corpus(
    html_by_batch: Mapping[int, str]
) -> tuple[list[int], list[np.ndarray]]:
    """Shingle every document, returning ``(sorted batch ids, arrays)``.

    The shingle phase is embarrassingly parallel per document chunk, which
    makes it the piece a shard can precompute locally;
    :func:`cluster_shingled` then runs over the union.  Fans out over
    ``REPRO_WORKERS`` processes (serial by default); the result is invariant
    to the worker count and the chunk size.
    """
    batch_ids = sorted(html_by_batch)
    docs = [html_by_batch[b] for b in batch_ids]
    chunks = [
        docs[i:i + _SHINGLE_DOC_CHUNK]
        for i in range(0, len(docs), _SHINGLE_DOC_CHUNK)
    ]
    with obs.span("cluster.shingle", docs=len(batch_ids)):
        per_chunk = map_chunks(_shingle_chunk, chunks, min_items=2)
        all_arrays = [array for chunk in per_chunk for array in chunk]
    return batch_ids, all_arrays


def cluster_batches(
    html_by_batch: Mapping[int, str],
    *,
    threshold: float = 0.60,
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 1234,
) -> dict[int, int]:
    """Cluster batches by HTML similarity.

    Returns ``batch_id -> cluster_id`` with cluster ids dense from 0,
    numbered by order of first appearance.  ``threshold`` is the exact
    Jaccard similarity required to merge a verified candidate pair.

    Shingling fans out over ``REPRO_WORKERS`` processes (serial by default);
    signatures, candidate generation, and verification are batched numpy.
    The result is invariant to the worker count.
    """
    _validate_lsh_params(threshold, num_perm, bands)
    batch_ids, all_arrays = shingle_corpus(html_by_batch)
    return cluster_shingled(
        batch_ids,
        all_arrays,
        threshold=threshold,
        num_perm=num_perm,
        bands=bands,
        seed=seed,
    )


def cluster_shingled(
    batch_ids: Sequence[int],
    all_arrays: Sequence[np.ndarray],
    *,
    threshold: float = 0.60,
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 1234,
) -> dict[int, int]:
    """Cluster pre-shingled documents (``batch_ids`` aligned with arrays).

    This is the clustering back half of :func:`cluster_batches`; callers
    must pass batch ids in sorted order for the cluster numbering (dense,
    by first appearance) to match it.  The sharded pipeline shingles per
    shard, then runs this single global pass over the union — identical
    inputs in identical order, therefore an identical partition.
    """
    _validate_lsh_params(threshold, num_perm, bands)

    # Batches of one task often have byte-identical templates; dedupe exact
    # shingle sets so minhash/LSH only runs on distinct interfaces.
    rep_of_key: dict[bytes, int] = {}
    rep_index = np.empty(len(batch_ids), dtype=np.int64)
    rep_arrays: list[np.ndarray] = []
    for i, arr in enumerate(all_arrays):
        key = arr.tobytes()
        code = rep_of_key.get(key)
        if code is None:
            code = len(rep_of_key)
            rep_of_key[key] = code
            rep_arrays.append(arr)
        rep_index[i] = code

    with obs.span("cluster.minhash", docs=len(rep_arrays)):
        signatures = minhash_signatures(rep_arrays, num_perm=num_perm, seed=seed)

    # LSH banding: any two documents agreeing on a full band are candidates.
    # Each bucket contributes (anchor, member) pairs; verifying the deduped
    # pair set in any order yields the same partition because unions of
    # already-connected components are no-ops.
    rows = num_perm // bands
    candidates: set[tuple[int, int]] = set()
    with obs.span("cluster.lsh", bands=bands):
        for band in range(bands):
            lo, hi = band * rows, (band + 1) * rows
            buckets: dict[bytes, int] = {}
            for i in range(len(rep_arrays)):
                anchor = buckets.setdefault(signatures[i, lo:hi].tobytes(), i)
                if anchor != i:
                    candidates.add((anchor, i))

    uf = _UnionFind(len(rep_arrays))
    with obs.span("cluster.verify", candidates=len(candidates)) as verify_span:
        compared = merged = 0
        for anchor, other in sorted(candidates):
            if uf.find(anchor) == uf.find(other):
                continue
            compared += 1
            if _jaccard_sorted(rep_arrays[anchor], rep_arrays[other]) >= threshold:
                uf.union(anchor, other)
                merged += 1
        _PAIRS_COMPARED.inc(compared)
        _PAIRS_MERGED.inc(merged)
        verify_span.set("compared", compared)
        verify_span.set("merged", merged)

    cluster_of_root: dict[int, int] = {}
    result: dict[int, int] = {}
    for i, batch_id in enumerate(batch_ids):
        root = uf.find(int(rep_index[i]))
        if root not in cluster_of_root:
            cluster_of_root[root] = len(cluster_of_root)
        result[batch_id] = cluster_of_root[root]
    return result
