"""Batch clustering by HTML similarity (paper §3.3).

"We first clustered the batches in our dataset based on metadata from the
extracted HTML source ... and tuned the threshold of a match to ensure that
the tasks that on inspection look very similar ... are actually clustered
together."

Pipeline: token shingles → 64-permutation minhash signatures → LSH banding
to find candidate pairs → exact Jaccard verification at ``threshold`` →
union-find to form clusters.

Every stage is vectorized: token hashes come from a table-driven CRC32
computed for all distinct tokens of a document at once, shingle hashes from
a numpy polynomial scan over the token-hash array, signatures from a single
``(num_perm × total_shingles)`` pass with ``minimum.reduceat`` per document,
and Jaccard verification from sorted-array intersection.  The scalar helpers
(:func:`shingles`, :func:`minhash_signature`, :func:`jaccard`) are exact
set-level equivalents kept as the public single-document API.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.parallel import map_chunks

#: Exact-Jaccard verifications performed / merges accepted by union-find.
_PAIRS_COMPARED = obs.counter("cluster.pairs_compared")
_PAIRS_MERGED = obs.counter("cluster.pairs_merged")
#: Documents pushed through the batched minhash signature kernel.
_MINHASH_DOCS = obs.counter("cluster.minhash_docs")

_TOKEN_RE = re.compile(r"<[^>]+>|[^\s<>]+")

#: Attribute noise that varies between batches of the same task (the sample
#: item token); stripped before shingling.
_UNIT_RE = re.compile(r'(data-unit="[^"]*"|unit-\d+(-\d+)?(\.\w+)?)')

_MERSENNE = np.uint64((1 << 61) - 1)


def _tokens(html: str) -> list[str]:
    cleaned = _UNIT_RE.sub("", html)
    return _TOKEN_RE.findall(cleaned)


#: Polynomial base for combining token hashes into shingle hashes.  Python's
#: builtin ``hash`` is process-salted and would make clustering vary across
#: runs; CRC32 token hashes keep the whole pipeline deterministic.
_POLY_BASE = 1_000_003

#: Shingle hashes live in [0, 2^61): the polynomial accumulator is reduced
#: mod 2^61 after every step.
_SHINGLE_MASK = np.uint64(0x1FFFFFFFFFFFFFFF)
_POLY_BASE_U64 = np.uint64(_POLY_BASE)
_MASK29 = np.uint64((1 << 29) - 1)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def _shingle_hash(token_hashes: list[int]) -> int:
    """Scalar reference for the polynomial shingle hash (mod 2^61)."""
    acc = 0
    for h in token_hashes:
        acc = (acc * _POLY_BASE + h) & 0x1FFFFFFFFFFFFFFF  # mod 2^61
    return acc


def _make_crc32_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ 0xEDB88320 if c & 1 else c >> 1
        table[i] = c
    return table


_CRC32_TABLE = _make_crc32_table()


def _crc32_batch(tokens: Sequence[bytes]) -> np.ndarray:
    """``zlib.crc32`` of many byte strings in one table-driven numpy pass.

    The tokens are laid out in a flat byte array and the CRC state of every
    token advances one byte per iteration (iteration count = longest token),
    so the Python-level work is O(max token length), not O(total bytes).
    """
    n = len(tokens)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    lengths = np.fromiter((len(t) for t in tokens), dtype=np.int64, count=n)
    flat = np.frombuffer(b"".join(tokens), dtype=np.uint8)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    crc = np.full(n, 0xFFFFFFFF, dtype=np.uint32)
    for j in range(int(lengths.max())):
        active = lengths > j
        byte = flat[offsets[active] + j].astype(np.uint32)
        state = crc[active]
        crc[active] = _CRC32_TABLE[(state ^ byte) & np.uint32(0xFF)] ^ (
            state >> np.uint32(8)
        )
    return (crc ^ np.uint32(0xFFFFFFFF)).astype(np.uint64)


def _poly_step(acc: np.ndarray, h: np.ndarray) -> np.ndarray:
    """One exact ``acc * BASE + h (mod 2^61)`` step on uint64 arrays.

    ``acc * BASE`` can reach 2^81, past uint64; split ``acc`` into 32-bit
    halves so every intermediate stays below 2^62 and the modular result is
    bit-identical to unbounded-integer arithmetic.
    """
    hi = acc >> _SHIFT32
    lo = acc & _MASK32
    hi_term = ((hi * _POLY_BASE_U64) & _MASK29) << _SHIFT32
    return (hi_term + lo * _POLY_BASE_U64 + h) & _SHINGLE_MASK


#: Cross-document CRC32 memo: HTML corpora reuse a small tag/word
#: vocabulary, so most distinct tokens of a document were already hashed
#: while processing earlier documents.  Per-process (workers each grow
#: their own copy) and value-deterministic, so results never depend on it.
_CRC_MEMO: dict[bytes, int] = {}
_CRC_MEMO_MAX = 1 << 20


def _shingle_array(html: str, *, k: int = 4) -> np.ndarray:
    """Sorted unique uint64 shingle hashes of the HTML token stream.

    Array-level equivalent of :func:`shingles`: tokens are hashed once per
    *distinct* token (memoized, batched CRC32), then all k-windows are
    combined in ``k - 1`` vectorized polynomial steps.
    """
    token_bytes = [t.encode() for t in _tokens(html)]
    vocab: dict[bytes, int] = {}
    # setdefault evaluates len(vocab) eagerly but discards it on hits, so
    # codes stay dense in first-appearance order.
    id_list = [vocab.setdefault(tb, len(vocab)) for tb in token_bytes]
    if not vocab:
        return np.zeros(1, dtype=np.uint64)
    ids = np.array(id_list, dtype=np.int64)

    memo = _CRC_MEMO
    crcs = np.empty(len(vocab), dtype=np.uint64)
    misses: list[bytes] = []
    miss_idx: list[int] = []
    for i, tb in enumerate(vocab):
        value = memo.get(tb)
        if value is None:
            misses.append(tb)
            miss_idx.append(i)
        else:
            crcs[i] = value
    if misses:
        miss_crcs = _crc32_batch(misses)
        crcs[miss_idx] = miss_crcs
        if len(memo) < _CRC_MEMO_MAX:
            for tb, value in zip(misses, miss_crcs.tolist()):
                memo[tb] = value
    h = crcs[ids]
    width = min(k, len(h))
    m = len(h) - width + 1
    acc = h[:m].copy()
    for j in range(1, width):
        acc = _poly_step(acc, h[j:j + m])
    return np.unique(acc)


def shingles(html: str, *, k: int = 4) -> set[int]:
    """Stably hashed k-token shingles of the HTML token stream."""
    return set(map(int, _shingle_array(html, k=k)))


def jaccard(a: set[int], b: set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def _intersection_size(a: np.ndarray, b: np.ndarray) -> int:
    """|a ∩ b| for sorted unique arrays, via binary search (no re-sort)."""
    if a.size > b.size:
        a, b = b, a
    idx = np.searchsorted(b, a)
    valid = idx < b.size
    return int(np.count_nonzero(b[idx[valid]] == a[valid]))


def _jaccard_sorted(a: np.ndarray, b: np.ndarray) -> float:
    """Exact Jaccard similarity of two sorted unique shingle arrays."""
    if a.size == 0 and b.size == 0:
        return 1.0
    inter = _intersection_size(a, b)
    union = int(a.size) + int(b.size) - inter
    return 1.0 if union == 0 else inter / union


_SHIFT61 = np.uint64(61)


def _mod_mersenne(x: np.ndarray) -> np.ndarray:
    """``x % (2^61 - 1)`` without integer division (in place).

    Because ``2^61 ≡ 1 (mod M)``, folding the top 3 bits onto the low 61
    is congruent; one fold leaves a value below ``M + 8``, so a single
    conditional subtract finishes the reduction.  Bit-identical to ``%``
    and ~5x faster (shifts and adds instead of 64-bit division).
    """
    high = x >> _SHIFT61
    x &= _MERSENNE
    x += high
    np.subtract(x, _MERSENNE, out=x, where=x >= _MERSENNE)
    return x


def _permutation_params(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.integers(1, int(_MERSENNE), size=num_perm, dtype=np.uint64)
    b = rng.integers(0, int(_MERSENNE), size=num_perm, dtype=np.uint64)
    return a, b


def minhash_signature(
    shingle_set: Iterable[int], *, num_perm: int = 64, seed: int = 1234
) -> np.ndarray:
    """Minhash signature (length ``num_perm``) of a shingle set."""
    if isinstance(shingle_set, np.ndarray):
        values = shingle_set.astype(np.uint64, copy=False)
    else:
        values = np.fromiter(
            ((s & 0xFFFFFFFFFFFFFFFF) for s in shingle_set), dtype=np.uint64
        )
    if values.size == 0:
        return np.full(num_perm, np.iinfo(np.uint64).max, dtype=np.uint64)
    a, b = _permutation_params(num_perm, seed)
    # (a * x + b) mod p for each permutation; rows = permutations.
    with np.errstate(over="ignore"):
        hashed = _mod_mersenne(values[None, :] * a[:, None] + b[:, None])
    return hashed.min(axis=1)


#: Tile sizes for the batched signature pass.  The hash/fold/reduce sweeps
#: are memory-bound on the scratch matrix, so it is tiled to stay
#: cache-resident: chunks of ~2^13 shingles (document-aligned) by blocks of
#: 8 permutations — a 512 KB uint64 scratch per tile.
_CHUNK_SHINGLES = 1 << 13
_PERM_BLOCK = 8


def minhash_signatures(
    shingle_arrays: Sequence[np.ndarray], *, num_perm: int = 64, seed: int = 1234
) -> np.ndarray:
    """Minhash signatures of many shingle arrays in one batched pass.

    Returns a ``(len(shingle_arrays), num_perm)`` uint64 matrix; row ``i``
    equals ``minhash_signature(shingle_arrays[i])`` exactly.  All documents
    share one flat value array; per-permutation hashes are reduced per
    document with ``minimum.reduceat``, blocked over permutations to bound
    peak memory.
    """
    num_docs = len(shingle_arrays)
    _MINHASH_DOCS.inc(num_docs)
    out = np.full((num_docs, num_perm), np.iinfo(np.uint64).max, dtype=np.uint64)
    if num_docs == 0:
        return out
    lengths = np.fromiter(
        (len(s) for s in shingle_arrays), dtype=np.int64, count=num_docs
    )
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size == 0:
        return out
    flat = np.concatenate(
        [np.asarray(shingle_arrays[i], dtype=np.uint64) for i in nonempty]
    )
    counts = lengths[nonempty]
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    a, b = _permutation_params(num_perm, seed)
    mins = np.empty((nonempty.size, num_perm), dtype=np.uint64)

    # Document-aligned shingle chunks of roughly _CHUNK_SHINGLES each (one
    # oversized document becomes its own chunk).
    chunk_bounds = [0]
    acc = 0
    for i, c in enumerate(counts):
        acc += int(c)
        if acc >= _CHUNK_SHINGLES:
            chunk_bounds.append(i + 1)
            acc = 0
    if chunk_bounds[-1] != len(counts):
        chunk_bounds.append(len(counts))

    ends = offsets + counts
    max_chunk = max(
        int(ends[hi - 1] - offsets[lo])
        for lo, hi in zip(chunk_bounds[:-1], chunk_bounds[1:])
    )
    scratch = np.empty((min(_PERM_BLOCK, num_perm), max_chunk), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for lo, hi in zip(chunk_bounds[:-1], chunk_bounds[1:]):
            f0, f1 = int(offsets[lo]), int(ends[hi - 1])
            sub = flat[None, f0:f1]
            sub_offsets = offsets[lo:hi] - f0
            for p0 in range(0, num_perm, _PERM_BLOCK):
                p1 = min(num_perm, p0 + _PERM_BLOCK)
                hashed = scratch[: p1 - p0, : f1 - f0]
                np.multiply(sub, a[p0:p1, None], out=hashed)
                hashed += b[p0:p1, None]
                _mod_mersenne(hashed)
                mins[lo:hi, p0:p1] = np.minimum.reduceat(
                    hashed, sub_offsets, axis=1
                ).T
    out[nonempty] = mins
    return out


class _UnionFind:
    """Union-find with union-by-size and two-pass path compression."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]


def _validate_lsh_params(threshold: float, num_perm: int, bands: int) -> None:
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if num_perm % bands != 0:
        raise ValueError(f"bands ({bands}) must divide num_perm ({num_perm})")


def shingle_corpus(
    html_by_batch: Mapping[int, str]
) -> tuple[list[int], list[np.ndarray]]:
    """Shingle every document, returning ``(sorted batch ids, arrays)``.

    The shingle phase is embarrassingly parallel per document, which makes
    it the piece a shard can precompute locally; :func:`cluster_shingled`
    then runs over the union.  Fans out over ``REPRO_WORKERS`` processes
    (serial by default); the result is invariant to the worker count.
    """
    batch_ids = sorted(html_by_batch)
    with obs.span("cluster.shingle", docs=len(batch_ids)):
        all_arrays = map_chunks(
            _shingle_array, [html_by_batch[b] for b in batch_ids]
        )
    return batch_ids, all_arrays


def cluster_batches(
    html_by_batch: Mapping[int, str],
    *,
    threshold: float = 0.60,
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 1234,
) -> dict[int, int]:
    """Cluster batches by HTML similarity.

    Returns ``batch_id -> cluster_id`` with cluster ids dense from 0,
    numbered by order of first appearance.  ``threshold`` is the exact
    Jaccard similarity required to merge a verified candidate pair.

    Shingling fans out over ``REPRO_WORKERS`` processes (serial by default);
    signatures, candidate generation, and verification are batched numpy.
    The result is invariant to the worker count.
    """
    _validate_lsh_params(threshold, num_perm, bands)
    batch_ids, all_arrays = shingle_corpus(html_by_batch)
    return cluster_shingled(
        batch_ids,
        all_arrays,
        threshold=threshold,
        num_perm=num_perm,
        bands=bands,
        seed=seed,
    )


def cluster_shingled(
    batch_ids: Sequence[int],
    all_arrays: Sequence[np.ndarray],
    *,
    threshold: float = 0.60,
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 1234,
) -> dict[int, int]:
    """Cluster pre-shingled documents (``batch_ids`` aligned with arrays).

    This is the clustering back half of :func:`cluster_batches`; callers
    must pass batch ids in sorted order for the cluster numbering (dense,
    by first appearance) to match it.  The sharded pipeline shingles per
    shard, then runs this single global pass over the union — identical
    inputs in identical order, therefore an identical partition.
    """
    _validate_lsh_params(threshold, num_perm, bands)

    # Batches of one task often have byte-identical templates; dedupe exact
    # shingle sets so minhash/LSH only runs on distinct interfaces.
    rep_of_key: dict[bytes, int] = {}
    rep_index = np.empty(len(batch_ids), dtype=np.int64)
    rep_arrays: list[np.ndarray] = []
    for i, arr in enumerate(all_arrays):
        key = arr.tobytes()
        code = rep_of_key.get(key)
        if code is None:
            code = len(rep_of_key)
            rep_of_key[key] = code
            rep_arrays.append(arr)
        rep_index[i] = code

    with obs.span("cluster.minhash", docs=len(rep_arrays)):
        signatures = minhash_signatures(rep_arrays, num_perm=num_perm, seed=seed)

    # LSH banding: any two documents agreeing on a full band are candidates.
    # Each bucket contributes (anchor, member) pairs; verifying the deduped
    # pair set in any order yields the same partition because unions of
    # already-connected components are no-ops.
    rows = num_perm // bands
    candidates: set[tuple[int, int]] = set()
    with obs.span("cluster.lsh", bands=bands):
        for band in range(bands):
            lo, hi = band * rows, (band + 1) * rows
            buckets: dict[bytes, int] = {}
            for i in range(len(rep_arrays)):
                anchor = buckets.setdefault(signatures[i, lo:hi].tobytes(), i)
                if anchor != i:
                    candidates.add((anchor, i))

    uf = _UnionFind(len(rep_arrays))
    with obs.span("cluster.verify", candidates=len(candidates)) as verify_span:
        compared = merged = 0
        for anchor, other in sorted(candidates):
            if uf.find(anchor) == uf.find(other):
                continue
            compared += 1
            if _jaccard_sorted(rep_arrays[anchor], rep_arrays[other]) >= threshold:
                uf.union(anchor, other)
                merged += 1
        _PAIRS_COMPARED.inc(compared)
        _PAIRS_MERGED.inc(merged)
        verify_span.set("compared", compared)
        verify_span.set("merged", merged)

    cluster_of_root: dict[int, int] = {}
    result: dict[int, int] = {}
    for i, batch_id in enumerate(batch_ids):
        root = uf.find(int(rep_index[i]))
        if root not in cluster_of_root:
            cluster_of_root[root] = len(cluster_of_root)
        result[batch_id] = cluster_of_root[root]
    return result
