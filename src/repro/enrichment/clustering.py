"""Batch clustering by HTML similarity (paper §3.3).

"We first clustered the batches in our dataset based on metadata from the
extracted HTML source ... and tuned the threshold of a match to ensure that
the tasks that on inspection look very similar ... are actually clustered
together."

Pipeline: token shingles → 64-permutation minhash signatures → LSH banding
to find candidate pairs → exact Jaccard verification at ``threshold`` →
union-find to form clusters.
"""

from __future__ import annotations

import re
import zlib
from typing import Iterable, Mapping

import numpy as np

_TOKEN_RE = re.compile(r"<[^>]+>|[^\s<>]+")

#: Attribute noise that varies between batches of the same task (the sample
#: item token); stripped before shingling.
_UNIT_RE = re.compile(r'(data-unit="[^"]*"|unit-\d+(-\d+)?(\.\w+)?)')

_MERSENNE = np.uint64((1 << 61) - 1)


def _tokens(html: str) -> list[str]:
    cleaned = _UNIT_RE.sub("", html)
    return _TOKEN_RE.findall(cleaned)


#: Polynomial base for combining token hashes into shingle hashes.  Python's
#: builtin ``hash`` is process-salted and would make clustering vary across
#: runs; CRC32 token hashes keep the whole pipeline deterministic.
_POLY_BASE = 1_000_003


def _shingle_hash(token_hashes: list[int]) -> int:
    acc = 0
    for h in token_hashes:
        acc = (acc * _POLY_BASE + h) & 0x1FFFFFFFFFFFFFFF  # mod 2^61
    return acc


def shingles(html: str, *, k: int = 4) -> set[int]:
    """Stably hashed k-token shingles of the HTML token stream."""
    token_hashes = [zlib.crc32(t.encode()) for t in _tokens(html)]
    if len(token_hashes) < k:
        return {_shingle_hash(token_hashes)}
    return {
        _shingle_hash(token_hashes[i:i + k])
        for i in range(len(token_hashes) - k + 1)
    }


def jaccard(a: set[int], b: set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def _permutation_params(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.integers(1, int(_MERSENNE), size=num_perm, dtype=np.uint64)
    b = rng.integers(0, int(_MERSENNE), size=num_perm, dtype=np.uint64)
    return a, b


def minhash_signature(
    shingle_set: Iterable[int], *, num_perm: int = 64, seed: int = 1234
) -> np.ndarray:
    """Minhash signature (length ``num_perm``) of a shingle set."""
    values = np.fromiter(
        (np.uint64(s & 0xFFFFFFFFFFFFFFFF) for s in shingle_set), dtype=np.uint64
    )
    if values.size == 0:
        return np.full(num_perm, np.iinfo(np.uint64).max, dtype=np.uint64)
    a, b = _permutation_params(num_perm, seed)
    # (a * x + b) mod p for each permutation; rows = permutations.
    with np.errstate(over="ignore"):
        hashed = (values[None, :] * a[:, None] + b[:, None]) % _MERSENNE
    return hashed.min(axis=1)


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self.parent[ry] = rx


def cluster_batches(
    html_by_batch: Mapping[int, str],
    *,
    threshold: float = 0.60,
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 1234,
) -> dict[int, int]:
    """Cluster batches by HTML similarity.

    Returns ``batch_id -> cluster_id`` with cluster ids dense from 0,
    numbered by order of first appearance.  ``threshold`` is the exact
    Jaccard similarity required to merge a verified candidate pair.
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if num_perm % bands != 0:
        raise ValueError(f"bands ({bands}) must divide num_perm ({num_perm})")

    batch_ids = sorted(html_by_batch)
    all_sets = [shingles(html_by_batch[b]) for b in batch_ids]

    # Batches of one task often have byte-identical templates; dedupe exact
    # shingle sets so minhash/LSH only runs on distinct interfaces.
    rep_of_key: dict[frozenset, int] = {}
    rep_index = np.empty(len(batch_ids), dtype=np.int64)
    for i, s in enumerate(all_sets):
        key = frozenset(s)
        rep_index[i] = rep_of_key.setdefault(key, len(rep_of_key))
    reps = sorted(rep_of_key.items(), key=lambda kv: kv[1])
    shingle_sets = [set(key) for key, _ in reps]
    signatures = [
        minhash_signature(s, num_perm=num_perm, seed=seed) for s in shingle_sets
    ]

    rows = num_perm // bands
    uf = _UnionFind(len(shingle_sets))
    verified: set[tuple[int, int]] = set()
    for band in range(bands):
        buckets: dict[bytes, list[int]] = {}
        lo, hi = band * rows, (band + 1) * rows
        for i, sig in enumerate(signatures):
            buckets.setdefault(sig[lo:hi].tobytes(), []).append(i)
        for members in buckets.values():
            if len(members) < 2:
                continue
            anchor = members[0]
            for other in members[1:]:
                pair = (anchor, other)
                if pair in verified or uf.find(anchor) == uf.find(other):
                    continue
                verified.add(pair)
                if jaccard(shingle_sets[anchor], shingle_sets[other]) >= threshold:
                    uf.union(anchor, other)

    cluster_of_root: dict[int, int] = {}
    result: dict[int, int] = {}
    for i, batch_id in enumerate(batch_ids):
        root = uf.find(int(rep_index[i]))
        if root not in cluster_of_root:
            cluster_of_root[root] = len(cluster_of_root)
        result[batch_id] = cluster_of_root[root]
    return result
