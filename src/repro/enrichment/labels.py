"""Simulated expert labeling of clusters (paper §2.4, footnote 1).

The paper's authors labeled ~3,200 clusters by reading one representative
task interface per cluster; "labeling was performed independently by two of
the authors, following which the differences were resolved via discussion."

Our annotator does the same thing mechanically: it reads the cluster
representative's HTML and recognizes the goal statement, operator prompts,
and data-type markup that any task interface necessarily exposes.  Two
noisy annotator passes (each drops or confuses a label with small
probability) are then resolved: labels both annotators agree on are kept,
disagreements are resolved by a joint re-read (which recovers the correct
reading with high probability).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.html import parse_html
from repro.htmlgen.render import _GOAL_PHRASES, _OPERATOR_PROMPTS
from repro.tables import Table
from repro.taxonomy.labels import DataType, Goal, Operator

#: Probability an annotator mis-reads (drops or confuses) one label category.
ANNOTATOR_ERROR_PROB = 0.06
#: Probability the discussion phase fixes a disagreement correctly.
RESOLUTION_ACCURACY = 0.95

LABEL_SEPARATOR = "+"


def read_labels_from_html(html: str) -> tuple[list[Goal], list[Operator], list[DataType]]:
    """A careful (error-free) reading of an interface's labels.

    Every generated interface announces its goal in the instructions, one
    prompt per operator, and renders each data type with distinctive markup.
    """
    root = parse_html(html)
    text = root.text_content()

    # Order labels by where they appear: interfaces state the primary goal
    # and primary operator first.
    goals = sorted(
        (g for g, phrase in _GOAL_PHRASES.items() if phrase in text),
        key=lambda g: text.index(_GOAL_PHRASES[g]),
    )
    operators = sorted(
        (op for op, prompt in _OPERATOR_PROMPTS.items() if prompt in text),
        key=lambda op: text.index(_OPERATOR_PROMPTS[op]),
    )

    data_types: list[DataType] = []
    for element in root.iter_elements():
        cls = element.attr("class")
        if element.tag == "blockquote" and cls == "item-text":
            data_types.append(DataType.TEXT)
        elif element.tag == "blockquote" and cls == "social-post":
            data_types.append(DataType.SOCIAL_MEDIA)
        elif element.tag == "img" and "/items/" in element.attr("src"):
            data_types.append(DataType.IMAGE)
        elif element.tag == "audio":
            data_types.append(DataType.AUDIO)
        elif element.tag == "video":
            data_types.append(DataType.VIDEO)
        elif element.tag == "iframe" and cls == "map":
            data_types.append(DataType.MAPS)
        elif element.tag == "a" and "web.example.com" in element.attr("href"):
            data_types.append(DataType.WEBPAGE)
    # Deduplicate preserving order.
    seen: set[DataType] = set()
    data_types = [d for d in data_types if not (d in seen or seen.add(d))]
    return goals, operators, data_types


def _noisy_pass(
    rng: np.random.Generator,
    truth: tuple[list[Goal], list[Operator], list[DataType]],
) -> tuple[tuple[Goal, ...], tuple[Operator, ...], tuple[DataType, ...]]:
    """One annotator's reading: occasionally confuses a category."""
    goals, operators, data_types = ([*t] for t in truth)
    if goals and rng.random() < ANNOTATOR_ERROR_PROB:
        goals[0] = list(Goal)[rng.integers(len(Goal))]
    if operators and rng.random() < ANNOTATOR_ERROR_PROB:
        operators[0] = list(Operator)[rng.integers(len(Operator))]
    if data_types and rng.random() < ANNOTATOR_ERROR_PROB:
        data_types[0] = list(DataType)[rng.integers(len(DataType))]
    return tuple(goals), tuple(operators), tuple(data_types)


def _join(values) -> str:
    return LABEL_SEPARATOR.join(v.value for v in values)


def split_labels(joined: str) -> list[str]:
    """Invert the ``+``-joined multi-label encoding used in label tables."""
    return [v for v in joined.split(LABEL_SEPARATOR) if v]


def annotate_clusters(
    cluster_of_batch: Mapping[int, int],
    batch_html: Mapping[int, str],
    rng: np.random.Generator,
) -> Table:
    """Label every cluster from its representative batch's interface.

    Returns one row per cluster: ``cluster_id``, ``goals``, ``operators``,
    ``data_types`` (multi-labels ``+``-joined), plus the primaries as
    separate columns.
    """
    representative: dict[int, int] = {}
    for batch_id in sorted(cluster_of_batch):
        cluster = cluster_of_batch[batch_id]
        representative.setdefault(cluster, batch_id)

    rows = []
    for cluster_id in sorted(representative):
        html = batch_html[representative[cluster_id]]
        truth = read_labels_from_html(html)
        first = _noisy_pass(rng, truth)
        second = _noisy_pass(rng, truth)
        if first == second:
            goals, operators, data_types = first
        elif rng.random() < RESOLUTION_ACCURACY:
            goals, operators, data_types = (
                tuple(truth[0]), tuple(truth[1]), tuple(truth[2])
            )
        else:
            goals, operators, data_types = first
        rows.append(
            {
                "cluster_id": cluster_id,
                "goals": _join(goals),
                "operators": _join(operators),
                "data_types": _join(data_types),
                "primary_goal": goals[0].value if goals else "",
                "primary_operator": operators[0].value if operators else "",
                "primary_data_type": data_types[0].value if data_types else "",
            }
        )
    return Table.from_rows(rows)
