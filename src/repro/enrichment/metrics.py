"""Per-batch performance metrics (paper §4.1).

- **Disagreement score** (error proxy): for every item, all pairs of worker
  answers are compared — 1 if different, 0 if equal — and averaged; the
  batch's score averages its items.  Items with a single answer contribute
  nothing.  Computed combinatorially: with ``n`` answers on an item of which
  ``c_r`` gave response ``r``, the agreeing pairs are ``sum c_r (c_r - 1) / 2``
  of ``n (n - 1) / 2`` total.
- **Median task time** (cost proxy): median of ``end - start`` over the
  batch's instances.
- **Median pickup time** (latency proxy): median of ``start - batch
  creation``.  The batch creation timestamp is the catalog's ``created_at``
  (the paper uses the earliest activity as a proxy; our released catalog
  carries the creation time directly, which is the same quantity).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.release import ReleasedDataset
from repro.tables import Table
from repro.tables.column import factorize


def _pair_disagreement_by_item(
    item_id: np.ndarray, response: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(unique item ids, per-item average pairwise disagreement).

    Items with fewer than two answers get NaN.
    """
    response_codes, _ = factorize(response)
    order = np.lexsort((response_codes, item_id))
    items_sorted = item_id[order]
    codes_sorted = response_codes[order]

    # Per-item totals.
    item_change = np.r_[True, items_sorted[1:] != items_sorted[:-1]]
    item_starts = np.flatnonzero(item_change)
    item_ends = np.r_[item_starts[1:], len(items_sorted)]
    n_per_item = (item_ends - item_starts).astype(np.float64)

    # Per-(item, response) run lengths within the sorted order.
    run_change = item_change | np.r_[True, codes_sorted[1:] != codes_sorted[:-1]]
    run_starts = np.flatnonzero(run_change)
    run_ends = np.r_[run_starts[1:], len(items_sorted)]
    run_lengths = (run_ends - run_starts).astype(np.float64)
    # Sum c*(c-1) per item: map each run to its item slot.
    run_item_slot = np.searchsorted(item_starts, run_starts, side="right") - 1
    same_pairs = np.zeros(len(item_starts))
    np.add.at(same_pairs, run_item_slot, run_lengths * (run_lengths - 1.0))

    total_pairs = n_per_item * (n_per_item - 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        disagreement = 1.0 - same_pairs / total_pairs
    disagreement[total_pairs == 0] = np.nan
    return items_sorted[item_starts], disagreement


def compute_batch_metrics(released: ReleasedDataset) -> Table:
    """Metrics for every sampled batch.

    Returns columns: ``batch_id``, ``disagreement`` (NaN when no item has 2+
    answers), ``task_time``, ``pickup_time``, ``num_items``,
    ``num_instances``.
    """
    instances = released.instances
    batch_id = instances["batch_id"]
    item_id = instances["item_id"]
    start = instances["start_time"].astype(np.float64)
    end = instances["end_time"].astype(np.float64)

    catalog = released.batch_catalog
    created_at = np.zeros(int(catalog["batch_id"].max()) + 1, dtype=np.float64)
    created_at[catalog["batch_id"]] = catalog["created_at"]

    # Per-item disagreement, then averaged per batch.
    unique_items, item_disagreement = _pair_disagreement_by_item(
        item_id, instances["response"]
    )
    # Each item belongs to exactly one batch: take the batch of its first
    # instance occurrence.
    first_occurrence = np.zeros(int(item_id.max()) + 1, dtype=np.int64)
    first_occurrence[item_id[::-1]] = np.arange(len(item_id))[::-1]
    item_batch = batch_id[first_occurrence[unique_items]]

    order = np.argsort(batch_id, kind="stable")
    sorted_batches = batch_id[order]
    starts = np.flatnonzero(np.r_[True, sorted_batches[1:] != sorted_batches[:-1]])
    ends = np.r_[starts[1:], len(sorted_batches)]
    out_batch = sorted_batches[starts]

    task_time = np.empty(len(out_batch))
    pickup_time = np.empty(len(out_batch))
    num_items = np.empty(len(out_batch), dtype=np.int64)
    num_instances = (ends - starts).astype(np.int64)
    duration = (end - start)[order]
    pickup = (start - created_at[batch_id])[order]
    items_ordered = item_id[order]
    for slot, (s, e) in enumerate(zip(starts, ends)):
        task_time[slot] = np.median(duration[s:e])
        pickup_time[slot] = np.median(pickup[s:e])
        num_items[slot] = len(np.unique(items_ordered[s:e]))

    # Average item disagreement per batch (NaN-aware).  ``out_batch`` is
    # sorted, so slots resolve by binary search.
    dis_sum = np.zeros(len(out_batch))
    dis_count = np.zeros(len(out_batch))
    valid = ~np.isnan(item_disagreement)
    slots = np.searchsorted(out_batch, item_batch[valid])
    np.add.at(dis_sum, slots, item_disagreement[valid])
    np.add.at(dis_count, slots, 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        disagreement = dis_sum / dis_count
    disagreement[dis_count == 0] = np.nan

    return Table(
        {
            "batch_id": out_batch.astype(np.int64),
            "disagreement": disagreement,
            "task_time": task_time,
            "pickup_time": np.maximum(pickup_time, 0.0),
            "num_items": num_items,
            "num_instances": num_instances,
        },
        copy=False,
    )
