"""The paper's §2.4 enrichment pipeline.

Four stages, all operating on the *released* dataset only:

1. :mod:`~repro.enrichment.clustering` — group batches into distinct-task
   clusters by HTML similarity (shingling + minhash/LSH + union-find);
2. :mod:`~repro.enrichment.design` — extract the §4 design parameters from
   each sampled batch's HTML;
3. :mod:`~repro.enrichment.metrics` — compute per-batch performance metrics:
   disagreement (with the >0.5 prune rule applied later, at analysis time),
   median task-time, median pickup-time;
4. :mod:`~repro.enrichment.labels` — simulate the two-annotator labeling of
   one representative interface per cluster (goal / operators / data types).

:func:`~repro.enrichment.pipeline.enrich_dataset` runs all four and bundles
the result as an :class:`~repro.enrichment.pipeline.EnrichedDataset`.
"""

from repro.enrichment.clustering import cluster_batches, jaccard, minhash_signature, shingles
from repro.enrichment.design import extract_design_parameters
from repro.enrichment.labels import annotate_clusters
from repro.enrichment.metrics import compute_batch_metrics
from repro.enrichment.pipeline import EnrichedDataset, enrich_dataset

__all__ = [
    "EnrichedDataset",
    "annotate_clusters",
    "cluster_batches",
    "compute_batch_metrics",
    "enrich_dataset",
    "extract_design_parameters",
    "jaccard",
    "minhash_signature",
    "shingles",
]
