"""Glue: run clustering, design extraction, metrics, and labeling (§2.4).

The output :class:`EnrichedDataset` is what every §3–§5 analysis consumes:

``batch_table``
    One row per *sampled* batch: cluster id, creation time, design
    parameters, performance metrics.
``cluster_table``
    One row per cluster: batch/instance counts, the **median across
    batches** of every design parameter and metric (the paper's §4.2
    cluster-then-median methodology), first activity time, and labels.
``labels``
    The raw annotation table (multi-labels ``+``-joined).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.dataset.release import ReleasedDataset
from repro.enrichment.clustering import cluster_batches
from repro.enrichment.design import extract_design_parameters
from repro.enrichment.labels import annotate_clusters
from repro.enrichment.metrics import compute_batch_metrics
from repro.simulator.config import SimulationConfig
from repro.simulator.rng import StreamFactory
from repro.tables import Table, col, hash_join


@dataclass
class EnrichedDataset:
    """The released dataset plus everything §2.4 derives from it."""

    cluster_of_batch: dict[int, int]
    batch_table: Table
    cluster_table: Table
    labels: Table

    @property
    def num_clusters(self) -> int:
        return self.cluster_table.num_rows


def _nanmedian(segment: np.ndarray) -> float:
    values = segment[~np.isnan(segment)]
    if values.size == 0:
        return float("nan")
    return float(np.median(values))


def enrich_dataset(
    released: ReleasedDataset, config: SimulationConfig
) -> EnrichedDataset:
    """Run the full §2.4 enrichment pipeline on a released dataset."""
    with obs.span("enrichment", batches=len(released.batch_html)) as sp:
        with obs.span("enrichment.clustering"):
            cluster_of_batch = cluster_batches(released.batch_html)

        with obs.span("enrichment.design"):
            design = extract_design_parameters(released.batch_html)
        with obs.span("enrichment.metrics"):
            metrics = compute_batch_metrics(released)

        enriched = assemble_enrichment(
            released, config, cluster_of_batch, design, metrics
        )
        sp.set("clusters", enriched.cluster_table.num_rows)
    return enriched


def assemble_enrichment(
    released: ReleasedDataset,
    config: SimulationConfig,
    cluster_of_batch: dict[int, int],
    design: Table,
    metrics: Table,
) -> EnrichedDataset:
    """Assemble the batch/cluster tables from precomputed per-batch parts.

    The back half of :func:`enrich_dataset`, split out so the sharded
    pipeline (:mod:`repro.shard`) can merge per-shard ``design``/``metrics``
    tables and a globally clustered ``cluster_of_batch`` map, then build
    byte-identical final tables through exactly this code path.
    """
    with obs.span("enrichment.cluster_table"):
        catalog = released.batch_catalog.select(["batch_id", "created_at"])
        batch_table = (
            design.lazy()
            .join(metrics, on="batch_id", how="left")
            .with_column(
                "cluster_id",
                col("batch_id").map_values(
                    lambda b: cluster_of_batch[int(b)],
                    name="cluster_of",
                    dtype=np.int64,
                ),
            )
            .join(catalog, on="batch_id", how="left")
            .collect()
        )

        cluster_table = (
            batch_table.lazy()
            .group_by("cluster_id")
            .agg(
                {
                    "num_batches": ("batch_id", "count"),
                    "num_instances": ("num_instances", "sum"),
                    "num_words": ("num_words", "median"),
                    "num_text_boxes": ("num_text_boxes", "median"),
                    "num_examples": ("num_examples", "median"),
                    "num_images": ("num_images", "median"),
                    "num_items": ("num_items", "median"),
                    "disagreement": ("disagreement", _nanmedian),
                    "task_time": ("task_time", _nanmedian),
                    "pickup_time": ("pickup_time", _nanmedian),
                    "first_time": ("created_at", "min"),
                }
            )
            .collect()
        )

    with obs.span("enrichment.labels"):
        label_rng = StreamFactory(config.seed).stream("labels")
        labels = annotate_clusters(
            cluster_of_batch, released.batch_html, label_rng
        )
        cluster_table = hash_join(
            cluster_table, labels, on="cluster_id", how="left"
        )

    return EnrichedDataset(
        cluster_of_batch=cluster_of_batch,
        batch_table=batch_table,
        cluster_table=cluster_table,
        labels=labels,
    )
