"""Per-batch design parameters extracted from the sample-task HTML (§2.4)."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro import obs
from repro.html import extract_features
from repro.parallel import map_chunks
from repro.tables import Table


def extract_design_parameters(batch_html: Mapping[int, str]) -> Table:
    """Extract design features for every sampled batch.

    Returns one row per batch: ``batch_id``, ``num_words``,
    ``num_text_boxes``, ``num_examples``, ``num_images``,
    ``num_input_fields``, ``has_instructions``.

    HTML parsing fans out over ``REPRO_WORKERS`` processes (serial by
    default); the result is invariant to the worker count.
    """
    batch_ids = sorted(batch_html)
    rows = {
        "batch_id": np.asarray(batch_ids, dtype=np.int64),
        "num_words": np.empty(len(batch_ids), dtype=np.int64),
        "num_text_boxes": np.empty(len(batch_ids), dtype=np.int64),
        "num_examples": np.empty(len(batch_ids), dtype=np.int64),
        "num_images": np.empty(len(batch_ids), dtype=np.int64),
        "num_input_fields": np.empty(len(batch_ids), dtype=np.int64),
        "has_instructions": np.empty(len(batch_ids), dtype=bool),
    }
    with obs.span("design.extract", docs=len(batch_ids)):
        all_features = map_chunks(
            extract_features, [batch_html[b] for b in batch_ids]
        )
    for i, features in enumerate(all_features):
        rows["num_words"][i] = features.num_words
        rows["num_text_boxes"][i] = features.num_text_boxes
        rows["num_examples"][i] = features.num_examples
        rows["num_images"][i] = features.num_images
        rows["num_input_fields"][i] = features.num_input_fields
        rows["has_instructions"][i] = features.has_instructions
    return Table(rows, copy=False)
