"""Deterministic fault injection for the study pipeline's failure paths.

A degraded run — broken process pool, corrupt cache entry, full disk — must
produce either the identical study or a loud, diagnosable failure; never a
silently wrong or double-executed one.  This module makes those failure
paths *testable*: named injection sites threaded through :mod:`repro.cache`,
:mod:`repro.parallel`, and :mod:`repro.dataset.store` fire deterministic
faults on demand, so every ``except`` clause in the pipeline is an
exercised, metered code path instead of dead insurance.

Spec grammar
------------
A fault spec is a comma-separated list of rules::

    rule  :=  site ":" kind [ "@" n ]

    REPRO_FAULTS='cache.write:fail@2,pool.spawn:fail,cache.load:corrupt@1'

``site`` names an injection point (see :data:`SITES`), ``kind`` selects what
happens there, and ``@n`` (1-based) fires the fault at exactly the *n*-th
arrival at that site — omit it to fire at **every** arrival.  Arrivals are
counted per site, per process (forked pool workers inherit the parent's
rules and counts at fork time and count on independently), and reset by
:func:`configure`.

Sites and kinds
---------------
- ``cache.write:fail`` — the entry write raises :class:`InjectedFault`
- ``cache.load:fail`` — reading an existing entry raises
- ``cache.load:corrupt`` — a data file of the entry is truncated on disk
- ``pool.spawn:fail`` — one pool-creation attempt raises
- ``pool.chunk:fail`` — the worker chunk raises (simulated worker crash)
- ``pool.chunk:hang`` — the worker chunk sleeps past any configured timeout
- ``dataset.save:fail`` — :func:`repro.dataset.save_dataset` raises
- ``ledger.append:fail`` — the run-ledger record write raises
- ``phase.release:sleep`` — the study ``release`` phase stalls for
  :data:`SLOW_PHASE_SLEEP_S` seconds (exercises drift detection)
- ``shard.build:sleep`` — one shard's build stalls for
  :data:`SLOW_PHASE_SLEEP_S` seconds (a deterministic straggler shard,
  for exercising the work-stealing scheduler under skew)
- ``shard.save:fail`` — spilling a shard partial to disk raises (the
  sharded build keeps the partial in memory instead)
- ``shard.load:fail`` — reading a spilled shard partial raises
- ``shard.load:corrupt`` — a data file of the shard partial is truncated
  on disk (exercises checksum verification + in-process rebuild)
- ``serve.request:fail`` — a live-telemetry HTTP handler raises; the
  server answers 500 and counts ``serve.request_failed``, the build being
  observed never notices
- ``serve.ingest:fail`` — a ``POST /ingest`` micro-batch raises before any
  standing state is touched; the server answers 500, counts
  ``serve.ingest_failed``, and the aggregates stay byte-identical
- ``serve.ingest:corrupt`` — the micro-batch body is physically truncated
  before parsing (a half-received upload); the real decode/validation
  defenses reject it with a 400, same counter, same untouched state

Injected faults raise :class:`InjectedFault` (an :class:`OSError` subclass)
so they travel the *same* recovery paths a real I/O failure would; the
``corrupt`` kind instead physically truncates the entry so the real
checksum/unpickling defenses are the thing being exercised.

Configuration is read lazily from the ``REPRO_FAULTS`` environment variable
(so library use needs no code change) or installed explicitly with
:func:`configure` (the CLI ``--faults`` flag).  A malformed spec raises
:class:`FaultSpecError` at first use — loud, never ignored.  Every fired
fault increments the ``faults.injected`` counter.
"""

from __future__ import annotations

import os
import re

from repro import obs

#: Environment variable holding the fault spec for library use.
FAULTS_ENV = "REPRO_FAULTS"

#: Injection-site registry: site name -> kinds valid at that site.
SITES: dict[str, tuple[str, ...]] = {
    "cache.write": ("fail",),
    "cache.load": ("fail", "corrupt"),
    "pool.spawn": ("fail",),
    "pool.chunk": ("fail", "hang"),
    "dataset.save": ("fail",),
    "ledger.append": ("fail",),
    "phase.release": ("sleep",),
    "shard.build": ("sleep",),
    "shard.save": ("fail",),
    "shard.load": ("fail", "corrupt"),
    "serve.request": ("fail",),
    "serve.ingest": ("fail", "corrupt"),
}

#: How long an injected ``phase.release:sleep`` fault stalls the phase —
#: large against a tiny-scale build so drift detection must flag it, small
#: enough that acceptance tests stay fast.
SLOW_PHASE_SLEEP_S = 0.75

_INJECTED = obs.counter("faults.injected")

_RULE_RE = re.compile(
    r"^(?P<site>[a-z_.]+):(?P<kind>[a-z_]+)(?:@(?P<at>[^@]*))?$"
)


class FaultSpecError(ValueError):
    """Raised for a malformed or unknown fault spec."""


class InjectedFault(OSError):
    """The exception raised by ``fail``-kind injection sites.

    Subclasses :class:`OSError` so injected faults exercise the same
    ``except`` clauses that real I/O failures hit.
    """


def parse(spec: str) -> tuple[tuple[str, str, int | None], ...]:
    """Parse a spec string into ``(site, kind, at)`` rules.

    ``at`` is the 1-based arrival the rule fires on, or ``None`` for every
    arrival.  Raises :class:`FaultSpecError` on any malformed rule.
    """
    rules: list[tuple[str, str, int | None]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        match = _RULE_RE.match(part)
        if match is None:
            raise FaultSpecError(
                f"malformed fault rule {part!r} (expected site:kind[@n])"
            )
        site, kind = match["site"], match["kind"]
        kinds = SITES.get(site)
        if kinds is None:
            raise FaultSpecError(
                f"unknown fault site {site!r} (known: {', '.join(sorted(SITES))})"
            )
        if kind not in kinds:
            raise FaultSpecError(
                f"fault site {site!r} has no kind {kind!r} "
                f"(valid: {', '.join(kinds)})"
            )
        at: int | None = None
        if match["at"] is not None:
            try:
                at = int(match["at"])
            except ValueError:
                raise FaultSpecError(
                    f"fault rule {part!r}: @n must be an integer"
                ) from None
            if at < 1:
                raise FaultSpecError(f"fault rule {part!r}: @n must be >= 1")
        rules.append((site, kind, at))
    return tuple(rules)


def _compile(
    rules: tuple[tuple[str, str, int | None], ...]
) -> dict[str, list[tuple[str, int | None]]]:
    compiled: dict[str, list[tuple[str, int | None]]] = {}
    for site, kind, at in rules:
        compiled.setdefault(site, []).append((kind, at))
    return compiled


# Explicitly installed rules (configure) win over the lazily parsed env
# spec; the env parse is cached against the raw spec string so fire() costs
# one os.environ lookup when nothing changed.
_explicit: dict[str, list[tuple[str, int | None]]] | None = None
_env_spec: str | None = None
_env_rules: dict[str, list[tuple[str, int | None]]] = {}
_arrivals: dict[str, int] = {}


def configure(spec: str | None) -> None:
    """Install an explicit fault spec (``--faults``); ``None`` reverts to env.

    Resets every site's arrival counter either way, so a fresh ``@n`` count
    starts with the new rules.
    """
    global _explicit, _env_spec
    _arrivals.clear()
    if spec is None:
        _explicit = None
        _env_spec = None  # force a re-parse of the environment next fire()
    else:
        _explicit = _compile(parse(spec))


def _current() -> dict[str, list[tuple[str, int | None]]]:
    global _env_spec, _env_rules
    if _explicit is not None:
        return _explicit
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if spec != _env_spec:
        _env_rules = _compile(parse(spec))
        _env_spec = spec
        _arrivals.clear()
    return _env_rules


def active() -> bool:
    """Whether any fault rules are currently installed."""
    return bool(_current())


def arrival_counts() -> dict[str, int]:
    """Arrivals recorded per site since the last :func:`configure` (debugging)."""
    return dict(_arrivals)


def fire(site: str) -> str | None:
    """Record an arrival at ``site``; return the fault kind to inject, if any.

    Sites with no installed rules return ``None`` without counting, so the
    disabled path is one dict lookup.
    """
    rules = _current().get(site)
    if not rules:
        return None
    n = _arrivals[site] = _arrivals.get(site, 0) + 1
    for kind, at in rules:
        if at is None or at == n:
            _INJECTED.inc()
            return kind
    return None


def check(site: str) -> str | None:
    """Like :func:`fire`, but raises :class:`InjectedFault` on ``fail``.

    Convenience for sites whose only fault kind is an I/O failure; other
    kinds are returned to the caller to act on.
    """
    kind = fire(site)
    if kind == "fail":
        raise InjectedFault(f"injected fault: {site}:fail")
    return kind
