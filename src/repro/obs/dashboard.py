"""Self-contained HTML dashboard over the run ledger (``repro runs report``).

One static HTML file, no external assets: charts are inline SVG built with
the same :mod:`repro.reporting.svg` substrate the paper figures use, so the
dashboard needs nothing but a browser.  Sections:

- **Runs** — every ledger record: id, kind/command, config, git SHA, wall.
- **Phase timings** — per comparability group, a line chart of each major
  phase's wall time across runs (regressions are visible as upticks).
- **Counter trends** — selected counters (cache traffic, serial fallbacks,
  injected faults) across runs.
- **Utilization timeline** — the latest run's per-worker busy intervals as
  Gantt lanes (one lane per pid, one bar per shard build / chunk), plus a
  resource line chart (RSS, spill bytes over time) when the run was
  sampled with ``--sample`` (see :mod:`repro.obs.sampler`).
- **Fidelity** — the latest run's paper-vs-measured probe table.
- **Drift** — the findings of :func:`repro.obs.drift.check_drift`, i.e.
  exactly what ``repro runs check`` would fail on.

Groups with fewer than two runs get a table row but no chart (a one-point
polyline is not a trend).
"""

from __future__ import annotations

import html
import time
from pathlib import Path
from typing import Any

from repro.obs import drift as drift_mod

#: At most this many phases charted per group (largest by latest wall time).
_MAX_PHASES = 8
#: Counters worth trending (prefix match).
_TREND_COUNTERS = (
    "cache.hit", "cache.miss", "cache.corrupt", "cache.write_failed",
    "parallel.serial_fallback", "parallel.timeout", "faults.injected",
    "ledger.corrupt",
    "plan.fused_ops", "plan.pushdowns", "plan.cache_hit",
    "plan.parallel_branches", "dict.encoded_columns",
)


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _chart(
    title: str, series: dict[str, tuple[list[float], list[float]]],
    *, y_label: str, x_label: str = "run #",
) -> str:
    from repro.reporting.svg import PALETTE, SvgChart

    plotted = {k: v for k, v in series.items() if len(v[0]) >= 2}
    if not plotted:
        return ""
    all_x = [x for xs, _ in plotted.values() for x in xs]
    all_y = [y for _, ys in plotted.values() for y in ys]
    chart = SvgChart(
        title=title, width=560, height=240,
        x_min=min(all_x), x_max=max(all_x),
        y_min=0.0, y_max=(max(all_y) or 1.0) * 1.05,
        x_label=x_label, y_label=y_label,
    )
    for i, (label, (xs, ys)) in enumerate(sorted(plotted.items())):
        chart.add_line(xs, ys, color=PALETTE[i % len(PALETTE)], label=label)
    return chart.render()


def _runs_table(records: list[dict[str, Any]]) -> str:
    rows = [
        "<tr><th>#</th><th>run id</th><th>kind</th><th>command</th>"
        "<th>scale</th><th>seed</th><th>faults</th><th>git</th>"
        "<th>wall (s)</th><th>cache</th></tr>"
    ]
    for i, record in enumerate(records):
        config = record.get("config") or {}
        cache = record.get("cache") or {}
        rows.append(
            "<tr>"
            f"<td>{i}</td>"
            f"<td><code>{_esc(record.get('run_id'))}</code></td>"
            f"<td>{_esc(record.get('kind'))}</td>"
            f"<td>{_esc(record.get('command'))}</td>"
            f"<td>{_esc(config.get('scale', '-'))}</td>"
            f"<td>{_esc(config.get('seed', '-'))}</td>"
            f"<td>{_esc(config.get('faults') or '-')}</td>"
            f"<td><code>{_esc(record.get('git_sha') or '-')}</code></td>"
            f"<td>{record.get('total_wall_s', 0.0):.3f}</td>"
            f"<td>{cache.get('entries', 0)} entries</td>"
            "</tr>"
        )
    return f"<table>{''.join(rows)}</table>"


def _phase_section(groups: dict[tuple, list[dict[str, Any]]]) -> str:
    parts: list[str] = []
    for group in groups.values():
        label = drift_mod.group_label(group[-1])
        latest_phases = group[-1].get("phases") or {}
        top = sorted(
            latest_phases,
            key=lambda name: -latest_phases[name].get("wall_s", 0.0),
        )[:_MAX_PHASES]
        series: dict[str, tuple[list[float], list[float]]] = {}
        for phase in top:
            xs, ys = [], []
            for i, record in enumerate(group):
                agg = (record.get("phases") or {}).get(phase)
                if agg is not None:
                    xs.append(float(i))
                    ys.append(float(agg.get("wall_s", 0.0)))
            series[phase] = (xs, ys)
        svg = _chart(label, series, y_label="wall (s)")
        if svg:
            parts.append(f"<div class='chart'>{svg}</div>")
        else:
            parts.append(
                f"<p class='note'>{_esc(label)}: {len(group)} run(s) — "
                f"need at least two comparable runs to chart a trend.</p>"
            )
    return "".join(parts) or "<p class='note'>no runs recorded yet.</p>"


def _counter_section(records: list[dict[str, Any]]) -> str:
    series: dict[str, tuple[list[float], list[float]]] = {}
    for name in _TREND_COUNTERS:
        xs, ys = [], []
        for i, record in enumerate(records):
            value = (record.get("counters") or {}).get(name)
            if value is not None:
                xs.append(float(i))
                ys.append(float(value))
        if xs:
            series[name] = (xs, ys)
    svg = _chart("counters across runs", series, y_label="count")
    return f"<div class='chart'>{svg}</div>" if svg else (
        "<p class='note'>no counter trends yet (counters chart after two "
        "runs record the same counter).</p>"
    )


def _gantt(label: str, util: dict[str, Any]) -> str:
    """Per-worker busy-interval lanes as one SVG (empty when no intervals)."""
    from repro.reporting.svg import PALETTE, SvgChart

    lanes = [w for w in (util.get("workers") or []) if w.get("intervals")]
    if not lanes:
        return ""
    span_end = max(
        float(iv["end_s"]) for w in lanes for iv in w["intervals"]
    )
    if span_end <= 0:
        return ""
    num = len(lanes)
    chart = SvgChart(
        title=f"{label} — utilization {util.get('value', 0.0):.0%}",
        width=560, height=96 + 26 * num,
        x_min=0.0, x_max=span_end, y_min=0.0, y_max=float(num),
        x_label="seconds since first interval", y_label="worker",
    )
    f = chart.frame
    for lane, worker in enumerate(lanes):
        color = PALETTE[lane % len(PALETTE)]
        # Lane 0 at the top: band between y = num-lane-0.85 and num-lane-0.15.
        y_top = f._ty(num - lane - 0.15)
        y_bottom = f._ty(num - lane - 0.85)
        for iv in worker["intervals"]:
            x0 = f._tx(float(iv["start_s"]))
            x1 = f._tx(float(iv["end_s"]))
            chart._body.append(
                f'<rect x="{x0:.1f}" y="{y_top:.1f}" '
                f'width="{max(x1 - x0, 1.0):.1f}" '
                f'height="{y_bottom - y_top:.1f}" '
                f'fill="{color}" fill-opacity="0.8"/>'
            )
        if lane < 8:
            chart._legend.append((
                f"pid {worker.get('pid')} "
                f"({worker.get('busy_s', 0.0):.2f}s busy)",
                color,
            ))
    return chart.render()


def _resource_chart(record: dict[str, Any]) -> str:
    """RSS / spill sample series of one run's sampler timeline."""
    samples = (record.get("timeline") or {}).get("samples") or []
    if len(samples) < 2:
        return ""
    xs = [float(s.get("t_s", 0.0)) for s in samples]
    series = {
        "rss_mb": (xs, [float(s.get("rss_mb", 0.0)) for s in samples]),
        "spill_mb": (xs, [float(s.get("spill_mb", 0.0)) for s in samples]),
    }
    return _chart(
        "resource samples", series, y_label="MB", x_label="seconds",
    )


def _utilization_section(records: list[dict[str, Any]]) -> str:
    latest = next(
        (
            r for r in reversed(records)
            if (r.get("utilization") or {}).get("workers")
        ),
        None,
    )
    if latest is None:
        return (
            "<p class='note'>no worker intervals recorded yet (run a study "
            "command; add <code>--sample</code> for resource samples).</p>"
        )
    note = (
        f"<p class='note'>latest run with worker intervals: "
        f"<code>{_esc(latest.get('run_id'))}</code>"
    )
    peak = latest.get("peak_rss_mb")
    if peak:
        note += f", peak RSS {float(peak):.0f} MB"
    note += "</p>"
    parts = [note]
    svg = _gantt(drift_mod.group_label(latest), latest["utilization"])
    if svg:
        parts.append(f"<div class='chart'>{svg}</div>")
    resources = _resource_chart(latest)
    if resources:
        parts.append(f"<div class='chart'>{resources}</div>")
    return "".join(parts)


def _fidelity_section(records: list[dict[str, Any]]) -> str:
    latest = next(
        (r for r in reversed(records) if r.get("fidelity")), None
    )
    if latest is None:
        return "<p class='note'>no fidelity probes recorded yet.</p>"
    rows = [
        "<tr><th>probe</th><th>paper</th><th>measured</th>"
        "<th>deviation</th></tr>"
    ]
    for name, probe in sorted(latest["fidelity"].items()):
        rows.append(
            "<tr>"
            f"<td>{_esc(name)}</td>"
            f"<td>{probe.get('paper'):g}</td>"
            f"<td>{probe.get('measured'):.4g}</td>"
            f"<td>{probe.get('deviation'):.3f}</td>"
            "</tr>"
        )
    return (
        f"<p class='note'>latest probed run: "
        f"<code>{_esc(latest.get('run_id'))}</code></p>"
        f"<table>{''.join(rows)}</table>"
    )


def _drift_section(records: list[dict[str, Any]]) -> str:
    findings = drift_mod.check_drift(records)
    if not findings:
        return (
            "<p class='ok'>no drift: every group's latest run is within "
            "tolerance of its rolling baseline.</p>"
        )
    rows = [
        "<tr><th>kind</th><th>group</th><th>subject</th>"
        "<th>baseline</th><th>latest</th><th>run</th></tr>"
    ]
    for f in findings:
        rows.append(
            "<tr class='bad'>"
            f"<td>{_esc(f.kind)}</td><td>{_esc(f.group)}</td>"
            f"<td>{_esc(f.subject)}</td><td>{f.baseline:.4g}</td>"
            f"<td>{f.latest:.4g}</td>"
            f"<td><code>{_esc(f.run_id)}</code></td></tr>"
        )
    return f"<table>{''.join(rows)}</table>"


# Injected only when the dashboard is served by repro.obs.live: a live
# panel that streams /events into a rolling log, polls /metrics into a
# <pre>, and shows connection state — so a medium/xlarge build can be
# watched from a browser while it runs.  Static dashboards (repro runs
# report) carry none of this.
_LIVE_PANEL = """
<h2>Live</h2>
<p class='note'>status: <span id='live-status'>connecting…</span>
— event log (newest first, capped at 200) and a /metrics scrape every 2s.
Reload the page to refresh the ledger sections below.</p>
<ul id='live-events' class='live-events'></ul>
<pre id='live-metrics' class='live-metrics'>(waiting for /metrics…)</pre>
<script>
(function () {
  var status = document.getElementById('live-status');
  var list = document.getElementById('live-events');
  var pre = document.getElementById('live-metrics');
  var source = new EventSource('/events');
  source.onopen = function () { status.textContent = 'connected'; };
  source.onerror = function () { status.textContent = 'disconnected'; };
  function append(kind, data) {
    var item = document.createElement('li');
    item.textContent = kind + ' ' + data;
    list.insertBefore(item, list.firstChild);
    while (list.childNodes.length > 200) list.removeChild(list.lastChild);
  }
  ['span.open', 'span.close', 'sampler.tick', 'chunk.dispatch',
   'chunk.complete', 'shard.progress', 'run.recorded'].forEach(
    function (kind) {
      source.addEventListener(kind, function (e) { append(kind, e.data); });
    });
  function poll() {
    fetch('/metrics').then(function (r) { return r.text(); })
      .then(function (text) { pre.textContent = text; })
      .catch(function () {});
  }
  poll();
  setInterval(poll, 2000);
})();
</script>
"""

_LIVE_STYLE = """
.live-events { font-family: monospace; font-size: 0.8em; max-height: 16em;
               overflow-y: auto; border: 1px solid #ddd; padding: 0.5em;
               list-style: none; margin: 0.5em 0; }
.live-metrics { font-size: 0.75em; max-height: 16em; overflow-y: auto;
                border: 1px solid #ddd; padding: 0.5em; }
"""

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 70em;
       color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em;
     border-bottom: 1px solid #ddd; padding-bottom: 0.2em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #ddd; padding: 0.3em 0.6em; text-align: left; }
th { background: #f5f5f5; }
tr.bad td { background: #fdecea; }
.chart { margin: 1em 0; }
.note { color: #666; font-size: 0.9em; }
.ok { color: #1a7f37; }
code { font-size: 0.95em; }
"""


def render_dashboard(records: list[dict[str, Any]], *, live: bool = False) -> str:
    """The full dashboard document for a list of ledger records.

    With ``live=True`` (the ``/`` endpoint of :mod:`repro.obs.live`) the
    page gains a panel that auto-refreshes from ``/events`` and
    ``/metrics``; the static file written by ``repro runs report`` never
    includes it.
    """
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    groups = drift_mod.group_records(records)
    style = _STYLE + (_LIVE_STYLE if live else "")
    return (
        "<!doctype html>\n<html><head><meta charset='utf-8'>"
        "<title>repro run ledger</title>"
        f"<style>{style}</style></head><body>"
        f"<h1>repro run ledger</h1>"
        f"<p class='note'>{len(records)} run(s), {len(groups)} group(s); "
        f"generated {stamp}.</p>"
        f"{_LIVE_PANEL if live else ''}"
        f"<h2>Drift</h2>{_drift_section(records)}"
        f"<h2>Runs</h2>{_runs_table(records)}"
        f"<h2>Phase timings</h2>{_phase_section(groups)}"
        f"<h2>Counter trends</h2>{_counter_section(records)}"
        f"<h2>Utilization timeline</h2>{_utilization_section(records)}"
        f"<h2>Fidelity (paper vs measured)</h2>{_fidelity_section(records)}"
        "</body></html>\n"
    )


def write_dashboard(
    records: list[dict[str, Any]], path: str | Path
) -> Path:
    """Render and write the dashboard; returns the resolved path."""
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(records))
    return out
