"""Drift detection over the run ledger: perf and fidelity regressions.

Given the chronological records of :mod:`repro.obs.ledger`, this module
answers one question: *did the latest run of each configuration get slower,
or less faithful to the paper, than its own recent history?*

Baseline policy
---------------
Records group by ``(kind, command, scale, seed, workers, shards)`` — runs
that are
comparable by construction.  The fault spec is deliberately **not** part of
the key: a faulted run must be judged against its clean baseline, because
the whole point of fault-grammar slowdowns is to show up as drift.  Within
a group the *latest* record is the candidate and the per-phase / per-probe
baseline is the **median of the preceding records** (up to
:data:`BASELINE_WINDOW` of them) — a median, not a mean, so one historical
outlier cannot mask or fake a regression.

Tolerances
----------
- **Phase timing**: the candidate's phase wall time must exceed the
  baseline median by more than ``timing_tolerance`` (relative, default
  50%) *and* by more than ``noise_floor_s`` (absolute, default 0.25 s).
  The two-sided guard keeps millisecond phases from flagging on scheduler
  jitter while still catching an injected 0.75 s sleep at tiny scale.
- **Fidelity**: each probe's deviation-from-paper (``|measured/paper - 1|``,
  recorded by the ledger) must not grow by more than
  ``fidelity_tolerance`` (absolute, default 0.05) over the baseline median
  deviation.  Moving *toward* the paper value is never drift.
- **Peak RSS**: runs recording ``peak_rss_mb`` (see
  :mod:`repro.obs.sampler`) face the same two-sided shape as timing — the
  candidate must exceed the baseline median by more than
  ``rss_tolerance`` (relative, default 50%) *and* by more than
  ``rss_floor_mb`` (absolute, default 64 MB), so small-footprint runs
  cannot flag on allocator noise while a genuine memory blowup fails CI.

``check_drift`` evaluates only each group's latest record — the CI
question — while ``compare_records`` diffs two arbitrary runs for the
``repro runs diff`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Any, Mapping

#: Preceding same-group records the baseline median is taken over.
BASELINE_WINDOW = 5
#: Relative phase slowdown beyond which timing drift is flagged.
TIMING_TOLERANCE = 0.50
#: Absolute slowdown (seconds) a phase must also exceed — jitter guard.
NOISE_FLOOR_S = 0.25
#: Allowed absolute growth of a probe's deviation-from-paper.
FIDELITY_TOLERANCE = 0.05
#: Relative peak-RSS growth beyond which memory drift is flagged.
RSS_TOLERANCE = 0.50
#: Absolute growth (MB) the peak RSS must also exceed — allocator noise guard.
RSS_FLOOR_MB = 64.0


@dataclass(frozen=True)
class DriftFinding:
    """One flagged regression in one run."""

    kind: str  # "timing" | "fidelity" | "rss"
    run_id: str
    group: str
    subject: str  # phase name, probe name, or "peak_rss_mb"
    baseline: float
    latest: float

    def render(self) -> str:
        if self.kind == "timing":
            ratio = self.latest / self.baseline if self.baseline > 0 else float("inf")
            return (
                f"[TIMING]   {self.group}: phase '{self.subject}' "
                f"{self.latest:.3f}s vs baseline median {self.baseline:.3f}s "
                f"({ratio:.1f}x) in run {self.run_id}"
            )
        if self.kind == "rss":
            ratio = self.latest / self.baseline if self.baseline > 0 else float("inf")
            return (
                f"[RSS]      {self.group}: peak RSS {self.latest:.0f}MB vs "
                f"baseline median {self.baseline:.0f}MB ({ratio:.1f}x) "
                f"in run {self.run_id}"
            )
        return (
            f"[FIDELITY] {self.group}: probe '{self.subject}' deviation "
            f"{self.latest:.3f} vs baseline median {self.baseline:.3f} "
            f"in run {self.run_id}"
        )


def group_key(record: Mapping[str, Any]) -> tuple:
    """Comparability key; faults excluded so faulted runs face clean baselines."""
    config = record.get("config") or {}
    return (
        record.get("kind"),
        record.get("command"),
        config.get("scale"),
        config.get("seed"),
        config.get("workers"),
        config.get("shards"),
    )


def group_label(record: Mapping[str, Any]) -> str:
    kind, command, scale, seed, workers, shards = group_key(record)
    label = f"{kind}/{command}"
    if scale is not None:
        label += f" scale={scale}"
    if seed is not None:
        label += f" seed={seed}"
    if workers:
        label += f" workers={workers}"
    if shards:
        label += f" shards={shards}"
    return label


def group_records(
    records: list[dict[str, Any]]
) -> dict[tuple, list[dict[str, Any]]]:
    """Records partitioned by :func:`group_key`, preserving ledger order."""
    groups: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(group_key(record), []).append(record)
    return groups


def _coerce_float(value: Any) -> float | None:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _mapping(value: Any) -> Mapping[str, Any]:
    return value if isinstance(value, Mapping) else {}


def _phase_walls(record: Mapping[str, Any]) -> dict[str, float]:
    """Per-phase wall seconds, tolerant of legacy/malformed records.

    Ledgers accumulate across schema generations: a phase aggregate may be
    the current ``{"wall_s": ...}`` mapping, a bare number from an early
    writer, or garbage from a truncated line.  Unusable entries are
    skipped — a drift check or diff over old history must degrade to
    "no data for that phase", never traceback.
    """
    walls: dict[str, float] = {}
    for name, agg in _mapping(record.get("phases")).items():
        if isinstance(agg, Mapping):
            wall = _coerce_float(agg.get("wall_s", 0.0))
        else:
            wall = _coerce_float(agg)
        if wall is not None:
            walls[name] = wall
    return walls


def _fidelity_devs(record: Mapping[str, Any]) -> dict[str, float]:
    devs: dict[str, float] = {}
    for name, probe in _mapping(record.get("fidelity")).items():
        if not isinstance(probe, Mapping):
            continue
        dev = _coerce_float(probe.get("deviation", 0.0))
        if dev is not None:
            devs[name] = dev
    return devs


def _peak_rss(record: Mapping[str, Any]) -> float | None:
    value = record.get("peak_rss_mb")
    try:
        value = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    return value if value > 0 else None


def compare_records(
    baseline_records: list[dict[str, Any]],
    candidate: Mapping[str, Any],
    *,
    timing_tolerance: float = TIMING_TOLERANCE,
    noise_floor_s: float = NOISE_FLOOR_S,
    fidelity_tolerance: float = FIDELITY_TOLERANCE,
    rss_tolerance: float = RSS_TOLERANCE,
    rss_floor_mb: float = RSS_FLOOR_MB,
) -> list[DriftFinding]:
    """Findings for ``candidate`` against the median of ``baseline_records``.

    Phases, probes, or RSS readings absent from either side are skipped —
    a cached run has no ``release`` phase, and that is not a regression.
    """
    if not baseline_records:
        return []
    label = group_label(candidate)
    run_id = str(candidate.get("run_id"))
    findings: list[DriftFinding] = []

    base_walls = [_phase_walls(r) for r in baseline_records]
    for phase, latest in sorted(_phase_walls(candidate).items()):
        history = [w[phase] for w in base_walls if phase in w]
        if not history:
            continue
        base = median(history)
        if latest > base * (1.0 + timing_tolerance) and latest - base > noise_floor_s:
            findings.append(DriftFinding(
                kind="timing", run_id=run_id, group=label,
                subject=phase, baseline=base, latest=latest,
            ))

    base_devs = [_fidelity_devs(r) for r in baseline_records]
    for probe, latest_dev in sorted(_fidelity_devs(candidate).items()):
        history = [d[probe] for d in base_devs if probe in d]
        if not history:
            continue
        base = median(history)
        if latest_dev > base + fidelity_tolerance:
            findings.append(DriftFinding(
                kind="fidelity", run_id=run_id, group=label,
                subject=probe, baseline=base, latest=latest_dev,
            ))

    latest_rss = _peak_rss(candidate)
    rss_history = [
        rss for r in baseline_records if (rss := _peak_rss(r)) is not None
    ]
    if latest_rss is not None and rss_history:
        base = median(rss_history)
        if (
            latest_rss > base * (1.0 + rss_tolerance)
            and latest_rss - base > rss_floor_mb
        ):
            findings.append(DriftFinding(
                kind="rss", run_id=run_id, group=label,
                subject="peak_rss_mb", baseline=base, latest=latest_rss,
            ))
    return findings


def check_drift(
    records: list[dict[str, Any]],
    *,
    baseline_window: int = BASELINE_WINDOW,
    timing_tolerance: float = TIMING_TOLERANCE,
    noise_floor_s: float = NOISE_FLOOR_S,
    fidelity_tolerance: float = FIDELITY_TOLERANCE,
    rss_tolerance: float = RSS_TOLERANCE,
    rss_floor_mb: float = RSS_FLOOR_MB,
) -> list[DriftFinding]:
    """Evaluate each group's latest record against its rolling baseline.

    Groups with no preceding record (nothing to compare against) produce
    no findings — an empty or single-run ledger always passes.
    """
    findings: list[DriftFinding] = []
    for group in group_records(records).values():
        if len(group) < 2:
            continue
        baseline = group[-1 - baseline_window:-1]
        findings.extend(compare_records(
            baseline, group[-1],
            timing_tolerance=timing_tolerance,
            noise_floor_s=noise_floor_s,
            fidelity_tolerance=fidelity_tolerance,
            rss_tolerance=rss_tolerance,
            rss_floor_mb=rss_floor_mb,
        ))
    return findings


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    fidelity_tolerance: float = FIDELITY_TOLERANCE,
) -> str:
    """Human-readable diff of two records (``repro runs diff A B``).

    Phase timings side by side, fidelity deviations side by side, and a
    final verdict line counting probes whose deviation grew beyond
    ``fidelity_tolerance``.
    """
    lines = [
        f"runs {a.get('run_id')} -> {b.get('run_id')}",
        f"  group: {group_label(a)} -> {group_label(b)}",
        f"  total wall: {a.get('total_wall_s', 0.0):.3f}s -> "
        f"{b.get('total_wall_s', 0.0):.3f}s",
        "",
        f"  {'phase':<32} {'A wall':>10} {'B wall':>10} {'delta':>9}",
    ]
    walls_a, walls_b = _phase_walls(a), _phase_walls(b)
    for phase in sorted(set(walls_a) | set(walls_b)):
        wa, wb = walls_a.get(phase), walls_b.get(phase)
        if wa is None or wb is None:
            side = "A" if wa is not None else "B"
            value = wa if wa is not None else wb
            lines.append(
                f"  {phase:<32} {'-' if wa is None else f'{wa:9.3f}s':>10} "
                f"{'-' if wb is None else f'{wb:9.3f}s':>10} "
                f"{'only ' + side:>9}"
            )
            continue
        delta = (wb - wa) / wa * 100 if wa > 0 else 0.0
        lines.append(
            f"  {phase:<32} {wa:9.3f}s {wb:9.3f}s {delta:+8.1f}%"
        )

    devs_a, devs_b = _fidelity_devs(a), _fidelity_devs(b)
    shared = sorted(set(devs_a) & set(devs_b))
    drifted: list[str] = []
    if shared:
        lines.append("")
        lines.append(
            f"  {'fidelity probe':<32} {'A dev':>10} {'B dev':>10}"
        )
        for probe in shared:
            da, db = devs_a[probe], devs_b[probe]
            marker = ""
            if db > da + fidelity_tolerance:
                drifted.append(probe)
                marker = "  <- drift"
            lines.append(f"  {probe:<32} {da:>10.4f} {db:>10.4f}{marker}")
        lines.append("")
        if drifted:
            lines.append(
                f"fidelity drift: {len(drifted)} probe(s) moved away from "
                f"the paper beyond tolerance ({', '.join(drifted)})"
            )
        else:
            lines.append(
                f"fidelity drift: none ({len(shared)} probes within "
                f"tolerance {fidelity_tolerance:g})"
            )
    return "\n".join(lines)
