"""Trace exporters: timing tree, JSON trace files, and summaries.

Three consumers, one span schema:

- :func:`render_tree` — the human-readable nested timing tree printed after
  a ``--trace`` CLI run;
- :func:`write_trace_json` — a stable JSON file (schema below) for diffing
  runs across commits (``scripts/bench_guard.py --trace-diff``);
- :func:`summarize_trace` — the per-span-name aggregate table behind the
  ``repro trace`` command.

JSON schema (one object per span, ``schema`` bumped on incompatible change)::

    {
      "schema": 1, "name": "repro report", "created_unix": ...,
      "total_wall_s": ..., "metrics": {"counters": ..., "gauges": ...,
      "histograms": ...},
      "spans": [
        {"index": 0, "parent": -1, "name": "cli.report", "start_s": 0.0,
         "wall_s": 1.23, "cpu_s": 1.10, "pid": 1234, "thread": "MainThread",
         "attrs": {"scale": "tiny"}, "mem_alloc_bytes": null,
         "mem_peak_bytes": null},
        ...
      ]
    }

``start_s`` is relative to the trace start; ``parent`` indexes into the
``spans`` list (-1 for roots).  Spans folded back from worker processes
keep their worker ``pid``, so parallel sections are attributable.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Mapping

from repro.obs import metrics
from repro.obs.trace import Trace

#: Bump when the JSON span schema changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Sibling spans with the same name and no children collapse into one
#: aggregate tree line once there are at least this many of them.
_COLLAPSE_AT = 3


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """The trace plus a metrics snapshot as one JSON-able document."""
    spans = []
    for record in trace.spans:
        spans.append(
            {
                "index": record.index,
                "parent": record.parent,
                "name": record.name,
                "start_s": round(record.t0 - trace.t0, 6),
                "wall_s": round(record.wall_s, 6),
                "cpu_s": round(record.cpu_s, 6),
                "pid": record.pid,
                "thread": record.thread,
                "attrs": record.attrs,
                "mem_alloc_bytes": record.mem_alloc_bytes,
                "mem_peak_bytes": record.mem_peak_bytes,
            }
        )
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "name": trace.name,
        "created_unix": trace.created_unix,
        "total_wall_s": round(trace.total_wall_s, 6),
        "metrics": metrics.snapshot(),
        "spans": spans,
    }


def write_trace_json(trace: Trace | Mapping[str, Any], path: str | Path) -> Path:
    """Write the trace document to ``path``; returns the resolved path."""
    doc = trace if isinstance(trace, Mapping) else trace_to_dict(trace)
    out = Path(path)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, default=str) + "\n")
    return out


def load_trace(path: str | Path) -> dict[str, Any]:
    """Read a trace document written by :func:`write_trace_json`."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or "spans" not in doc:
        raise ValueError(f"{path}: not a repro trace file (no 'spans' key)")
    if doc.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: trace schema {doc.get('schema')!r} is not "
            f"{TRACE_SCHEMA_VERSION}"
        )
    return doc


def _as_doc(trace: Trace | Mapping[str, Any]) -> Mapping[str, Any]:
    return trace if isinstance(trace, Mapping) else trace_to_dict(trace)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.1f} ms"


def _fmt_attrs(attrs: Mapping[str, Any]) -> str:
    if not attrs:
        return ""
    return "  " + " ".join(f"{k}={v}" for k, v in attrs.items())


def render_tree(trace: Trace | Mapping[str, Any]) -> str:
    """The nested timing tree, one line per span (or aggregate of spans).

    Childless sibling spans sharing a name (per-chunk worker spans, repeated
    figure calls) collapse into one ``name xN`` aggregate line so wide
    fan-outs stay readable.
    """
    doc = _as_doc(trace)
    spans = doc["spans"]
    children: dict[int, list[int]] = defaultdict(list)
    for record in spans:
        children[record["parent"]].append(record["index"])

    lines = [
        f"trace {doc.get('name', '?')!r}: {len(spans)} spans, "
        f"total {doc.get('total_wall_s', 0.0):.3f}s"
    ]

    def emit(index: int, depth: int) -> None:
        record = spans[index]
        indent = "  " * depth
        mem = ""
        if record.get("mem_peak_bytes") is not None:
            mem = (
                f"  alloc {record['mem_alloc_bytes'] / 1e6:+.1f} MB"
                f" peak {record['mem_peak_bytes'] / 1e6:.1f} MB"
            )
        lines.append(
            f"{indent}{record['name']:<{max(44 - 2 * depth, 8)}}"
            f"{_fmt_ms(record['wall_s'])}  cpu {_fmt_ms(record['cpu_s'])}"
            f"{mem}{_fmt_attrs(record.get('attrs', {}))}"
        )
        kids = children.get(index, [])
        groups: dict[str, list[int]] = defaultdict(list)
        for kid in kids:
            groups[spans[kid]["name"]].append(kid)
        for kid in kids:
            name = spans[kid]["name"]
            group = groups[name]
            collapsible = len(group) >= _COLLAPSE_AT and all(
                g not in children for g in group
            )
            if not collapsible:
                emit(kid, depth + 1)
                continue
            if kid != group[0]:
                continue  # aggregate emitted with the first sibling
            walls = [spans[g]["wall_s"] for g in group]
            pids = {spans[g]["pid"] for g in group}
            pid_note = f" pids={len(pids)}" if len(pids) > 1 else ""
            lines.append(
                f"{'  ' * (depth + 1)}{name} x{len(group):<4}"
                f"{' ' * max(38 - 2 * (depth + 1) - len(name) - 1, 1)}"
                f"{_fmt_ms(sum(walls))}  "
                f"avg {_fmt_ms(sum(walls) / len(walls))}  "
                f"max {_fmt_ms(max(walls))}{pid_note}"
            )

    for record in spans:
        if record["parent"] < 0:
            emit(record["index"], 0)
    return "\n".join(lines)


def summarize_trace(trace: Trace | Mapping[str, Any], *, top: int = 30) -> str:
    """Aggregate table: per span name, count / total / mean wall and CPU."""
    doc = _as_doc(trace)
    totals = aggregate_by_name(doc)
    total_wall = doc.get("total_wall_s") or max(
        (sum(v["wall_s"] for v in totals.values()), 1e-12)
    )
    lines = [
        f"{'span':<36} {'count':>6} {'total':>12} {'mean':>12} "
        f"{'cpu':>12} {'share':>7}"
    ]
    ranked = sorted(totals.items(), key=lambda kv: -kv[1]["wall_s"])
    for name, agg in ranked[:top]:
        lines.append(
            f"{name:<36} {agg['count']:>6}"
            f" {_fmt_ms(agg['wall_s'])} {_fmt_ms(agg['wall_s'] / agg['count'])}"
            f" {_fmt_ms(agg['cpu_s'])} {agg['wall_s'] / total_wall:>6.1%}"
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more span names")
    return "\n".join(lines)


def summarize_histograms(trace: Trace | Mapping[str, Any]) -> str:
    """Per-histogram one-liners (count / mean / p50-ish bucket) from the
    embedded metrics snapshot; empty string when nothing was observed."""
    doc = _as_doc(trace)
    hists = (doc.get("metrics") or {}).get("histograms") or {}
    lines: list[str] = []
    for name in sorted(hists):
        snap = hists[name]
        count = snap.get("count", 0)
        if not count:
            continue
        mean = snap.get("sum", 0.0) / count
        half = count / 2
        p50 = "+Inf"
        for bucket in snap.get("buckets", []):
            if bucket["count"] >= half:
                p50 = bucket["le"]
                break
        p50_s = p50 if isinstance(p50, str) else f"{p50:g}s"
        lines.append(
            f"{name:<36} {count:>6} {_fmt_ms(mean)} mean   p50 <= {p50_s}"
        )
    if not lines:
        return ""
    header = f"{'histogram':<36} {'count':>6} {'per-observation':>16}"
    return "\n".join([header, *lines])


def aggregate_by_name(
    trace: Trace | Mapping[str, Any]
) -> dict[str, dict[str, float]]:
    """Per-span-name totals: ``{name: {count, wall_s, cpu_s}}``."""
    doc = _as_doc(trace)
    totals: dict[str, dict[str, float]] = {}
    for record in doc["spans"]:
        agg = totals.setdefault(
            record["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        agg["count"] += 1
        agg["wall_s"] += record["wall_s"]
        agg["cpu_s"] += record["cpu_s"]
    return totals
