"""repro.obs — observability for the study pipeline.

Three pieces, one import:

- **Span tracing** (:mod:`repro.obs.trace`): ``with obs.span("simulate"):``
  regions with wall/CPU time, optional ``tracemalloc`` numbers, and
  attributes; nested per thread, folded back from ``repro.parallel``
  worker processes.  Off by default; ``obs.enable()``, the CLI ``--trace``
  flag, or ``REPRO_TRACE=1`` turn it on.
- **Metrics** (:mod:`repro.obs.metrics`): process-global counters, gauges,
  and fixed-bucket histograms (``cache.hit``, ``cluster.pairs_compared``,
  ``groupby.fastpath_taken``, …), always on — updates are per-phase, not
  per-row.
- **Exporters** (:mod:`repro.obs.export`): a human-readable timing tree, a
  stable JSON trace file for cross-commit diffing, and per-span-name
  summaries (the ``repro trace`` command).

See the "Observability" section of ``docs/architecture.md`` for the span
schema and the metric-name inventory.
"""

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    aggregate_by_name,
    load_trace,
    render_tree,
    summarize_histograms,
    summarize_trace,
    trace_to_dict,
    write_trace_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    counter_deltas,
    gauge,
    histogram,
    histogram_deltas,
    merge_counter_deltas,
    merge_histogram_deltas,
    nonzero_counters,
)
from repro.obs.metrics import reset as reset_metrics
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_MEM_ENV,
    SpanRecord,
    Trace,
    current_trace,
    disable,
    enable,
    enabled,
    env_enabled,
    finish,
    fold_spans,
    span,
    traced,
    worker_collector,
)

# The run ledger / drift / dashboard / sampler / live layers sit on top of
# metrics+export and lazily import repro.cache/repro.faults inside
# functions, so importing them last keeps `import repro.obs` cycle-free
# while exposing them as obs.ledger / obs.drift / obs.dashboard /
# obs.sampler / obs.live / obs.promexport submodule attributes.
from repro.obs import (  # noqa: E402
    dashboard,
    drift,
    ledger,
    live,
    promexport,
    sampler,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TRACE_ENV",
    "TRACE_MEM_ENV",
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Trace",
    "aggregate_by_name",
    "counter",
    "counter_deltas",
    "current_trace",
    "dashboard",
    "disable",
    "drift",
    "enable",
    "enabled",
    "env_enabled",
    "finish",
    "fold_spans",
    "gauge",
    "histogram",
    "histogram_deltas",
    "ledger",
    "live",
    "load_trace",
    "merge_counter_deltas",
    "merge_histogram_deltas",
    "metrics_snapshot",
    "nonzero_counters",
    "promexport",
    "render_tree",
    "reset_metrics",
    "sampler",
    "span",
    "summarize_histograms",
    "summarize_trace",
    "trace_to_dict",
    "traced",
    "worker_collector",
    "write_trace_json",
]
