"""Persistent run ledger: a flight recorder for study and benchmark runs.

One trace (:mod:`repro.obs.trace`) dies with its process; the ledger is the
cross-run memory.  After every study-building CLI command (and every
``scripts/bench_guard.py`` benchmark run) a schema-versioned JSON record is
appended to a JSONL file under the ledger directory, capturing:

- identity — run id, creation time, best-effort git SHA, record ``kind``
  (``study`` or ``bench``) and the command that produced it;
- configuration — scale, seed, worker count, fault spec, cache mode;
- performance — total wall time plus per-phase wall/CPU totals folded from
  the span tree (:func:`repro.obs.export.aggregate_by_name`);
- metrics — the final nonzero counters, gauges, and histogram snapshots;
- cache state — entry count and total bytes of the study cache;
- fidelity — paper-vs-measured probes (:func:`fidelity_probes`) with the
  paper's published value, the measured value, and the relative deviation.

The drift engine (:mod:`repro.obs.drift`) and the ``repro runs`` CLI family
consume these records: ``list``/``show``/``diff`` for inspection, ``check``
for a CI gate, ``report`` for an HTML dashboard
(:mod:`repro.obs.dashboard`).

Durability rules mirror :mod:`repro.cache`: appends are best-effort (a full
disk never loses the run itself, it warns and counts
``ledger.append_failed``), reads skip corrupt or truncated lines while
counting ``ledger.corrupt`` — a half-written record from a crashed process
must not poison every later ``repro runs`` invocation.  The
``ledger.append:fail`` fault site (:mod:`repro.faults`) makes the failure
path deterministic in tests.

The ledger directory is ``.repro-ledger/`` in the current working
directory, overridden by ``REPRO_LEDGER_DIR``; ``REPRO_NO_LEDGER`` disables
recording entirely.  Recording is silent on stdout so command output stays
byte-stable across runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs import metrics as obs_metrics
from repro.obs.export import aggregate_by_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.figures.suite import FigureSuite
    from repro.study import Study

#: Bump when the record layout changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Environment variable overriding the ledger directory.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
#: Any non-empty value disables run recording.
NO_LEDGER_ENV = "REPRO_NO_LEDGER"

_DEFAULT_LEDGER_DIR = ".repro-ledger"
_LEDGER_FILE = "runs.jsonl"

_APPENDS = obs_metrics.counter("ledger.append")
_APPEND_FAILED = obs_metrics.counter("ledger.append_failed")
#: Lines (or whole records) that could not be parsed back — each is skipped,
#: never fatal, so one crashed writer cannot brick `repro runs`.
_CORRUPT = obs_metrics.counter("ledger.corrupt")

#: Fidelity probes: ledger key -> (figure method, result key, paper value).
#: The paper values are the same published statistics `repro validate`
#: checks; deviation is |measured / paper - 1| so drift is comparable
#: across probes of very different magnitudes.
FIDELITY_PROBES: dict[str, tuple[str, str, float]] = {
    "busiest_over_median": ("headline_load_variation", "busiest_over_median", 30.0),
    "lightest_over_median": ("headline_load_variation", "lightest_over_median", 0.0004),
    "weekday_weekend_ratio": ("fig03_weekday", "weekday_weekend_ratio", 2.0),
    "pickup_dominance_ratio": ("fig13_latency", "pickup_dominance_ratio", 40.0),
    "one_day_worker_fraction": ("fig30_lifetimes", "one_day_worker_fraction", 0.527),
    "one_day_task_share": ("fig30_lifetimes", "one_day_task_share", 0.024),
    "top10_worker_task_share": ("fig29_workload", "top10_task_share", 0.80),
    "top10_source_task_share": ("fig27_source_quality", "top10_task_share", 0.95),
    "top5_country_share": ("fig28_geography", "top5_share", 0.50),
}


def ledger_dir() -> Path:
    """The ledger root (``REPRO_LEDGER_DIR`` env var or ``.repro-ledger``)."""
    raw = os.environ.get(LEDGER_DIR_ENV, "").strip() or _DEFAULT_LEDGER_DIR
    return Path(raw).expanduser()


def ledger_path() -> Path:
    """The JSONL file every record appends to."""
    return ledger_dir() / _LEDGER_FILE


def ledger_enabled(explicit: bool | None = None) -> bool:
    """Whether runs should be recorded (``REPRO_NO_LEDGER`` disables)."""
    if explicit is not None:
        return explicit
    return not os.environ.get(NO_LEDGER_ENV, "").strip()


def new_run_id(created_unix: float | None = None) -> str:
    """``YYYYMMDDTHHMMSS-xxxxxx``: sortable timestamp plus random suffix."""
    created = time.time() if created_unix is None else created_unix
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(created))
    return f"{stamp}-{os.urandom(3).hex()}"


_git_sha_cache: str | None = None


def git_sha() -> str | None:
    """Best-effort HEAD SHA (cached per process; ``None`` outside a repo)."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                capture_output=True, text=True, timeout=5,
            )
            _git_sha_cache = out.stdout.strip() if out.returncode == 0 else ""
        except Exception:
            _git_sha_cache = ""
    return _git_sha_cache or None


def fidelity_probes(figures: "FigureSuite") -> dict[str, dict[str, float]]:
    """Paper-vs-measured probes from a study's figure suite.

    Returns ``{probe: {paper, measured, deviation}}`` where ``deviation``
    is ``|measured / paper - 1|``.  A probe whose figure method raises is
    skipped — a tiny degenerate sample must not block recording the run.
    """
    probes: dict[str, dict[str, float]] = {}
    results: dict[str, Mapping[str, Any]] = {}
    for name, (method, key, paper) in FIDELITY_PROBES.items():
        if method not in results:
            try:
                results[method] = getattr(figures, method)()
            except Exception:
                results[method] = {}
        measured = results[method].get(key)
        if measured is None:
            continue
        measured = float(measured)
        probes[name] = {
            "paper": paper,
            "measured": measured,
            "deviation": abs(measured / paper - 1.0),
        }
    return probes


def _cache_stats() -> dict[str, int]:
    from repro import cache as study_cache

    entries = study_cache.list_entries()
    return {
        "entries": len(entries),
        "size_bytes": sum(e.get("size_bytes", 0) for e in entries),
    }


def build_record(
    *,
    kind: str,
    command: str,
    config: Mapping[str, Any],
    trace_doc: Mapping[str, Any] | None = None,
    fidelity: Mapping[str, Mapping[str, float]] | None = None,
    extra: Mapping[str, Any] | None = None,
    created_unix: float | None = None,
) -> dict[str, Any]:
    """Assemble a schema-v1 ledger record (pure; does not touch disk).

    ``trace_doc`` is a schema-v1 trace document (:func:`trace_to_dict`);
    its span forest folds into per-phase totals and its embedded metrics
    snapshot becomes the record's counters/gauges/histograms.
    """
    created = time.time() if created_unix is None else created_unix
    record: dict[str, Any] = {
        "schema": LEDGER_SCHEMA_VERSION,
        "run_id": new_run_id(created),
        "created_unix": created,
        "kind": kind,
        "command": command,
        "git_sha": git_sha(),
        "config": dict(config),
    }
    if trace_doc is not None:
        phases = {
            name: {
                "count": int(agg["count"]),
                "wall_s": round(agg["wall_s"], 6),
                "cpu_s": round(agg["cpu_s"], 6),
            }
            for name, agg in sorted(aggregate_by_name(trace_doc).items())
        }
        snap = trace_doc.get("metrics") or {}
        record["total_wall_s"] = trace_doc.get("total_wall_s", 0.0)
        record["phases"] = phases
        record["counters"] = {
            k: v for k, v in (snap.get("counters") or {}).items() if v
        }
        record["gauges"] = {
            k: v for k, v in (snap.get("gauges") or {}).items() if v is not None
        }
        record["histograms"] = {
            k: v
            for k, v in (snap.get("histograms") or {}).items()
            if v.get("count")
        }
    record["cache"] = _cache_stats()
    if fidelity:
        record["fidelity"] = {k: dict(v) for k, v in sorted(fidelity.items())}
    if extra:
        record.update(extra)
    return record


def append_record(
    record: Mapping[str, Any], path: str | Path | None = None
) -> Path | None:
    """Append one record to the ledger file; best-effort like a cache write.

    Returns the path on success.  On any failure (including the injected
    ``ledger.append:fail`` fault) the run itself is unaffected: warn,
    count ``ledger.append_failed``, return ``None``.
    """
    from repro import faults

    out = Path(path) if path is not None else ledger_path()
    try:
        faults.check("ledger.append")
        out.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with out.open("a") as handle:
            handle.write(line + "\n")
    except OSError:
        _APPEND_FAILED.inc()
        warnings.warn(
            f"repro.obs.ledger: failed to append run record to {out} "
            f"(the run itself is unaffected)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    _APPENDS.inc()
    # Surface the append on the live event bus (no-op without SSE clients);
    # lazy import keeps the obs package import order cycle-free.
    from repro.obs import live

    live.publish(
        "run.recorded",
        run_id=record.get("run_id"),
        run_kind=record.get("kind"),
        command=record.get("command"),
    )
    return out


def read_records(path: str | Path | None = None) -> list[dict[str, Any]]:
    """Every readable schema-v1 record, in append (chronological) order.

    Corrupt or truncated lines — a crashed writer, a flipped bit — are
    skipped and counted in ``ledger.corrupt``.  Records from a different
    schema version are skipped silently (not damage, just another era).
    """
    source = Path(path) if path is not None else ledger_path()
    if not source.is_file():
        return []
    try:
        text = source.read_text()
    except OSError:
        _CORRUPT.inc()
        return []
    records: list[dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            _CORRUPT.inc()
            continue
        if not isinstance(record, dict) or "run_id" not in record:
            _CORRUPT.inc()
            continue
        if record.get("schema") != LEDGER_SCHEMA_VERSION:
            continue
        records.append(record)
    return records


def find_record(
    records: list[dict[str, Any]], ref: str
) -> dict[str, Any] | None:
    """Resolve a run reference: exact id, unique id prefix, or ``latest``.

    ``latest`` (or ``-1``) is the newest record; ties on a prefix return
    ``None`` rather than guessing.
    """
    if not records:
        return None
    if ref in ("latest", "-1"):
        return records[-1]
    exact = [r for r in records if r["run_id"] == ref]
    if exact:
        return exact[-1]
    prefixed = [r for r in records if r["run_id"].startswith(ref)]
    if len(prefixed) == 1:
        return prefixed[0]
    return None


# --------------------------------------------------------------------- #
# CLI run collection
# --------------------------------------------------------------------- #
#
# CLI command functions build a Study, print, and drop it — by the time
# main() emits the ledger record the figures suite is gone.  A collection
# is a short-lived hook: begin_collection() arms it, build_study() calls
# note_study() on every build (cached or cold), and end_collection()
# returns the captured fidelity probes.  Library use of build_study never
# arms a collection, so it stays zero-cost there.

_collection: dict[str, Any] | None = None


def begin_collection() -> None:
    """Arm the run collector for one CLI command."""
    global _collection
    _collection = {"fidelity": None}


def collecting() -> bool:
    """Whether a CLI run collection is currently armed."""
    return _collection is not None


def note_study(study: "Study") -> None:
    """Record the study a CLI command built (no-op unless collecting)."""
    if _collection is not None and _collection["fidelity"] is None:
        _collection["fidelity"] = fidelity_probes(study.figures)


def end_collection() -> dict[str, dict[str, float]] | None:
    """Disarm the collector and return the captured fidelity probes."""
    global _collection
    captured, _collection = _collection, None
    if captured is None:
        return None
    return captured["fidelity"]
