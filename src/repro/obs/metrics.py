"""Process-global metrics registry: counters, gauges, histograms.

Instruments are created once (typically bound to a module-level name at the
call site) and updated with plain attribute calls, so a disabled-tracing run
pays one integer add per event — events are per-phase or per-call, never
per-row, which keeps the hot kernels unobservably close to uninstrumented
speed (guarded by ``benchmarks/test_substrate_perf.py``).

Counters are monotonically increasing event counts (``cache.hit``,
``cluster.pairs_compared``); gauges hold the last observed value
(``parallel.workers``); histograms bucket observations against a fixed
bound list and export cumulative ``le`` counts plus sum/count, so two
snapshots can be diffed without knowing the raw observations.

``snapshot()`` renders the whole registry to plain JSON-able dicts — the
same structure embedded in trace files by :mod:`repro.obs.export` — and
``reset()`` zeroes every instrument (used by tests and by the CLI before a
traced command).  Worker processes forked by :mod:`repro.parallel` report
counter *deltas* back to the parent, which merges them with
``merge_counter_deltas`` so parallel runs converge to the serial counts.

Failure paths are first-class citizens of the registry: every degradation
the pipeline survives leaves a countable trace (``cache.corrupt``,
``cache.write_failed``, ``parallel.serial_fallback``,
``parallel.pool_retries``, ``parallel.timeout``, ``faults.injected``), so a
degraded-but-correct run is distinguishable from a healthy one by metrics
alone.  ``nonzero_counters(prefix)`` is the query helper for exactly that
kind of triage.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Mapping, Sequence

#: Default histogram bounds (seconds-flavored; callers may pass their own).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing event count.

    Increments take a per-instrument lock: counters are bumped from the main
    thread, the sampler daemon thread, and live-telemetry handler threads at
    once, and ``value += n`` is a read-modify-write that loses updates under
    preemption.  The lock is uncontended in the common case, so the cost
    stays within the <3% instrumentation bound guarded by
    ``benchmarks/test_substrate_perf.py``.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """The last observed value of a quantity (``None`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | int | None = None

    def set(self, value: float | int) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None

    def snapshot(self) -> float | int | None:
        return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` export.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit ``+Inf`` bucket catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "_counts", "total", "count", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self._counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # An observation mutates three fields; the lock keeps a concurrent
        # snapshot() from seeing count bumped before the bucket/sum landed.
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self.total += value
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self.total = 0.0
            self.count = 0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self.total
            count = self.count
        cumulative = []
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": running + counts[-1]})
        return {"buckets": cumulative, "sum": total, "count": count}

    def raw(self) -> dict[str, Any]:
        """Non-cumulative state, suitable for diffing and re-merging.

        Unlike :meth:`snapshot` (cumulative ``le`` export for human/JSON
        consumers), ``raw`` exposes the per-bucket counts directly so two
        captures can be subtracted and the difference folded into another
        registry (worker-process delta shipping).
        """
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self.total,
                "count": self.count,
            }

    def merge_raw(self, raw: Mapping[str, Any]) -> None:
        """Fold a :meth:`raw` capture (or delta of two) into this histogram."""
        if tuple(float(b) for b in raw["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge capture with bounds "
                f"{raw['bounds']} into bounds {list(self.bounds)}"
            )
        with self._lock:
            for i, n in enumerate(raw["counts"]):
                self._counts[i] += n
            self.total += raw["sum"]
            self.count += raw["count"]


class MetricsRegistry:
    """Name-addressed instrument store (one per process)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, *args) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = kind(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def _instrument_items(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        """A point-in-time copy of the instrument table.

        Readers iterate the copy so a concurrent ``_get_or_create`` (any
        thread touching a new metric name mutates the dict) can never raise
        ``RuntimeError: dictionary changed size during iteration`` under
        them.
        """
        with self._lock:
            return list(self._instruments.items())

    def counter_values(self) -> dict[str, int]:
        """Current value of every counter (used for worker deltas)."""
        return {
            name: inst.value
            for name, inst in self._instrument_items()
            if isinstance(inst, Counter)
        }

    def nonzero_counters(self, prefix: str = "") -> dict[str, int]:
        """Nonzero counters whose name starts with ``prefix``, name-sorted.

        The triage query: ``nonzero_counters("cache.")`` shows this
        process's cache traffic, ``nonzero_counters("parallel.")`` whether
        (and why) any map degraded.
        """
        return {
            name: value
            for name, inst in sorted(self._instrument_items())
            if isinstance(inst, Counter)
            and (value := inst.value)
            and name.startswith(prefix)
        }

    def merge_counter_deltas(self, deltas: Mapping[str, int]) -> None:
        """Fold counter increments observed in a worker process back in."""
        for name, delta in deltas.items():
            if delta:
                self.counter(name).inc(delta)

    def histogram_values(self) -> dict[str, dict[str, Any]]:
        """Raw (non-cumulative) state of every histogram (for worker deltas)."""
        return {
            name: inst.raw()
            for name, inst in self._instrument_items()
            if isinstance(inst, Histogram)
        }

    def merge_histogram_deltas(
        self, deltas: Mapping[str, Mapping[str, Any]]
    ) -> None:
        """Fold histogram observations made in a worker process back in.

        Each delta is a :meth:`Histogram.raw`-shaped dict (typically the
        difference of two captures, see :func:`histogram_deltas`); unknown
        names create the instrument with the shipped bounds.
        """
        for name, raw in deltas.items():
            if raw["count"]:
                self.histogram(name, raw["bounds"]).merge_raw(raw)

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as plain JSON-able dicts.

        Safe to call from any thread at any time: the instrument table is
        copied under the registry lock and each instrument renders itself
        under its own lock, so ``/metrics`` scrapes racing the sampler
        daemon thread and main-thread increments always see a consistent
        per-instrument state (a histogram's buckets, sum, and count agree).
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float | int | None] = {}
        histograms: dict[str, Any] = {}
        for name, inst in sorted(self._instrument_items()):
            if isinstance(inst, Counter):
                counters[name] = inst.snapshot()
            elif isinstance(inst, Gauge):
                gauges[name] = inst.snapshot()
            else:
                histograms[name] = inst.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        for _, inst in self._instrument_items():
            inst.reset()


def counter_deltas(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Per-counter difference of two :meth:`MetricsRegistry.counter_values`
    captures, keeping only counters that moved in between.

    The one delta computation behind worker-to-parent counter shipping —
    both :class:`repro.obs.trace.worker_collector` and the untraced path in
    ``repro.parallel`` go through here.
    """
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def histogram_deltas(
    before: Mapping[str, Mapping[str, Any]],
    after: Mapping[str, Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Per-histogram difference of two :meth:`MetricsRegistry.histogram_values`
    captures, keeping only histograms that saw observations in between."""
    deltas: dict[str, dict[str, Any]] = {}
    for name, now in after.items():
        was = before.get(name)
        if was is None:
            if now["count"]:
                deltas[name] = {
                    "bounds": list(now["bounds"]),
                    "counts": list(now["counts"]),
                    "sum": now["sum"],
                    "count": now["count"],
                }
            continue
        if now["count"] == was["count"]:
            continue
        deltas[name] = {
            "bounds": list(now["bounds"]),
            "counts": [n - w for n, w in zip(now["counts"], was["counts"])],
            "sum": now["sum"] - was["sum"],
            "count": now["count"] - was["count"],
        }
    return deltas


#: The process-global registry every ``repro`` instrument lives in.
REGISTRY = MetricsRegistry()

counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram
snapshot = REGISTRY.snapshot
reset = REGISTRY.reset
merge_counter_deltas = REGISTRY.merge_counter_deltas
nonzero_counters = REGISTRY.nonzero_counters
merge_histogram_deltas = REGISTRY.merge_histogram_deltas
