"""Prometheus text exposition of the metrics registry.

Renders a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` to the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ (version
0.0.4) so any scraper — Prometheus itself, ``curl``, or the live dashboard
— can consume the same registry the trace exporters embed in JSON.

Mapping rules
-------------
- Dotted instrument names become underscore metric names with a ``repro_``
  namespace prefix: ``cache.hit`` → ``repro_cache_hit``.
- Counters are exported with the conventional ``_total`` suffix.
- Gauges export their last observed value; unset gauges (``None``) are
  omitted entirely rather than invented as zero.
- Histograms export cumulative ``_bucket{le="..."}`` series (including the
  mandatory ``le="+Inf"``) plus ``_sum`` and ``_count`` — exactly the shape
  :meth:`Histogram.snapshot` already produces.

The renderer is a pure function over a snapshot dict, so it is trivially
testable against golden output and imposes zero cost until scraped.
Because worker-process counter and histogram deltas are folded into the
parent registry by :mod:`repro.parallel`, a scrape of the parent reflects
pool-worker activity as soon as each chunk's results fold in.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from repro.obs import metrics

#: Namespace prefix applied to every exported metric name.
PROM_PREFIX = "repro_"

#: Content-Type for the exposition (what a Prometheus scraper expects).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def prom_name(name: str) -> str:
    """Sanitize a dotted instrument name into a valid Prometheus name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if _INVALID_FIRST.match(sanitized):
        sanitized = "_" + sanitized
    return PROM_PREFIX + sanitized


def _fmt(value: float | int) -> str:
    """Render a sample value: integers bare, floats via ``repr`` (lossless)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _fmt_le(bound: float | str) -> str:
    """Render a bucket's ``le`` label value (``+Inf`` stays literal)."""
    if isinstance(bound, str):
        return bound
    return format(float(bound), "g")


def render_prometheus(snapshot: Mapping[str, Any] | None = None) -> str:
    """Render a registry snapshot (default: the global registry) to text.

    Returns the full exposition, terminated by a newline as the format
    requires.  Families are emitted name-sorted within each kind so output
    is deterministic and diffable.
    """
    if snapshot is None:
        snapshot = metrics.snapshot()
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = prom_name(name)
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        metric = prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for bucket in hist["buckets"]:
            le = _fmt_le(bucket["le"])
            lines.append(f'{metric}_bucket{{le="{le}"}} {bucket["count"]}')
        lines.append(f"{metric}_sum {_fmt(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n" if lines else "\n"
