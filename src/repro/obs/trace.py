"""Hierarchical span tracer for the study pipeline.

A *span* is one timed region of the pipeline (``simulate``, ``cluster.minhash``,
``figures.fig03_weekday``, …) with wall time, per-thread CPU time, optional
``tracemalloc`` numbers, and free-form key/value attributes.  Spans nest: the
active span of each thread is tracked on a thread-local stack, so the
collected trace is a forest addressed by parent index.

Tracing is **disabled by default** and the disabled path is a single module
global check returning a shared no-op handle — cheap enough to leave
``span()`` calls in hot-adjacent code (the per-call cost is asserted against
the substrate benchmarks).  Enable with :func:`enable` (the CLI ``--trace``
flag) or the ``REPRO_TRACE`` environment variable; add ``tracemalloc``
numbers per span with ``mem=True`` or ``REPRO_TRACE_MEM``.

Worker processes forked by :mod:`repro.parallel` run their chunks under a
:class:`worker_collector`, which records spans against a fresh local trace
and ships them (plus counter deltas) back to the parent, where
:func:`fold_spans` grafts them under the parent's active span — a traced
parallel run therefore shows per-chunk worker spans inside the
``parallel.map`` span that spawned them.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, TypeVar

from repro.obs import metrics

#: Any non-empty value other than 0/false/no/off enables tracing at import.
TRACE_ENV = "REPRO_TRACE"
#: Same truthiness rules; adds tracemalloc numbers to every span.
TRACE_MEM_ENV = "REPRO_TRACE_MEM"

_FALSEY = {"", "0", "false", "no", "off"}

_F = TypeVar("_F", bound=Callable[..., Any])


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSEY


def env_enabled() -> bool:
    """Whether the ``REPRO_TRACE`` environment variable requests tracing."""
    return _env_truthy(TRACE_ENV)


@dataclass
class SpanRecord:
    """One finished (or in-flight) span.  Picklable for worker folding."""

    name: str
    t0: float  # absolute time.perf_counter() at entry
    index: int = -1  # position within the owning trace
    parent: int = -1  # index of the parent span, -1 for roots
    wall_s: float = 0.0
    cpu_s: float = 0.0
    pid: int = 0
    thread: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    mem_alloc_bytes: int | None = None  # net tracemalloc delta over the span
    mem_peak_bytes: int | None = None  # process traced peak at span exit


class Trace:
    """An append-only span collector; spans reference parents by index."""

    def __init__(self, name: str = "trace"):
        self.name = name
        self.t0 = time.perf_counter()
        self.created_unix = time.time()
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()

    def add(self, record: SpanRecord) -> int:
        with self._lock:
            record.index = len(self.spans)
            self.spans.append(record)
            return record.index

    def fold(self, records: Sequence[SpanRecord], under: int) -> None:
        """Graft spans collected in a worker process beneath span ``under``.

        Worker records index their parents within their own list (in append
        order), so offsetting by the current length keeps every parent
        reference valid; worker roots re-parent to ``under``.
        """
        with self._lock:
            offset = len(self.spans)
            for record in records:
                record.parent = (
                    under if record.parent < 0 else record.parent + offset
                )
                record.index = len(self.spans)
                self.spans.append(record)

    @property
    def total_wall_s(self) -> float:
        roots = [s for s in self.spans if s.parent < 0]
        if not roots:
            return 0.0
        start = min(s.t0 for s in roots)
        end = max(s.t0 + s.wall_s for s in roots)
        return end - start


# --------------------------------------------------------------------- #
# Global tracer state
# --------------------------------------------------------------------- #

_enabled = False
_mem_enabled = False
_trace: Trace | None = None
_tls = threading.local()

# Optional span listener, installed by repro.obs.live while a telemetry
# server is running: called as listener("open"|"close", record) from
# _Span.__enter__/__exit__.  One module-global check when absent, so the
# no-server path costs nothing.  Listeners must never raise (live.py's
# listener swallows its own errors); they run on the recording thread.
_span_listener: Callable[[str, SpanRecord], None] | None = None


def set_span_listener(
    listener: Callable[[str, SpanRecord], None] | None,
) -> None:
    """Install (or with ``None`` remove) the global span event listener."""
    global _span_listener
    _span_listener = listener


def _stack() -> list[int]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def enabled() -> bool:
    """Whether spans are currently being recorded in this process."""
    return _enabled


def enable(name: str = "trace", *, mem: bool | None = None) -> Trace:
    """Start a fresh trace and turn span recording on.

    ``mem`` adds ``tracemalloc`` numbers to every span; ``None`` defers to
    the ``REPRO_TRACE_MEM`` environment variable.  Returns the new trace.
    """
    global _enabled, _mem_enabled, _trace
    _mem_enabled = _env_truthy(TRACE_MEM_ENV) if mem is None else mem
    if _mem_enabled:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
    _trace = Trace(name)
    _tls.stack = []
    _enabled = True
    return _trace


def disable() -> None:
    """Stop recording spans (the collected trace stays readable)."""
    global _enabled
    _enabled = False


def finish() -> Trace | None:
    """Stop recording and return the collected trace (``None`` if never on)."""
    global _enabled, _trace
    _enabled = False
    trace, _trace = _trace, None
    _tls.stack = []
    return trace


def current_trace() -> Trace | None:
    """The active trace, if tracing is enabled."""
    return _trace if _enabled else None


class _NullSpan:
    """Shared no-op handle returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: context manager and attribute sink."""

    __slots__ = ("_name", "_attrs", "_record", "_cpu0", "_mem0")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        trace = _trace
        if trace is None:  # disabled between construction and entry
            self._record = None
            return self
        stack = _stack()
        record = SpanRecord(
            name=self._name,
            t0=time.perf_counter(),
            parent=stack[-1] if stack else -1,
            pid=os.getpid(),
            thread=threading.current_thread().name,
            attrs=self._attrs,
        )
        stack.append(trace.add(record))
        self._record = record
        if _span_listener is not None:
            _span_listener("open", record)
        if _mem_enabled:
            import tracemalloc

            self._mem0 = tracemalloc.get_traced_memory()[0]
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        if record is None:
            return False
        record.cpu_s = time.thread_time() - self._cpu0
        record.wall_s = time.perf_counter() - record.t0
        if _mem_enabled:
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            record.mem_alloc_bytes = current - self._mem0
            record.mem_peak_bytes = peak
        if exc_type is not None:
            record.attrs["error"] = exc_type.__name__
        stack = _stack()
        if stack and stack[-1] == record.index:
            stack.pop()
        if _span_listener is not None:
            _span_listener("close", record)
        return False

    def set(self, key: str, value: Any) -> None:
        """Attach a key/value attribute to the span."""
        if self._record is not None:
            self._record.attrs[key] = value
        else:
            self._attrs[key] = value


def span(name: str, **attrs: Any) -> _Span | _NullSpan:
    """Open a traced region: ``with span("simulate", seed=7) as sp: ...``.

    When tracing is disabled this returns a shared no-op handle — one
    global check, no allocation.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, {k: v for k, v in attrs.items() if v is not None})


def traced(name: str | None = None, **attrs: Any) -> Callable[[_F], _F]:
    """Decorator form of :func:`span`; the disabled path is a direct call."""

    def decorate(func: _F) -> _F:
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any):
            if not _enabled:
                return func(*args, **kwargs)
            with span(label, **attrs):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


# --------------------------------------------------------------------- #
# Worker-process folding
# --------------------------------------------------------------------- #


class worker_collector:
    """Collect spans and metric deltas inside a forked worker.

    Replaces the (possibly fork-inherited) global trace with a fresh local
    one for the duration of the block, then restores it.  After exit,
    ``spans`` holds the records produced inside the block,
    ``counter_deltas`` the counter increments, and ``histogram_deltas`` the
    histogram observations made inside the block, all picklable for the
    trip back to the parent process.
    """

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.counter_deltas: dict[str, int] = {}
        self.histogram_deltas: dict[str, dict[str, Any]] = {}

    def __enter__(self) -> "worker_collector":
        global _enabled, _trace
        self._prev = (_enabled, _trace, getattr(_tls, "stack", None))
        self._counters0 = metrics.REGISTRY.counter_values()
        self._hists0 = metrics.REGISTRY.histogram_values()
        _trace = Trace("worker")
        _tls.stack = []
        _enabled = True
        self.spans = _trace.spans
        return self

    def __exit__(self, *exc_info: object) -> bool:
        global _enabled, _trace
        self.counter_deltas = metrics.counter_deltas(
            self._counters0, metrics.REGISTRY.counter_values()
        )
        self.histogram_deltas = metrics.histogram_deltas(
            self._hists0, metrics.REGISTRY.histogram_values()
        )
        _enabled, _trace, stack = self._prev
        _tls.stack = stack if stack is not None else []
        return False


def fold_spans(records: Sequence[SpanRecord]) -> None:
    """Graft worker span records under the calling thread's active span."""
    if not _enabled or _trace is None or not records:
        return
    stack = _stack()
    _trace.fold(records, stack[-1] if stack else -1)


# Honor REPRO_TRACE at import so plain library use (no CLI) is traceable.
if env_enabled():  # pragma: no cover - exercised via subprocess tests
    enable(name="repro")
