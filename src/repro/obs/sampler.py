"""Continuous resource telemetry (:mod:`repro.obs.sampler`).

A daemon thread samples the process every ``REPRO_SAMPLE_MS`` (or CLI
``--sample``) milliseconds into a schema-v1 **resource timeline**:

- **RSS** from ``/proc/self/statm`` (resident pages × page size),
- **CPU%** from :func:`os.times` deltas between consecutive samples,
- **open file descriptors** from ``/proc/self/fd``,
- **spill-store bytes** by sizing the shard spill directory under the
  active study cache (``<cache>/.shards``).

The sampler never writes to stdout/stderr and touches no shared state the
pipeline reads, so a sampled run produces byte-identical study output —
``scripts/reproduce_all.sh`` diffs a sampled medium report against the
clean one to prove it.  Every reader degrades to ``0`` on non-Linux
platforms rather than failing.

Alongside the continuous samples, :mod:`repro.parallel` ships each pool
chunk's ``(pid, start, end)`` busy interval back to the driver (see
``_ChunkRunner``) and :func:`note_interval` collects them while a sampler
is active; :func:`utilization_from_trace` folds the equivalent span
intervals out of a finished trace.  Both feed the per-worker utilization
(Gantt) timeline on the run dashboard.

Timestamps: worker intervals use ``time.perf_counter()``, which on Linux
is ``CLOCK_MONOTONIC`` — system-wide and fork-consistent — so values taken
inside worker processes are directly comparable with the parent's span
clock.  Timeline ``t_s`` values are relative to sampler start.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Mapping

from repro.obs import metrics

#: Environment variable: sampling interval in milliseconds (unset/0 = off).
SAMPLE_MS_ENV = "REPRO_SAMPLE_MS"
#: Bump when the timeline schema changes incompatibly.
TIMELINE_SCHEMA_VERSION = 1
#: Interval used when sampling is requested without an explicit value.
DEFAULT_INTERVAL_MS = 50.0

#: Hard caps so a runaway run cannot grow unbounded telemetry state.
_MAX_SAMPLES = 100_000
_MAX_INTERVALS = 50_000

_SAMPLES = metrics.counter("sampler.samples")
_ERRORS = metrics.counter("sampler.errors")

# Optional tick listener, installed by repro.obs.live while a telemetry
# server runs: called with each completed sample dict from whichever thread
# took it.  One module-global check when absent; listeners must not raise.
_tick_listener: Callable[[Mapping[str, Any]], None] | None = None


def set_tick_listener(
    listener: Callable[[Mapping[str, Any]], None] | None,
) -> None:
    """Install (or with ``None`` remove) the sampler tick event listener."""
    global _tick_listener
    _tick_listener = listener

_STATM = "/proc/self/statm"
_FD_DIR = "/proc/self/fd"

try:
    _PAGE_BYTES = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_BYTES = 4096


def read_rss_mb() -> float:
    """Current resident set size in MiB (0.0 where /proc is unavailable)."""
    try:
        with open(_STATM) as handle:
            pages = int(handle.read().split()[1])
    except (OSError, ValueError, IndexError):
        return 0.0
    return pages * _PAGE_BYTES / (1024.0 * 1024.0)


def read_cpu_seconds() -> float:
    """Cumulative user+system CPU seconds of this process."""
    t = os.times()
    return t.user + t.system


def read_open_fds() -> int:
    """Open file descriptors (0 where /proc is unavailable)."""
    try:
        return len(os.listdir(_FD_DIR))
    except OSError:
        return 0


def read_spill_mb() -> float:
    """Total bytes currently in the shard spill store, in MiB.

    Walks ``<cache>/.shards`` — a handful of ``.npz`` files per shard — so
    one reading costs a few stat calls, well inside the sampling budget.
    """
    from repro.cache import cache_dir

    root = cache_dir() / ".shards"
    total = 0
    try:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                try:
                    total += os.stat(os.path.join(dirpath, name)).st_size
                except OSError:
                    continue
    except OSError:
        return 0.0
    return total / (1024.0 * 1024.0)


def default_reader() -> tuple[float, float, int, float]:
    """One raw reading: ``(rss_mb, cpu_seconds, open_fds, spill_mb)``."""
    return (read_rss_mb(), read_cpu_seconds(), read_open_fds(), read_spill_mb())


def peak_rss_mb() -> float:
    """Process high-water RSS in MiB from ``getrusage`` (0.0 if unknown).

    Cheaper than a timeline: the kernel tracks the maximum continuously,
    so this is exact even between samples — the ledger records it for
    every run, sampled or not, to feed the RSS drift guard.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    # ru_maxrss is KiB on Linux.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def sample_interval_ms(explicit: float | None = None) -> float | None:
    """Resolve the sampling interval: explicit value wins, then
    ``REPRO_SAMPLE_MS``; ``None`` means sampling is off."""
    if explicit is not None:
        return float(explicit) if explicit > 0 else None
    raw = os.environ.get(SAMPLE_MS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class ResourceSampler:
    """Background resource sampler producing a schema-v1 timeline.

    ``clock`` and ``reader`` are injectable so tests can drive the sampler
    deterministically (fake time, scripted readings) via
    :meth:`sample_once` without starting the thread.
    """

    def __init__(
        self,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        *,
        clock: Callable[[], float] = time.monotonic,
        reader: Callable[[], tuple[float, float, int, float]] = default_reader,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.interval_ms = float(interval_ms)
        self._clock = clock
        self._reader = reader
        self._samples: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0: float | None = None
        self._last_cpu: tuple[float, float] | None = None  # (t_s, cpu_s)
        self.error: str | None = None

    # Sampling --------------------------------------------------------- #

    def sample_once(self) -> dict[str, Any]:
        """Take one sample now (thread-safe); returns the sample."""
        now = self._clock()
        if self._t0 is None:
            self._t0 = now
        t_s = now - self._t0
        rss_mb, cpu_s, open_fds, spill_mb = self._reader()
        with self._lock:
            if self._last_cpu is not None:
                prev_t, prev_cpu = self._last_cpu
                dt = t_s - prev_t
                cpu_pct = 100.0 * (cpu_s - prev_cpu) / dt if dt > 0 else 0.0
            else:
                cpu_pct = 0.0
            self._last_cpu = (t_s, cpu_s)
            sample = {
                "t_s": round(t_s, 6),
                "rss_mb": round(rss_mb, 3),
                "cpu_pct": round(cpu_pct, 2),
                "open_fds": int(open_fds),
                "spill_mb": round(spill_mb, 3),
            }
            if len(self._samples) < _MAX_SAMPLES:
                self._samples.append(sample)
        _SAMPLES.inc()
        if _tick_listener is not None:
            _tick_listener(sample)
        return sample

    def _guarded_sample(self) -> bool:
        """One sample; on reader failure, record the error and report
        ``False`` so the thread shuts down instead of spinning."""
        try:
            self.sample_once()
            return True
        except Exception as exc:
            self.error = f"{type(exc).__name__}: {exc}"
            _ERRORS.inc()
            return False

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_ms / 1000.0):
            if not self._guarded_sample():
                return

    # Lifecycle -------------------------------------------------------- #

    def start(self) -> "ResourceSampler":
        """Take an initial sample and start the daemon thread."""
        if self._thread is not None:
            return self
        self._guarded_sample()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self) -> dict[str, Any]:
        """Stop the thread, take a final sample, and return the timeline."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.error is None:
            self._guarded_sample()
        return self.timeline()

    def timeline(self) -> dict[str, Any]:
        """The schema-v1 timeline document collected so far."""
        with self._lock:
            samples = list(self._samples)
        cpu = [s["cpu_pct"] for s in samples[1:]]  # first sample has no delta
        return {
            "schema": TIMELINE_SCHEMA_VERSION,
            "interval_ms": self.interval_ms,
            "num_samples": len(samples),
            "samples": samples,
            "peak_rss_mb": max((s["rss_mb"] for s in samples), default=0.0),
            "mean_cpu_pct": round(sum(cpu) / len(cpu), 2) if cpu else 0.0,
            "max_open_fds": max((s["open_fds"] for s in samples), default=0),
            "max_spill_mb": max((s["spill_mb"] for s in samples), default=0.0),
            "error": self.error,
        }


# --------------------------------------------------------------------- #
# Worker busy intervals (shipped by repro.parallel / repro.shard)
# --------------------------------------------------------------------- #

_INTERVALS: list[dict[str, Any]] = []
_INTERVALS_LOCK = threading.Lock()
_COLLECT_INTERVALS = False


def note_interval(pid: int, t0: float, t1: float, label: str = "") -> None:
    """Record one worker busy interval (``time.perf_counter`` endpoints).

    No-op unless a sampler is active, so steady-state runs carry no cost
    beyond one boolean check per pool chunk.
    """
    if not _COLLECT_INTERVALS:
        return
    with _INTERVALS_LOCK:
        if len(_INTERVALS) < _MAX_INTERVALS:
            _INTERVALS.append(
                {"pid": int(pid), "t0": float(t0), "t1": float(t1),
                 "label": label}
            )


def drain_intervals() -> list[dict[str, Any]]:
    """Return and clear the collected worker intervals."""
    with _INTERVALS_LOCK:
        out = list(_INTERVALS)
        _INTERVALS.clear()
    return out


# --------------------------------------------------------------------- #
# Utilization timelines
# --------------------------------------------------------------------- #

#: Span names that delimit worker busy time, in preference order: shard
#: builds when present (one interval per shard), else raw pool chunks.
UTILIZATION_SPANS = ("shard.build", "parallel.chunk")

#: At most this many intervals kept per worker lane in ledger records.
_MAX_LANE_INTERVALS = 400


def _summarize_workers(
    by_pid: Mapping[int, list[dict[str, Any]]]
) -> dict[str, Any] | None:
    """Fold per-pid intervals into the utilization document.

    ``utilization`` is busy time over ``workers × elapsed span``: 1.0 means
    every worker was busy for the whole window the intervals cover.
    """
    if not by_pid:
        return None
    workers = []
    busy_total = 0.0
    lo = min(iv["start_s"] for ivs in by_pid.values() for iv in ivs)
    hi = max(iv["end_s"] for ivs in by_pid.values() for iv in ivs)
    for pid in sorted(by_pid):
        intervals = sorted(by_pid[pid], key=lambda iv: iv["start_s"])
        busy = sum(iv["end_s"] - iv["start_s"] for iv in intervals)
        busy_total += busy
        workers.append(
            {
                "pid": pid,
                "busy_s": round(busy, 6),
                "intervals": intervals[:_MAX_LANE_INTERVALS],
            }
        )
    span_s = hi - lo
    value = busy_total / (span_s * len(workers)) if span_s > 0 else 1.0
    return {
        "value": round(min(value, 1.0), 4),
        "busy_s": round(busy_total, 6),
        "span_s": round(span_s, 6),
        "num_workers": len(workers),
        "workers": workers,
    }


def utilization_from_trace(trace_doc: Mapping[str, Any]) -> dict[str, Any] | None:
    """Per-worker utilization folded from a trace document's span intervals.

    Uses the first name in :data:`UTILIZATION_SPANS` that matched any span;
    returns ``None`` when the trace has no worker intervals at all.
    """
    spans = trace_doc.get("spans") or []
    chosen: list[Mapping[str, Any]] = []
    for name in UTILIZATION_SPANS:
        chosen = [s for s in spans if s.get("name") == name]
        if chosen:
            break
    if not chosen:
        return None
    by_pid: dict[int, list[dict[str, Any]]] = {}
    for s in chosen:
        start = float(s.get("start_s") or 0.0)
        attrs = s.get("attrs") or {}
        label = s.get("name", "")
        if "shard" in attrs:
            label = f"shard {attrs['shard']}"
        by_pid.setdefault(int(s.get("pid") or 0), []).append(
            {
                "start_s": start,
                "end_s": start + float(s.get("wall_s") or 0.0),
                "label": label,
            }
        )
    return _summarize_workers(by_pid)


def utilization_from_intervals(
    intervals: list[Mapping[str, Any]],
) -> dict[str, Any] | None:
    """Utilization from raw :func:`note_interval` records (perf-counter
    endpoints are rebased so the earliest interval starts at 0)."""
    if not intervals:
        return None
    t0 = min(float(iv["t0"]) for iv in intervals)
    by_pid: dict[int, list[dict[str, Any]]] = {}
    for iv in intervals:
        by_pid.setdefault(int(iv["pid"]), []).append(
            {
                "start_s": float(iv["t0"]) - t0,
                "end_s": float(iv["t1"]) - t0,
                "label": str(iv.get("label", "")),
            }
        )
    return _summarize_workers(by_pid)


# --------------------------------------------------------------------- #
# Global sampler lifecycle (the CLI entry points)
# --------------------------------------------------------------------- #

_ACTIVE: ResourceSampler | None = None


def start(interval_ms: float | None = None) -> ResourceSampler | None:
    """Start the global sampler if sampling is enabled; returns it (or
    ``None`` when off).  Idempotent while one is already running."""
    global _ACTIVE, _COLLECT_INTERVALS
    if _ACTIVE is not None:
        return _ACTIVE
    resolved = sample_interval_ms(interval_ms)
    if resolved is None:
        return None
    _ACTIVE = ResourceSampler(resolved)
    _COLLECT_INTERVALS = True
    _ACTIVE.start()
    return _ACTIVE


def stop() -> dict[str, Any] | None:
    """Stop the global sampler; returns its timeline (with any worker
    intervals collected while it ran) or ``None`` if never started."""
    global _ACTIVE, _COLLECT_INTERVALS
    if _ACTIVE is None:
        return None
    timeline = _ACTIVE.stop()
    _COLLECT_INTERVALS = False
    timeline["worker_intervals"] = drain_intervals()
    _ACTIVE = None
    return timeline


def active() -> ResourceSampler | None:
    """The global sampler, if one is running."""
    return _ACTIVE
