"""Live telemetry service: event bus + threaded HTTP server.

Everything earlier observability layers record post-hoc (spans, metrics,
ledger records, sampler timelines) becomes inspectable *while a build
runs*: ``repro serve`` (or ``--live [PORT]`` on any study command) starts a
stdlib-only :class:`ThreadingHTTPServer` on localhost exposing

- ``/metrics`` — Prometheus text exposition of the full metrics registry
  (:mod:`repro.obs.promexport`); worker counter/histogram deltas fold into
  the parent registry as pool chunks complete, so scrapes reflect them.
- ``/healthz`` — liveness JSON (uptime, pid, event-bus stats).
- ``/runs`` and ``/runs/<id>`` — run-ledger summaries / full records.
- ``/events`` — a schema-v1 Server-Sent-Events stream fed by the
  in-process :class:`EventBus`: span open/close (phase transitions are the
  top-level spans), sampler ticks, parallel chunk dispatch/steal/complete,
  per-shard build progress, and ledger appends.
- ``/`` — the run dashboard (:mod:`repro.obs.dashboard`) in live mode,
  auto-refreshing itself from ``/events`` and ``/metrics``.

The server also hosts an optional *data-plane app* (``repro serve
--ingest`` passes a :class:`repro.service.ServiceApp`): after the routes
above, GETs and POSTs fall through to ``app.handle_get`` /
``app.handle_post``, which add ``POST /ingest``, ``/tables``,
``/figures``, and ``/fidelity``.  With no app installed, POSTs and
unknown paths 404 exactly as before.

Design constraints, in order:

1. **The observed build must not change.**  The server never writes to
   stdout/stderr, shares no mutable state with the pipeline (it only
   *reads* the metrics registry and ledger), and every handler error —
   including the injected ``serve.request:fail`` fault — is answered with
   a 500 and counted in ``serve.request_failed``, never propagated.
   ``scripts/reproduce_all.sh`` proves a served medium build byte-identical
   to a clean one.
2. **Near-zero cost when idle.**  Event hooks are module globals installed
   only while a server runs (one ``is None`` check otherwise), and
   :meth:`EventBus.publish` returns after one list check when no SSE
   client is subscribed.  The serve-overhead bound (<3% with a polling
   client) is guarded by ``benchmarks/test_substrate_perf.py``.
3. **Fork-safe.**  Pool workers inherit the bus at fork; ``publish``
   no-ops in any process other than the one that created the bus, so
   worker-side telemetry travels the existing chunk-result channel (span
   records + metric deltas) and surfaces as parent-side events at fold.

Import-cycle note: :mod:`repro.faults` imports :mod:`repro.obs` at module
level, and the ledger/dashboard layers import :mod:`repro.cache` lazily —
so this module imports ``faults``, ``ledger``, and ``dashboard`` inside
functions only.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.obs import metrics, promexport, sampler, trace

#: Bump when the event envelope changes incompatibly.
EVENT_SCHEMA_VERSION = 1

#: Default bound on each SSE subscriber's queue; a slow client drops
#: events (counted in ``serve.events_dropped``) instead of blocking
#: publishers or growing memory.
SUBSCRIBER_QUEUE_MAX = 1024

#: Seconds between SSE keepalive comments when no events flow.
SSE_HEARTBEAT_S = 10.0

_REQUESTS = metrics.counter("serve.requests")
_REQUEST_FAILED = metrics.counter("serve.request_failed")
_EVENTS_PUBLISHED = metrics.counter("serve.events_published")
_EVENTS_DROPPED = metrics.counter("serve.events_dropped")
_SSE_CONNECTS = metrics.counter("serve.sse_connects")
_SSE_CLIENTS = metrics.gauge("serve.sse_clients")
_REQUEST_SECONDS = metrics.histogram("serve.request_seconds")


# --------------------------------------------------------------------- #
# Event bus
# --------------------------------------------------------------------- #


class Subscription:
    """One subscriber's bounded event queue."""

    __slots__ = ("_queue", "_bus")

    def __init__(self, bus: "EventBus", maxsize: int):
        self._bus = bus
        self._queue = queue.Queue(maxsize=maxsize)

    def get(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Next event, or ``None`` if ``timeout`` elapses first."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._bus.unsubscribe(self)


class EventBus:
    """In-process pub/sub for telemetry events.

    ``publish`` stamps each event with the schema version, a monotonically
    increasing sequence number, and a wall-clock timestamp, then fans it
    out to every subscriber's bounded queue (full queue → drop + count).
    With no subscribers it returns after a single list check, and in a
    forked child (whose pid differs from the bus creator's) it is a no-op
    even if subscriber queues were inherited.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: list[Subscription] = []
        self._seq = 0
        self._pid = os.getpid()

    def subscribe(self, maxsize: int = SUBSCRIBER_QUEUE_MAX) -> Subscription:
        sub = Subscription(self, maxsize)
        with self._lock:
            self._subs.append(sub)
            _SSE_CLIENTS.set(len(self._subs))
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass
            _SSE_CLIENTS.set(len(self._subs))

    @property
    def subscribers(self) -> int:
        return len(self._subs)

    @property
    def seq(self) -> int:
        return self._seq

    def publish(self, kind: str, **fields: Any) -> None:
        if not self._subs or os.getpid() != self._pid:
            return
        with self._lock:
            self._seq += 1
            event = {
                "schema": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": round(time.time(), 6),
                "kind": kind,
                **fields,
            }
            subs = list(self._subs)
        _EVENTS_PUBLISHED.inc()
        for sub in subs:
            try:
                sub._queue.put_nowait(event)
            except queue.Full:
                _EVENTS_DROPPED.inc()


#: The process-global bus every telemetry source publishes into.
BUS = EventBus()


def publish(kind: str, **fields: Any) -> None:
    """Publish one event to the global bus (near-free with no clients).

    The entry point :mod:`repro.parallel`, :mod:`repro.shard.build`, and
    :mod:`repro.obs.ledger` call directly; ``trace``/``sampler`` go through
    their listener hooks instead so their modules stay import-order clean.
    """
    BUS.publish(kind, **fields)


# --------------------------------------------------------------------- #
# Hook wiring (installed while a server runs)
# --------------------------------------------------------------------- #

#: Span attribute values of these types pass through to events as-is;
#: anything else is stringified so json.dumps can never fail mid-stream.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _safe_attrs(attrs: Mapping[str, Any]) -> dict[str, Any]:
    return {
        key: value if isinstance(value, _JSON_SCALARS) else str(value)
        for key, value in attrs.items()
    }


def _on_span(phase: str, record: trace.SpanRecord) -> None:
    try:
        event: dict[str, Any] = {
            "name": record.name,
            "pid": record.pid,
            "thread": record.thread,
            "depth": 0 if record.parent < 0 else 1,
        }
        if phase == "close":
            event["wall_s"] = round(record.wall_s, 6)
            event["cpu_s"] = round(record.cpu_s, 6)
            if record.attrs:
                event["attrs"] = _safe_attrs(record.attrs)
        BUS.publish(f"span.{phase}", **event)
    except Exception:
        pass  # a telemetry listener must never break the traced build


def _on_tick(sample: Mapping[str, Any]) -> None:
    try:
        BUS.publish("sampler.tick", **dict(sample))
    except Exception:
        pass


def _install_hooks() -> None:
    trace.set_span_listener(_on_span)
    sampler.set_tick_listener(_on_tick)


def _remove_hooks() -> None:
    trace.set_span_listener(None)
    sampler.set_tick_listener(None)


# --------------------------------------------------------------------- #
# HTTP server
# --------------------------------------------------------------------- #


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    stopping = False
    #: Optional data-plane app (repro.service.ServiceApp): consulted by
    #: the handler after the telemetry routes, before the 404 fallback.
    app = None

    def handle_error(self, request, client_address):  # noqa: D102
        # Client disconnects (broken pipes mid-SSE) and handler thread
        # errors must never reach stderr of the build being observed.
        pass


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-live/1"
    # Keep-alive: every non-SSE response carries Content-Length, so
    # clients can reuse the connection instead of paying a fresh TCP
    # connect + handler thread per request (the load harness sustains
    # >=1k req/s through this).  SSE responses opt out below.
    protocol_version = "HTTP/1.1"
    # Responses are written as two sends (headers, then body); without
    # TCP_NODELAY, Nagle + delayed ACK turns that into ~40 ms per
    # keep-alive request.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # requests are counted in serve.requests, never printed

    # Responses -------------------------------------------------------- #

    def _send_body(
        self, body: bytes, content_type: str, status: int = 200
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, doc: Any, status: int = 200) -> None:
        body = json.dumps(doc, indent=2, default=str).encode("utf-8")
        self._send_body(body, "application/json; charset=utf-8", status)

    # Routing ---------------------------------------------------------- #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        _REQUESTS.inc()
        t0 = time.perf_counter()
        try:
            from repro import faults

            faults.check("serve.request")
            self._route()
        except Exception as exc:
            _REQUEST_FAILED.inc()
            try:
                self._send_json(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
            except Exception:
                pass  # headers already sent or client gone
        finally:
            _REQUEST_SECONDS.observe(time.perf_counter() - t0)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        _REQUESTS.inc()
        t0 = time.perf_counter()
        try:
            from repro import faults

            faults.check("serve.request")
            path, query = self._split_path()
            app = getattr(self.server, "app", None)
            if app is None or not app.handle_post(self, path, query):
                self._send_json(
                    {"error": f"no route for {path!r}"}, status=404
                )
        except Exception as exc:
            _REQUEST_FAILED.inc()
            try:
                self._send_json(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
            except Exception:
                pass  # headers already sent or client gone
        finally:
            _REQUEST_SECONDS.observe(time.perf_counter() - t0)

    def _split_path(self) -> tuple[str, dict[str, str]]:
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return path, query

    def _route(self) -> None:
        path, query = self._split_path()
        if path == "/metrics":
            body = promexport.render_prometheus().encode("utf-8")
            self._send_body(body, promexport.PROM_CONTENT_TYPE)
        elif path == "/healthz":
            self._send_json(self._healthz())
        elif path == "/runs":
            self._send_json(self._run_summaries())
        elif path.startswith("/runs/"):
            self._route_run(path[len("/runs/"):])
        elif path == "/events":
            self._route_events(query)
        elif path == "/":
            self._route_dashboard()
        else:
            app = getattr(self.server, "app", None)
            if app is None or not app.handle_get(self, path, query):
                self._send_json(
                    {"error": f"no route for {path!r}"}, status=404
                )

    def _healthz(self) -> dict[str, Any]:
        server: _TelemetryHTTPServer = self.server  # type: ignore[assignment]
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - server.started_monotonic, 3),
            "events_seq": BUS.seq,
            "sse_clients": BUS.subscribers,
        }

    def _ledger_records(self) -> list[dict[str, Any]]:
        from repro.obs import ledger

        return ledger.read_records(ledger.ledger_path())

    def _run_summaries(self) -> list[dict[str, Any]]:
        summaries = []
        for record in self._ledger_records():
            summaries.append(
                {
                    "run_id": record.get("run_id"),
                    "kind": record.get("kind"),
                    "command": record.get("command"),
                    "created_unix": record.get("created_unix"),
                    "total_wall_s": record.get("total_wall_s"),
                    "config": record.get("config"),
                }
            )
        return summaries

    def _route_run(self, ref: str) -> None:
        from repro.obs import ledger

        record = ledger.find_record(self._ledger_records(), ref)
        if record is None:
            self._send_json({"error": f"no run matching {ref!r}"}, status=404)
        else:
            self._send_json(record)

    def _route_dashboard(self) -> None:
        from repro.obs import dashboard

        html = dashboard.render_dashboard(self._ledger_records(), live=True)
        self._send_body(html.encode("utf-8"), "text/html; charset=utf-8")

    # SSE -------------------------------------------------------------- #

    def _route_events(self, query: Mapping[str, str]) -> None:
        server: _TelemetryHTTPServer = self.server  # type: ignore[assignment]
        limit = int(query.get("limit", "0"))
        heartbeat = float(query.get("heartbeat", str(SSE_HEARTBEAT_S)))
        _SSE_CONNECTS.inc()
        sub = BUS.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            # An event stream has no Content-Length; end-of-stream is
            # signalled by closing, exactly as under HTTP/1.0.
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
            hello = {"schema": EVENT_SCHEMA_VERSION, "pid": os.getpid()}
            self.wfile.write(
                f"event: hello\ndata: {json.dumps(hello)}\n\n".encode("utf-8")
            )
            self.wfile.flush()
            sent = 0
            while not server.stopping:
                event = sub.get(timeout=heartbeat)
                if event is None:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                frame = (
                    f"id: {event['seq']}\n"
                    f"event: {event['kind']}\n"
                    f"data: {json.dumps(event, default=str)}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sent += 1
                if limit and sent >= limit:
                    break
        except OSError:
            pass  # client went away; not a handler failure
        finally:
            sub.close()


class TelemetryServer:
    """Lifecycle wrapper: bind, serve in a daemon thread, install hooks.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`).  Only one server installs the global hooks at a
    time; :meth:`stop` removes them, shuts the listener down, and leaves
    any draining SSE handler threads to exit within one heartbeat.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 app: Any | None = None):
        self.host = host
        self.port = port
        self.app = app
        self._httpd: _TelemetryHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TelemetryServer":
        global _SERVER
        if self._httpd is not None:
            return self
        httpd = _TelemetryHTTPServer((self.host, self.port), _Handler)
        httpd.started_monotonic = time.monotonic()
        httpd.app = self.app
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-live",
            daemon=True,
        )
        self._thread.start()
        _install_hooks()
        _SERVER = self
        return self

    def stop(self) -> None:
        global _SERVER
        if self._httpd is None:
            return
        _remove_hooks()
        self._httpd.stopping = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None
        if _SERVER is self:
            _SERVER = None


_SERVER: TelemetryServer | None = None


def serve_background(host: str = "127.0.0.1", port: int = 0,
                     app: Any | None = None) -> TelemetryServer:
    """Start a telemetry server in a daemon thread and return it.

    ``app`` (a :class:`repro.service.ServiceApp`) adds the incremental
    ingest/read data plane on top of the telemetry routes.
    """
    return TelemetryServer(host=host, port=port, app=app).start()


def active_server() -> TelemetryServer | None:
    """The running telemetry server, if any."""
    return _SERVER
