"""Plain-text rendering of analysis results for benches and examples."""

from repro.reporting.render import (
    format_count,
    format_seconds,
    render_bar_chart,
    render_comparison_rows,
    render_series,
    render_table,
)

__all__ = [
    "format_count",
    "format_seconds",
    "render_bar_chart",
    "render_comparison_rows",
    "render_series",
    "render_table",
]
