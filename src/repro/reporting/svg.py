"""Dependency-free SVG chart rendering.

matplotlib is unavailable in this environment, so the figure regeneration
pipeline emits standalone SVG documents built from primitives: line charts
(weekly series, CDFs, cumulative curves), bar charts (label distributions),
and log-log scatter plots (cluster-size distributions, rank curves).

The goal is faithful *shapes* — axes are linear or log10, series are
polylines, and everything is deterministic text output (snapshot-testable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: A small categorical palette (colorblind-safe-ish).
PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
           "#aa3377", "#bbbbbb", "#222222", "#999933", "#882255")

_MARGIN_LEFT = 62.0
_MARGIN_RIGHT = 16.0
_MARGIN_TOP = 34.0
_MARGIN_BOTTOM = 42.0


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:g}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:g}k"
    if magnitude >= 1:
        return f"{value:g}"
    return f"{value:.3g}"


@dataclass
class _Frame:
    """Plot geometry: data ranges mapped onto pixel coordinates."""

    width: float
    height: float
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    x_log: bool = False
    y_log: bool = False

    def _tx(self, x: float) -> float:
        lo, hi = self.x_min, self.x_max
        if self.x_log:
            x, lo, hi = math.log10(max(x, 1e-12)), math.log10(max(lo, 1e-12)), math.log10(max(hi, 1e-12))
        span = (hi - lo) or 1.0
        inner = self.width - _MARGIN_LEFT - _MARGIN_RIGHT
        return _MARGIN_LEFT + (x - lo) / span * inner

    def _ty(self, y: float) -> float:
        lo, hi = self.y_min, self.y_max
        if self.y_log:
            y, lo, hi = math.log10(max(y, 1e-12)), math.log10(max(lo, 1e-12)), math.log10(max(hi, 1e-12))
        span = (hi - lo) or 1.0
        inner = self.height - _MARGIN_TOP - _MARGIN_BOTTOM
        return self.height - _MARGIN_BOTTOM - (y - lo) / span * inner

    def _axis_ticks(self, lo: float, hi: float, log: bool) -> list[float]:
        if log:
            lo_exp = math.floor(math.log10(max(lo, 1e-12)))
            hi_exp = math.ceil(math.log10(max(hi, 1e-12)))
            return [10.0**e for e in range(int(lo_exp), int(hi_exp) + 1)]
        if hi <= lo:
            return [lo]
        raw_step = (hi - lo) / 5
        magnitude = 10 ** math.floor(math.log10(raw_step))
        for mult in (1, 2, 5, 10):
            step = mult * magnitude
            if (hi - lo) / step <= 6:
                break
        first = math.ceil(lo / step) * step
        ticks = []
        value = first
        while value <= hi + 1e-9 * step:
            ticks.append(round(value, 12))
            value += step
        return ticks


class SvgChart:
    """Incremental SVG document builder around a :class:`_Frame`."""

    def __init__(
        self,
        *,
        title: str,
        width: int = 640,
        height: int = 360,
        x_min: float,
        x_max: float,
        y_min: float,
        y_max: float,
        x_log: bool = False,
        y_log: bool = False,
        x_label: str = "",
        y_label: str = "",
    ) -> None:
        if x_log and x_min <= 0:
            x_min = max(x_min, 1e-3)
        if y_log and y_min <= 0:
            y_min = max(y_min, 1e-3)
        self.frame = _Frame(
            width=float(width), height=float(height),
            x_min=x_min, x_max=x_max, y_min=y_min, y_max=y_max,
            x_log=x_log, y_log=y_log,
        )
        self._title = title
        self._x_label = x_label
        self._y_label = y_label
        self._body: list[str] = []
        self._legend: list[tuple[str, str]] = []

    # ----------------------------------------------------------------- #

    def add_line(
        self, xs: Sequence[float], ys: Sequence[float], *,
        color: str = PALETTE[0], label: str = "", dashed: bool = False,
    ) -> None:
        """Add a polyline series (NaN gaps are broken into segments)."""
        points: list[str] = []
        segments: list[list[str]] = [points]
        for x, y in zip(xs, ys):
            if y is None or (isinstance(y, float) and math.isnan(y)) or (
                np.isscalar(y) and np.isnan(y)
            ):
                if points:
                    points = []
                    segments.append(points)
                continue
            points.append(f"{self.frame._tx(float(x)):.1f},{self.frame._ty(float(y)):.1f}")
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        for segment in segments:
            if len(segment) >= 2:
                self._body.append(
                    f'<polyline fill="none" stroke="{color}" stroke-width="1.6"'
                    f'{dash} points="{" ".join(segment)}"/>'
                )
        if label:
            self._legend.append((label, color))

    def add_points(
        self, xs: Sequence[float], ys: Sequence[float], *,
        color: str = PALETTE[1], label: str = "", radius: float = 2.2,
    ) -> None:
        for x, y in zip(xs, ys):
            if isinstance(y, float) and math.isnan(y):
                continue
            self._body.append(
                f'<circle cx="{self.frame._tx(float(x)):.1f}" '
                f'cy="{self.frame._ty(float(y)):.1f}" r="{radius}" '
                f'fill="{color}" fill-opacity="0.75"/>'
            )
        if label:
            self._legend.append((label, color))

    def add_vertical_marker(self, x: float, *, color: str = "#888888",
                            label: str = "") -> None:
        px = self.frame._tx(x)
        top, bottom = _MARGIN_TOP, self.frame.height - _MARGIN_BOTTOM
        self._body.append(
            f'<line x1="{px:.1f}" y1="{top:.1f}" x2="{px:.1f}" y2="{bottom:.1f}" '
            f'stroke="{color}" stroke-dasharray="3,3"/>'
        )
        if label:
            self._body.append(
                f'<text x="{px + 4:.1f}" y="{top + 12:.1f}" font-size="10" '
                f'fill="{color}">{_escape(label)}</text>'
            )

    # ----------------------------------------------------------------- #

    def _render_axes(self) -> list[str]:
        f = self.frame
        left, right = _MARGIN_LEFT, f.width - _MARGIN_RIGHT
        top, bottom = _MARGIN_TOP, f.height - _MARGIN_BOTTOM
        parts = [
            f'<rect x="{left}" y="{top}" width="{right - left}" '
            f'height="{bottom - top}" fill="none" stroke="#cccccc"/>'
        ]
        for tick in f._axis_ticks(f.x_min, f.x_max, f.x_log):
            if not f.x_min <= tick <= f.x_max:
                continue
            px = f._tx(tick)
            parts.append(
                f'<line x1="{px:.1f}" y1="{bottom}" x2="{px:.1f}" '
                f'y2="{bottom + 4}" stroke="#888888"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{bottom + 16}" font-size="10" '
                f'text-anchor="middle" fill="#444444">{_format_tick(tick)}</text>'
            )
        for tick in f._axis_ticks(f.y_min, f.y_max, f.y_log):
            if not f.y_min <= tick <= f.y_max:
                continue
            py = f._ty(tick)
            parts.append(
                f'<line x1="{left - 4}" y1="{py:.1f}" x2="{left}" '
                f'y2="{py:.1f}" stroke="#888888"/>'
            )
            parts.append(
                f'<text x="{left - 8}" y="{py + 3:.1f}" font-size="10" '
                f'text-anchor="end" fill="#444444">{_format_tick(tick)}</text>'
            )
        if self._x_label:
            parts.append(
                f'<text x="{(left + right) / 2:.1f}" y="{f.height - 8}" '
                f'font-size="11" text-anchor="middle" fill="#222222">'
                f"{_escape(self._x_label)}</text>"
            )
        if self._y_label:
            parts.append(
                f'<text x="14" y="{(top + bottom) / 2:.1f}" font-size="11" '
                f'text-anchor="middle" fill="#222222" '
                f'transform="rotate(-90 14 {(top + bottom) / 2:.1f})">'
                f"{_escape(self._y_label)}</text>"
            )
        return parts

    def _render_legend(self) -> list[str]:
        parts = []
        x = _MARGIN_LEFT + 8
        y = _MARGIN_TOP + 6
        for i, (label, color) in enumerate(self._legend):
            parts.append(
                f'<rect x="{x}" y="{y + i * 15}" width="10" height="10" '
                f'fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + 14}" y="{y + 9 + i * 15}" font-size="10" '
                f'fill="#222222">{_escape(label)}</text>'
            )
        return parts

    def render(self) -> str:
        f = self.frame
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{f.width:.0f}" '
            f'height="{f.height:.0f}" viewBox="0 0 {f.width:.0f} {f.height:.0f}">',
            f'<rect width="{f.width:.0f}" height="{f.height:.0f}" fill="white"/>',
            f'<text x="{f.width / 2:.1f}" y="20" font-size="13" '
            f'text-anchor="middle" fill="#111111">{_escape(self._title)}</text>',
        ]
        parts.extend(self._render_axes())
        parts.extend(self._body)
        parts.extend(self._render_legend())
        parts.append("</svg>")
        return "\n".join(parts)


# --------------------------------------------------------------------- #
# Convenience constructors
# --------------------------------------------------------------------- #

def line_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str,
    x_label: str = "",
    y_label: str = "",
    y_log: bool = False,
    marker_x: float | None = None,
    marker_label: str = "",
) -> str:
    """Multi-series line chart; series maps label -> (xs, ys)."""
    all_x: list[float] = []
    all_y: list[float] = []
    for xs, ys in series.values():
        all_x.extend(float(v) for v in xs)
        all_y.extend(float(v) for v in ys if not (isinstance(v, float) and math.isnan(v)))
    all_y = [y for y in all_y if not math.isnan(y)]
    if not all_x or not all_y:
        raise ValueError("line_chart needs at least one finite point")
    y_min = min(all_y)
    y_max = max(all_y) or 1.0
    if y_log:
        y_min = max(min((y for y in all_y if y > 0), default=0.1), 1e-3)
    else:
        y_min = min(0.0, y_min)
    chart = SvgChart(
        title=title, x_label=x_label, y_label=y_label,
        x_min=min(all_x), x_max=max(all_x), y_min=y_min, y_max=y_max,
        y_log=y_log,
    )
    for i, (label, (xs, ys)) in enumerate(series.items()):
        chart.add_line(xs, ys, color=PALETTE[i % len(PALETTE)], label=label)
    if marker_x is not None:
        chart.add_vertical_marker(marker_x, label=marker_label)
    return chart.render()


def bar_chart(
    values: dict[str, float], *, title: str, y_label: str = ""
) -> str:
    """Vertical bar chart of label -> value."""
    if not values:
        raise ValueError("bar_chart needs at least one bar")
    labels = list(values.keys())
    heights = [float(values[k]) for k in labels]
    peak = max(heights) or 1.0
    chart = SvgChart(
        title=title, y_label=y_label,
        x_min=0.0, x_max=float(len(labels)), y_min=0.0, y_max=peak,
    )
    f = chart.frame
    slot = (f.width - _MARGIN_LEFT - _MARGIN_RIGHT) / len(labels)
    bottom = f.height - _MARGIN_BOTTOM
    for i, (label, height) in enumerate(zip(labels, heights)):
        x = _MARGIN_LEFT + i * slot + slot * 0.15
        top = f._ty(height)
        chart._body.append(
            f'<rect x="{x:.1f}" y="{top:.1f}" width="{slot * 0.7:.1f}" '
            f'height="{bottom - top:.1f}" fill="{PALETTE[0]}"/>'
        )
        chart._body.append(
            f'<text x="{x + slot * 0.35:.1f}" y="{bottom + 16}" font-size="9" '
            f'text-anchor="middle" fill="#444444">{_escape(str(label))}</text>'
        )
    return chart.render()


def scatter_log_log(
    xs: Sequence[float], ys: Sequence[float], *,
    title: str, x_label: str = "", y_label: str = "",
) -> str:
    """Log-log scatter (Figures 6, 7, 29a style)."""
    xs = [max(float(x), 1e-3) for x in xs]
    ys = [max(float(y), 1e-3) for y in ys]
    if not xs:
        raise ValueError("scatter needs points")
    chart = SvgChart(
        title=title, x_label=x_label, y_label=y_label,
        x_min=min(xs), x_max=max(xs) * 1.1, y_min=min(ys), y_max=max(ys) * 1.1,
        x_log=True, y_log=True,
    )
    chart.add_points(xs, ys)
    return chart.render()


def stacked_bar_chart(
    matrix: dict[str, dict[str, float]],
    *,
    title: str,
    y_label: str = "% of instances",
    normalize: bool = True,
) -> str:
    """100%-stacked bars (Figures 10/11 style).

    ``matrix`` maps a row label (one bar) to ``{segment label: value}``.
    Segment colors are assigned by global segment order for a shared legend.
    """
    if not matrix:
        raise ValueError("stacked_bar_chart needs at least one bar")
    segment_labels: list[str] = []
    for breakdown in matrix.values():
        for key in breakdown:
            if key not in segment_labels:
                segment_labels.append(key)
    color_of = {
        label: PALETTE[i % len(PALETTE)] for i, label in enumerate(segment_labels)
    }

    bars = list(matrix.keys())
    peak = 100.0 if normalize else max(
        sum(v.values()) for v in matrix.values()
    ) or 1.0
    chart = SvgChart(
        title=title, y_label=y_label,
        x_min=0.0, x_max=float(len(bars)), y_min=0.0, y_max=peak,
    )
    f = chart.frame
    slot = (f.width - _MARGIN_LEFT - _MARGIN_RIGHT) / len(bars)
    for i, bar in enumerate(bars):
        breakdown = matrix[bar]
        total = sum(breakdown.values()) or 1.0
        x = _MARGIN_LEFT + i * slot + slot * 0.15
        cumulative = 0.0
        for label in segment_labels:
            value = breakdown.get(label, 0.0)
            if value <= 0:
                continue
            height = value / total * peak if normalize else value
            y_top = f._ty(cumulative + height)
            y_bottom = f._ty(cumulative)
            chart._body.append(
                f'<rect x="{x:.1f}" y="{y_top:.1f}" width="{slot * 0.7:.1f}" '
                f'height="{y_bottom - y_top:.1f}" fill="{color_of[label]}"/>'
            )
            cumulative += height
        chart._body.append(
            f'<text x="{x + slot * 0.35:.1f}" '
            f'y="{f.height - _MARGIN_BOTTOM + 16}" font-size="9" '
            f'text-anchor="middle" fill="#444444">{_escape(str(bar))}</text>'
        )
    for label in segment_labels[:10]:
        chart._legend.append((label, color_of[label]))
    return chart.render()


def cdf_chart(
    cdfs: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str,
    x_label: str,
    x_log: bool = False,
) -> str:
    """Figure-14-style CDF comparison; cdfs maps bin label -> (xs, ys)."""
    all_x = [float(x) for xs, _ in cdfs.values() for x in xs]
    if not all_x:
        raise ValueError("cdf_chart needs points")
    x_min = min(all_x)
    if x_log:
        positive = [x for x in all_x if x > 0]
        x_min = min(positive) if positive else 1e-3
    chart = SvgChart(
        title=title, x_label=x_label, y_label="P(metric <= x)",
        x_min=x_min, x_max=max(all_x) or 1.0, y_min=0.0, y_max=1.0,
        x_log=x_log,
    )
    for i, (label, (xs, ys)) in enumerate(cdfs.items()):
        chart.add_line(xs, ys, color=PALETTE[i % len(PALETTE)], label=label)
    return chart.render()
