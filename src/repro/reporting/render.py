"""ASCII renderers: tables, bar charts, weekly series.

The benchmark harness prints each figure with these so the terminal output
reads like the paper's plots; nothing here is load-bearing for the analyses.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Sequence

import numpy as np


def format_count(value: float) -> str:
    """1234567 -> '1.2M', 45300 -> '45.3k'."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.1f}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:.1f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def format_seconds(value: float) -> str:
    """Render a duration with a sensible unit."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    if value < 120:
        return f"{value:.0f}s"
    if value < 7200:
        return f"{value / 60:.1f}min"
    if value < 2 * 86400:
        return f"{value / 3600:.1f}h"
    return f"{value / 86400:.1f}d"


def render_table(
    rows: Sequence[Mapping[str, Any]], *, columns: Sequence[str] | None = None
) -> str:
    """Fixed-width table from dict rows."""
    if not rows:
        return "(empty)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [
        [_cell(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    ]
    return "\n".join([header, rule, *body])


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if abs(value) >= 1000:
            return format_count(value)
        return f"{value:.3g}"
    return str(value)


def render_bar_chart(
    values: Mapping[str, float], *, width: int = 40, sort: bool = True
) -> str:
    """Horizontal ASCII bar chart of label -> value."""
    if not values:
        return "(empty)"
    items = list(values.items())
    if sort:
        items.sort(key=lambda kv: kv[1], reverse=True)
    peak = max(v for _, v in items) or 1.0
    label_width = max(len(k) for k, _ in items)
    lines = []
    for label, value in items:
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {format_count(value)}")
    return "\n".join(lines)


def render_series(
    series: np.ndarray,
    *,
    width: int = 72,
    height: int = 10,
    title: str = "",
) -> str:
    """Downsampled ASCII sparkline grid of a weekly series."""
    values = np.asarray(series, dtype=np.float64)
    values = np.where(np.isnan(values), 0.0, values)
    if values.size == 0:
        return "(empty series)"
    if values.size > width:
        # Average-pool into `width` buckets.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[s:e].mean() if e > s else 0.0 for s, e in zip(edges, edges[1:])]
        )
    peak = values.max() or 1.0
    levels = np.round(values / peak * (height - 1)).astype(int)
    rows = []
    for level in range(height - 1, -1, -1):
        rows.append("".join("#" if l >= level and v > 0 else " "
                            for l, v in zip(levels, values)))
    out = "\n".join(rows)
    if title:
        out = f"{title} (peak {format_count(peak)})\n{out}"
    return out


def render_comparison_rows(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render Table 1/2/3-style feature-bin comparisons."""
    display = []
    for row in rows:
        display.append(
            {
                "feature": row["feature"],
                "split": row["split"],
                "n_lo": row["count_low"],
                "n_hi": row["count_high"],
                "median_lo": row["median_low"],
                "median_hi": row["median_high"],
                "p": f"{row['p_value']:.2g}",
            }
        )
    return render_table(display)
