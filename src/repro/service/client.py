"""Client-side helpers: micro-batch splitting and a stdlib HTTP client.

``split_study`` turns a batch :class:`~repro.study.Study` into ``k``
ingest payloads by *shuffled round-robin*: row order inside each payload
and the assignment of rows to payloads are both randomized (seeded), so
replaying the payloads in any order exercises the server's claim that
arrival order and partitioning are invisible.  The union of the payloads
is exactly the study's released layer — no row duplicated, none dropped.

``ServiceClient`` wraps :class:`http.client.HTTPConnection` (keep-alive,
reconnect on a dropped socket) — enough HTTP for the differential
harness, the fault tests, and the load generator, with zero third-party
dependencies.
"""

from __future__ import annotations

import json
import http.client
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.service.codec import WIRE_SCHEMA_VERSION, encode_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.study import Study
    from repro.tables import Table


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, doc: Any):
        super().__init__(f"HTTP {status}: {doc}")
        self.status = status
        self.doc = doc


# --------------------------------------------------------------------- #
# Splitting a batch study into micro-batches
# --------------------------------------------------------------------- #


def _take_rows(table: "Table", idx: np.ndarray) -> "Table":
    from repro.tables import Table

    return Table(
        {name: np.asarray(table[name])[idx] for name in table.column_names},
        copy=False,
    )


def _round_robin(n: int, k: int, rng: np.random.Generator) -> list[np.ndarray]:
    """``n`` indices shuffled, then dealt into ``k`` piles."""
    order = rng.permutation(n)
    return [order[i::k] for i in range(k)]


def split_study(study: "Study", k: int, *, seed: int = 0) -> list[dict]:
    """``k`` ingest payloads whose union is the study's released layer.

    Rows are shuffled before dealing, so each payload holds an arbitrary,
    arbitrarily-ordered subset of catalog rows, instance rows, and HTML
    docs.  Payloads with no rows of a section simply omit it.
    """
    from repro import cache as study_cache

    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = np.random.default_rng(seed)
    released = study.released
    config_key = study_cache.study_key(study.config)

    catalog_parts = _round_robin(released.batch_catalog.num_rows, k, rng)
    instance_parts = _round_robin(released.instances.num_rows, k, rng)
    html_ids = list(released.batch_html)
    html_parts = _round_robin(len(html_ids), k, rng)

    payloads = []
    for i in range(k):
        payload: dict[str, Any] = {
            "schema": WIRE_SCHEMA_VERSION,
            "config_key": config_key,
        }
        if len(catalog_parts[i]):
            payload["catalog"] = encode_table(
                _take_rows(released.batch_catalog, catalog_parts[i])
            )
        if len(instance_parts[i]):
            payload["instances"] = encode_table(
                _take_rows(released.instances, instance_parts[i])
            )
        if len(html_parts[i]):
            payload["html"] = {
                str(html_ids[j]): released.batch_html[html_ids[j]]
                for j in html_parts[i]
            }
        payloads.append(payload)
    return payloads


# --------------------------------------------------------------------- #
# HTTP client
# --------------------------------------------------------------------- #


class ServiceClient:
    """Keep-alive HTTP client for one service endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request; returns ``(status, lowercase headers, body)``."""
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body,
                                   headers=headers or {})
                resp = self._conn.getresponse()
                data = resp.read()
                return (
                    resp.status,
                    {k.lower(): v for k, v in resp.getheaders()},
                    data,
                )
            except (http.client.HTTPException, OSError):
                # Stale keep-alive socket: reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    def get(
        self, path: str, etag: str | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        headers = {"If-None-Match": etag} if etag is not None else None
        return self.request("GET", path, headers=headers)

    def get_json(self, path: str) -> Any:
        status, _, body = self.get(path)
        doc = json.loads(body.decode("utf-8")) if body else None
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def post_json(self, path: str, doc: Any) -> tuple[int, Any]:
        body = json.dumps(doc).encode("utf-8")
        status, _, data = self.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        return status, json.loads(data.decode("utf-8")) if data else None

    def ingest(self, payload: dict) -> dict:
        """POST one micro-batch; raises :class:`ServiceError` on non-200."""
        status, doc = self.post_json("/ingest", payload)
        if status != 200:
            raise ServiceError(status, doc)
        return doc

    def ingest_all(self, payloads: Iterable[dict]) -> list[dict]:
        return [self.ingest(p) for p in payloads]

    def status(self) -> dict:
        return self.get_json("/ingest/status")
