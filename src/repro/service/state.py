"""Standing incremental state behind the ingest service.

:class:`ServiceState` is the service's single mutable object.  It holds
three *layers* of standing state, each with its own version counter:

- ``catalog`` — batch-catalog rows, an
  :class:`~repro.shard.merge.IncrementalTableFold` keyed by ``batch_id``;
- ``instances`` — instance-log rows, a fold keyed by ``instance_id``,
  plus three *streaming* aggregates maintained without any rebuild: a
  per-batch :class:`~repro.shard.merge.MergeableGroupBy` rollup, the
  pooled trust :class:`~repro.stats.cdf.EmpiricalCDF` (one part per
  micro-batch, merged on read), and a fixed-edge duration
  :class:`~repro.stats.histogram.Histogram`;
- ``html`` — the ``batch_id -> task HTML`` corpus, a plain dict merge.

Every layer's fold is exactly partition- and order-invariant (the merge
algebra's laws), so the state after N micro-batches depends only on the
*set* of rows ingested — the service-layer property suite pins this.

Ingest is **atomic**: a micro-batch is fully decoded and validated —
schema version, config key, column schemas, duplicate keys (within the
payload and against everything already ingested) — before a single piece
of standing state is touched.  Any failure raises :class:`IngestError`
(the 400 path) or propagates (the 500 path) with the state byte-identical
to before the request, which is what makes the ``serve.ingest`` fault
sites testable.

The derived layers (enriched tables, figures, fidelity probes) come from
:func:`repro.enrichment.pipeline.enrich_dataset` — deterministic in
``(released, config)`` — run at most once per state version and memoized
as a :class:`Snapshot`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import obs
from repro.shard.merge import IncrementalTableFold, MergeableGroupBy
from repro.stats.cdf import EmpiricalCDF
from repro.stats.histogram import Histogram

from repro.service.codec import (
    WIRE_SCHEMA_VERSION,
    CodecError,
    decode_table,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset
    from repro.figures.suite import FigureSuite
    from repro.simulator.config import SimulationConfig
    from repro.tables import Table

_INGEST_BATCHES = obs.counter("serve.ingest_batches")
_INGEST_ROWS = obs.counter("serve.ingest_rows")
_INGEST_SECONDS = obs.histogram("serve.ingest_seconds")
_SNAPSHOT_BUILDS = obs.counter("serve.snapshot_builds")

#: Expected wire schema of the two released tables, in column order.
CATALOG_SCHEMA: tuple[tuple[str, str], ...] = (
    ("batch_id", "int64"),
    ("title", "object"),
    ("created_at", "int64"),
    ("sampled", "bool"),
)
INSTANCE_SCHEMA: tuple[tuple[str, str], ...] = (
    ("instance_id", "int64"),
    ("batch_id", "int64"),
    ("item_id", "int64"),
    ("worker_id", "int64"),
    ("source", "object"),
    ("country", "object"),
    ("start_time", "int64"),
    ("end_time", "int64"),
    ("trust", "float64"),
    ("response", "object"),
)

#: The standing per-batch rollup served at ``/tables/batch_rollup`` —
#: every aggregation is from the mergeable algebra, so the table is a pure
#: function of the ingested row multiset.
ROLLUP_SPEC: dict[str, tuple[str, str]] = {
    "num_instances": ("instance_id", "count"),
    "num_workers": ("worker_id", "nunique"),
    "num_items": ("item_id", "nunique"),
    "trust_mean": ("trust", "mean"),
    "duration_p50": ("duration_s", "median"),
    "duration_p95": ("duration_s", "p95"),
    "first_start": ("start_time", "min"),
    "last_end": ("end_time", "max"),
}

#: Fixed bin edges for the streaming duration histogram.  Fixed is what
#: makes :meth:`Histogram.merge` exact across any partitioning; durations
#: beyond the last edge fall out of every part identically.
DURATION_EDGES = np.linspace(0.0, 7200.0, 49)


def with_duration(instances: "Table") -> "Table":
    """The instance table plus a ``duration_s`` float64 column."""
    from repro.tables import Table

    duration = (
        np.asarray(instances["end_time"]) - np.asarray(instances["start_time"])
    ).astype(np.float64)
    columns = {
        name: instances.column(name) for name in instances.column_names
    }
    columns["duration_s"] = duration
    return Table(columns, copy=False)


def batch_rollup(instances: "Table") -> "Table":
    """Reference one-shot rollup — what the standing fold must equal."""
    return (
        MergeableGroupBy("batch_id", ROLLUP_SPEC)
        .update(with_duration(instances))
        .finalize()
    )


def trust_cdf_table(cdf: EmpiricalCDF) -> "Table":
    """The pooled trust CDF as a two-column table."""
    from repro.tables import Table

    return Table(
        {"trust": cdf.support, "p": cdf.probabilities}, copy=False
    )


def duration_histogram(instances: "Table") -> Histogram:
    """Fixed-edge histogram of one segment's instance durations."""
    durations = (
        np.asarray(instances["end_time"]) - np.asarray(instances["start_time"])
    ).astype(np.float64)
    counts, _ = np.histogram(durations, bins=DURATION_EDGES)
    return Histogram(edges=DURATION_EDGES, counts=counts.astype(np.int64))


def duration_hist_table(hist: Histogram) -> "Table":
    """A histogram as a three-column table (lo/hi/count)."""
    from repro.tables import Table

    return Table(
        {
            "lo": hist.edges[:-1],
            "hi": hist.edges[1:],
            "count": hist.counts,
        },
        copy=False,
    )


class IngestError(ValueError):
    """A malformed or inconsistent micro-batch (the HTTP 400 path)."""


@dataclass(frozen=True)
class Snapshot:
    """The derived layers at one state version (immutable once built)."""

    versions: tuple[int, int, int]
    released: "ReleasedDataset"
    enriched: "EnrichedDataset"
    figures: "FigureSuite"


def _check_schema(
    table: "Table", schema: tuple[tuple[str, str], ...], label: str
) -> None:
    expected = [name for name, _ in schema]
    if list(table.column_names) != expected:
        raise IngestError(
            f"{label} columns {list(table.column_names)} != {expected}"
        )
    for name, tag in schema:
        actual = str(np.asarray(table[name]).dtype)
        if actual != tag:
            raise IngestError(
                f"{label}.{name} has dtype {actual}, expected {tag}"
            )


class ServiceState:
    """All standing service state for one study configuration."""

    def __init__(self, config: "SimulationConfig"):
        from repro import cache as study_cache

        self.config = config
        self.config_key = study_cache.study_key(config)
        self._lock = threading.RLock()
        self._catalog = IncrementalTableFold("batch_id")
        self._instances = IncrementalTableFold("instance_id")
        self._html: dict[int, str] = {}
        self._rollup = MergeableGroupBy("batch_id", ROLLUP_SPEC)
        self._trust_parts: list[EmpiricalCDF] = []
        self._hist = Histogram(
            edges=DURATION_EDGES,
            counts=np.zeros(len(DURATION_EDGES) - 1, dtype=np.int64),
        )
        self._seen_batches: set[int] = set()
        self._seen_instances: set[int] = set()
        self._versions = {"catalog": 0, "instances": 0, "html": 0}
        self._ingested_batches = 0
        self._snapshot: Snapshot | None = None

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #

    def versions(self) -> dict[str, int]:
        with self._lock:
            return dict(self._versions)

    def version_of(self, *layers: str) -> tuple[int, ...]:
        """The dependency key for a route reading the given layers."""
        with self._lock:
            return tuple(self._versions[layer] for layer in layers)

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "schema": WIRE_SCHEMA_VERSION,
                "config_key": self.config_key,
                "versions": dict(self._versions),
                "ingested_batches": self._ingested_batches,
                "catalog_rows": self._catalog.num_rows,
                "instance_rows": self._instances.num_rows,
                "html_docs": len(self._html),
            }

    # ----------------------------------------------------------------- #
    # Ingest (decode + validate everything, then apply atomically)
    # ----------------------------------------------------------------- #

    def ingest(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Fold one micro-batch in; returns an acceptance summary.

        Raises :class:`IngestError` (or :class:`CodecError`) *before any
        state changes* on a malformed payload — a rejected micro-batch
        leaves every standing aggregate byte-identical.
        """
        import time

        t0 = time.perf_counter()
        catalog, instances, html = self._validate(payload)
        with self._lock:
            # Duplicate screening must see the seen-sets under the same
            # lock that applies the fold, and must all pass before any
            # state is touched (atomic accept-or-reject).
            if catalog is not None:
                self._screen_duplicates(
                    np.asarray(catalog["batch_id"]),
                    self._seen_batches, "batch_id",
                )
            if instances is not None:
                self._screen_duplicates(
                    np.asarray(instances["instance_id"]),
                    self._seen_instances, "instance_id",
                )
            for batch_id in html:
                if batch_id in self._html:
                    raise IngestError(
                        f"duplicate html document for batch {batch_id}"
                    )
            accepted = {"catalog_rows": 0, "instance_rows": 0, "html_docs": 0}
            if catalog is not None:
                accepted["catalog_rows"] = self._catalog.fold(catalog)
                self._seen_batches.update(
                    int(b) for b in np.asarray(catalog["batch_id"])
                )
                self._versions["catalog"] += 1
            if instances is not None:
                timed = with_duration(instances)
                accepted["instance_rows"] = self._instances.fold(instances)
                self._seen_instances.update(
                    int(i) for i in np.asarray(instances["instance_id"])
                )
                self._rollup.update(timed)
                trust = np.asarray(instances["trust"])
                if np.count_nonzero(~np.isnan(trust)):
                    self._trust_parts.append(EmpiricalCDF.from_sample(trust))
                self._hist = Histogram.merge(
                    [self._hist, duration_histogram(instances)]
                )
                self._versions["instances"] += 1
            if html:
                self._html.update(html)
                accepted["html_docs"] = len(html)
                self._versions["html"] += 1
            self._ingested_batches += 1
            versions = dict(self._versions)
        _INGEST_BATCHES.inc()
        _INGEST_ROWS.inc(
            accepted["catalog_rows"] + accepted["instance_rows"]
        )
        _INGEST_SECONDS.observe(time.perf_counter() - t0)
        from repro.obs import live

        live.publish("ingest.folded", versions=versions, **accepted)
        return {"accepted": accepted, "versions": versions}

    def _validate(
        self, payload: Mapping[str, Any]
    ) -> tuple["Table | None", "Table | None", dict[int, str]]:
        if not isinstance(payload, Mapping):
            raise IngestError("micro-batch must be a JSON object")
        if payload.get("schema") != WIRE_SCHEMA_VERSION:
            raise IngestError(
                f"unsupported wire schema {payload.get('schema')!r} "
                f"(this server speaks {WIRE_SCHEMA_VERSION})"
            )
        key = payload.get("config_key")
        if key != self.config_key:
            raise IngestError(
                f"config_key mismatch: payload {str(key)[:16]!r}... is not "
                f"this server's study ({self.config_key[:16]}...); "
                f"GET /ingest/status for the expected key"
            )
        unknown = set(payload) - {
            "schema", "config_key", "catalog", "instances", "html"
        }
        if unknown:
            raise IngestError(f"unknown payload keys: {sorted(unknown)}")

        catalog = instances = None
        if payload.get("catalog") is not None:
            catalog = decode_table(payload["catalog"])
            _check_schema(catalog, CATALOG_SCHEMA, "catalog")
        if payload.get("instances") is not None:
            instances = decode_table(payload["instances"])
            _check_schema(instances, INSTANCE_SCHEMA, "instances")
        html: dict[int, str] = {}
        raw_html = payload.get("html")
        if raw_html is not None:
            if not isinstance(raw_html, Mapping):
                raise IngestError("html must map batch_id -> document")
            for raw_id, doc in raw_html.items():
                try:
                    batch_id = int(raw_id)
                except (TypeError, ValueError):
                    raise IngestError(
                        f"html key {raw_id!r} is not a batch id"
                    ) from None
                if not isinstance(doc, str):
                    raise IngestError(f"html[{raw_id}] is not a string")
                if batch_id in html:
                    raise IngestError(
                        f"duplicate html document for batch {batch_id}"
                    )
                html[batch_id] = doc
        return catalog, instances, html

    @staticmethod
    def _screen_duplicates(
        ids: np.ndarray, seen: set[int], label: str
    ) -> None:
        unique = np.unique(ids)
        if len(unique) != len(ids):
            raise IngestError(f"micro-batch repeats a {label}")
        clash = [int(i) for i in unique if int(i) in seen]
        if clash:
            raise IngestError(
                f"{label} {clash[:5]} already ingested "
                f"(micro-batches must partition the study)"
            )

    # ----------------------------------------------------------------- #
    # Streaming reads (no rebuild, pure merge algebra)
    # ----------------------------------------------------------------- #

    def catalog_table(self) -> "Table":
        with self._lock:
            if self._catalog.num_rows == 0:
                raise IngestError("no catalog rows ingested yet")
            return self._catalog.finalize()

    def instances_table(self) -> "Table":
        with self._lock:
            if self._instances.num_rows == 0:
                raise IngestError("no instance rows ingested yet")
            return self._instances.finalize()

    def rollup_table(self) -> "Table":
        with self._lock:
            if self._instances.num_rows == 0:
                raise IngestError("no instance rows ingested yet")
            return self._rollup.finalize()

    def trust_cdf(self) -> "Table":
        with self._lock:
            if not self._trust_parts:
                raise IngestError("no instance rows ingested yet")
            return trust_cdf_table(EmpiricalCDF.merge(self._trust_parts))

    def duration_hist(self) -> "Table":
        with self._lock:
            if self._instances.num_rows == 0:
                raise IngestError("no instance rows ingested yet")
            return duration_hist_table(self._hist)

    # ----------------------------------------------------------------- #
    # The enriched snapshot (memoized per state version)
    # ----------------------------------------------------------------- #

    @property
    def ready(self) -> bool:
        """Whether enough state exists to derive the enriched layers."""
        with self._lock:
            return (
                self._catalog.num_rows > 0
                and self._instances.num_rows > 0
                and len(self._html) > 0
            )

    def snapshot(self) -> Snapshot:
        """The derived layers at the current version (built at most once).

        The released layers are captured under the lock (consistent with
        the version stamp); the deterministic enrichment runs outside it,
        so ingest is never blocked behind an enrichment pass.
        """
        from repro.dataset.release import ReleasedDataset
        from repro.enrichment.pipeline import enrich_dataset
        from repro.figures.suite import FigureSuite
        from repro.study import _LazyState

        with self._lock:
            versions = (
                self._versions["catalog"],
                self._versions["instances"],
                self._versions["html"],
            )
            memo = self._snapshot
            if memo is not None and memo.versions == versions:
                return memo
            if not (
                self._catalog.num_rows
                and self._instances.num_rows
                and self._html
            ):
                raise IngestError(
                    "snapshot needs catalog, instances, and html ingested"
                )
            released = ReleasedDataset(
                batch_catalog=self._catalog.finalize(),
                batch_html=dict(self._html),
                instances=self._instances.finalize(),
            )
        _SNAPSHOT_BUILDS.inc()
        with obs.span("service.snapshot"):
            enriched = enrich_dataset(released, self.config)
        lazy = _LazyState(self.config)
        snapshot = Snapshot(
            versions=versions,
            released=released,
            enriched=enriched,
            figures=FigureSuite(
                state=lazy, released=released, enriched=enriched
            ),
        )
        with self._lock:
            # Last writer wins; an interleaved ingest simply invalidates.
            self._snapshot = snapshot
        return snapshot


__all__ = [
    "CATALOG_SCHEMA",
    "DURATION_EDGES",
    "INSTANCE_SCHEMA",
    "ROLLUP_SPEC",
    "CodecError",
    "IngestError",
    "ServiceState",
    "Snapshot",
    "batch_rollup",
    "duration_hist_table",
    "duration_histogram",
    "trust_cdf_table",
    "with_duration",
]
