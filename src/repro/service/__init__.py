"""Marketplace-as-a-service: incremental ingest + HTTP serving.

The batch study is a pure function of ``(config, released data)``; this
package turns it into a long-running service.  ``POST /ingest`` accepts
schema-versioned micro-batches of catalog rows, instance rows, and task
HTML, folds them into *standing* state via the shard layer's partition-
and order-invariant merge algebra (:mod:`repro.shard.merge`,
:meth:`repro.stats.cdf.EmpiricalCDF.merge`,
:meth:`repro.stats.histogram.Histogram.merge`) — no rebuild — and
``GET /tables/<name>``, ``/figures/<name>``, and ``/fidelity`` serve every
paper table, figure, and fidelity probe with ETag + content-addressed
response caching (:mod:`repro.service.respcache`, layered on
:mod:`repro.cache`).

The correctness contract, pinned by ``tests/test_service_equivalence.py``:
**N micro-batches ingested in any order and any partitioning produce
byte-identical served responses to the one-shot batch study.**

Modules
-------
- :mod:`repro.service.codec` — dtype-tagged JSON wire format for tables
  and figure payloads (exact float64 round-trip, canonical bytes).
- :mod:`repro.service.state` — :class:`ServiceState`: the standing folds,
  streaming rollups, layer versions, and the memoized enriched snapshot.
- :mod:`repro.service.respcache` — :class:`ResponseCache`: per-route
  dependency-versioned caching with sha-256 ETags and a content-addressed
  disk tier.
- :mod:`repro.service.app` — :class:`ServiceApp`: the routes, plugged
  into the PR 9 telemetry server (:mod:`repro.obs.live`).
- :mod:`repro.service.client` — payload splitting + a tiny HTTP client
  for the differential harness, the load harness, and scripts.
"""

from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, split_study
from repro.service.codec import CodecError, decode_table, encode_table
from repro.service.state import IngestError, ServiceState

__all__ = [
    "CodecError",
    "IngestError",
    "ServiceApp",
    "ServiceClient",
    "ServiceState",
    "decode_table",
    "encode_table",
    "split_study",
]
