"""Dependency-versioned response cache with content-addressed ETags.

Every cacheable route in :mod:`repro.service.app` declares which state
*layers* it reads (``catalog``, ``instances``, ``html``); the tuple of
those layers' version counters is the entry's dependency key.  An ingest
bumps only the versions of the layers it touched, so **exactly** the
entries whose routes read a changed layer become stale — a catalog-only
micro-batch leaves every instance-derived response cached and valid.

The ETag is the sha-256 of the body (a strong validator and a content
address at once).  Bodies live in an in-memory LRU bounded by
``max_bytes`` and are written through to the content-addressed disk tier
(:func:`repro.cache.store_response`); an entry whose body was evicted
from memory but whose dependency key still matches is re-read from disk
by its ETag — so a hot route's body survives memory pressure without
ever being recomputed.

Stale entries are replaced on the next request for their route; metadata
is one small record per route, so the map cannot grow beyond the route
count.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import obs

_CACHE_HITS = obs.counter("serve.cache_hits")
_CACHE_MISSES = obs.counter("serve.cache_misses")
_CACHE_EVICTIONS = obs.counter("serve.cache_evictions")

#: Default bound on in-memory body bytes (the disk tier is unbounded).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class CachedResponse:
    """One servable response: body plus the headers that identify it."""

    etag: str
    content_type: str
    body: bytes


class ResponseCache:
    """Per-route response cache keyed by layer-version dependencies."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        self._lock = threading.Lock()
        self._max_bytes = max_bytes
        # route path -> (deps, etag, content_type, size)
        self._meta: dict[str, tuple[tuple, str, str, int]] = {}
        # etag -> body, LRU order (move_to_end on hit)
        self._bodies: "OrderedDict[str, bytes]" = OrderedDict()
        self._body_bytes = 0

    @property
    def entries(self) -> int:
        return len(self._meta)

    def get(self, path: str, deps: tuple) -> CachedResponse | None:
        """The cached response for ``path`` at dependency key ``deps``.

        ``None`` when the route was never rendered at these versions (a
        miss, counted) — including when an ingest bumped a layer the route
        reads, which is precisely the invalidation rule.
        """
        from repro import cache as study_cache

        with self._lock:
            meta = self._meta.get(path)
            if meta is None or meta[0] != deps:
                _CACHE_MISSES.inc()
                return None
            _, etag, content_type, _ = meta
            body = self._bodies.get(etag)
            if body is not None:
                self._bodies.move_to_end(etag)
        if body is None:
            # Evicted from memory; the disk tier has it by content address.
            body = study_cache.load_response(etag)
            if body is None:
                _CACHE_MISSES.inc()
                return None
            with self._lock:
                self._admit(etag, body)
        _CACHE_HITS.inc()
        return CachedResponse(etag=etag, content_type=content_type, body=body)

    def put(
        self, path: str, deps: tuple, body: bytes, content_type: str
    ) -> CachedResponse:
        """Store a freshly rendered body; returns it with its ETag."""
        from repro import cache as study_cache

        etag = study_cache.store_response(body)
        with self._lock:
            old = self._meta.get(path)
            self._meta[path] = (deps, etag, content_type, len(body))
            self._admit(etag, body)
            if old is not None and old[1] != etag:
                self._drop_body(old[1])
        return CachedResponse(etag=etag, content_type=content_type, body=body)

    def clear(self) -> None:
        """Drop all metadata and bodies (the disk tier is untouched)."""
        with self._lock:
            self._meta.clear()
            self._bodies.clear()
            self._body_bytes = 0

    # ------------------------------------------------------------------ #
    # Internals (callers hold the lock)
    # ------------------------------------------------------------------ #

    def _admit(self, etag: str, body: bytes) -> None:
        if etag in self._bodies:
            self._bodies.move_to_end(etag)
            return
        self._bodies[etag] = body
        self._body_bytes += len(body)
        live = {meta[1] for meta in self._meta.values()}
        while self._body_bytes > self._max_bytes and len(self._bodies) > 1:
            victim = next(
                (k for k in self._bodies if k != etag and k not in live),
                None,
            ) or next(k for k in self._bodies if k != etag)
            self._drop_body(victim)
            _CACHE_EVICTIONS.inc()

    def _drop_body(self, etag: str) -> None:
        body = self._bodies.pop(etag, None)
        if body is not None:
            self._body_bytes -= len(body)
