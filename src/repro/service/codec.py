"""Dtype-tagged JSON wire format for tables and figure payloads.

The service's byte-identity contract extends over the wire: a table that
round-trips through ``encode_table`` → JSON → ``decode_table`` must come
back with identical dtypes and identical bytes.  Two properties make that
possible with plain JSON:

- Python's ``json`` serializes floats with ``repr``, the shortest string
  that round-trips the exact IEEE-754 double — so ``float64`` columns
  survive the wire bit for bit (including ``NaN``/``Infinity``, which the
  stdlib emits and accepts by default).
- Dict insertion order is preserved by ``json`` in both directions, so
  column order — part of a table's identity — needs no side channel.

Only the dtypes the released/enriched layers actually use are legal on
the wire: ``int64``, ``float64``, ``bool``, and ``object`` columns whose
every element is ``str``.  Anything else is a loud :class:`CodecError`,
never a silent coercion.

``dumps_canonical`` renders any encoded document to deterministic bytes
(no whitespace, no key reordering) — the bytes the response cache hashes
into ETags, and the bytes the differential harness compares.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tables import Table

#: Bump when the wire format changes incompatibly.
WIRE_SCHEMA_VERSION = 1

#: Column dtypes legal on the wire, with their decode targets.
_DTYPES = {
    "int64": np.int64,
    "float64": np.float64,
    "bool": np.bool_,
}

#: Marker key for non-plain values inside figure payloads.
_KIND = "__kind__"


class CodecError(ValueError):
    """A value that cannot round-trip the wire exactly."""


# --------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------- #


def _column_tag(name: str, array: np.ndarray) -> str:
    tag = str(array.dtype)
    if tag in _DTYPES:
        return tag
    if array.dtype == object:
        for value in array:
            if not isinstance(value, str):
                raise CodecError(
                    f"column {name!r} has a non-str object element "
                    f"({type(value).__name__}); only str survives the wire"
                )
        return "object"
    raise CodecError(f"column {name!r} has unsupported dtype {tag!r}")


def encode_table(table: "Table") -> dict[str, Any]:
    """A table as a JSON-ready document (column order preserved)."""
    columns = []
    for name in table.column_names:
        array = np.asarray(table[name])
        columns.append([name, _column_tag(name, array), array.tolist()])
    return {"num_rows": table.num_rows, "columns": columns}


def decode_table(doc: Any) -> "Table":
    """Reverse of :func:`encode_table`; validates shape and dtypes."""
    from repro.tables import Table

    if not isinstance(doc, dict) or "columns" not in doc:
        raise CodecError("table document must be a dict with 'columns'")
    num_rows = doc.get("num_rows")
    columns: dict[str, np.ndarray] = {}
    for entry in doc["columns"]:
        if not (isinstance(entry, (list, tuple)) and len(entry) == 3):
            raise CodecError("each column must be [name, dtype, values]")
        name, tag, values = entry
        if not isinstance(name, str) or not isinstance(values, list):
            raise CodecError("column name must be str, values a list")
        if name in columns:
            raise CodecError(f"duplicate column {name!r}")
        if len(values) != num_rows:
            raise CodecError(
                f"column {name!r} has {len(values)} values, "
                f"expected num_rows={num_rows}"
            )
        if tag == "object":
            array = np.empty(len(values), dtype=object)
            for i, value in enumerate(values):
                if not isinstance(value, str):
                    raise CodecError(
                        f"column {name!r}[{i}] is not a str"
                    )
                array[i] = value
        elif tag in _DTYPES:
            try:
                array = np.array(values, dtype=_DTYPES[tag])
            except (TypeError, ValueError, OverflowError) as exc:
                raise CodecError(
                    f"column {name!r} does not decode as {tag}: {exc}"
                ) from None
            if array.ndim != 1:
                raise CodecError(f"column {name!r} is not one-dimensional")
        else:
            raise CodecError(f"column {name!r} has unknown dtype tag {tag!r}")
        columns[name] = array
    return Table(columns, copy=False)


# --------------------------------------------------------------------- #
# Figure payloads (nested dicts / arrays / scalars / tables)
# --------------------------------------------------------------------- #


def encode_value(value: Any) -> Any:
    """Encode a figure payload value for the wire, recursively.

    Plain scalars pass through (numpy scalars become Python ones), numpy
    arrays and tables become ``__kind__``-tagged documents, and sequences
    become lists.  A dict keeps its shape unless a key is non-``str`` or
    collides with the marker, in which case it is escaped as an item list
    so decode can restore it exactly.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            return {
                _KIND: "ndarray",
                "dtype": "object",
                "values": [encode_value(v) for v in value.tolist()],
            }
        tag = str(value.dtype)
        if tag not in _DTYPES:
            raise CodecError(f"ndarray dtype {tag!r} is not wire-safe")
        return {_KIND: "ndarray", "dtype": tag, "values": value.tolist()}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and _KIND not in value:
            return {k: encode_value(v) for k, v in value.items()}
        return {
            _KIND: "dict",
            "items": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ],
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    # A Table inside a payload (fig26 carries one).
    from repro.tables import Table

    if isinstance(value, Table):
        return {_KIND: "table", **encode_table(value)}
    raise CodecError(
        f"value of type {type(value).__name__} is not wire-safe"
    )


def decode_value(doc: Any) -> Any:
    """Reverse of :func:`encode_value`."""
    if doc is None or isinstance(doc, (bool, int, float, str)):
        return doc
    if isinstance(doc, list):
        return [decode_value(v) for v in doc]
    if isinstance(doc, dict):
        kind = doc.get(_KIND)
        if kind is None:
            return {k: decode_value(v) for k, v in doc.items()}
        if kind == "ndarray":
            tag = doc["dtype"]
            values = [decode_value(v) for v in doc["values"]]
            if tag == "object":
                array = np.empty(len(values), dtype=object)
                for i, v in enumerate(values):
                    array[i] = v
                return array
            if tag not in _DTYPES:
                raise CodecError(f"unknown ndarray dtype tag {tag!r}")
            return np.array(values, dtype=_DTYPES[tag])
        if kind == "dict":
            return {
                decode_value(k): decode_value(v) for k, v in doc["items"]
            }
        if kind == "table":
            return decode_table(doc)
        raise CodecError(f"unknown value kind {kind!r}")
    raise CodecError(f"cannot decode value of type {type(doc).__name__}")


def dumps_canonical(doc: Any) -> bytes:
    """Deterministic JSON bytes for an already-encoded document."""
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")
