"""The service's HTTP routes, plugged into the live telemetry server.

:class:`ServiceApp` is the ``app`` object :class:`repro.obs.live.
TelemetryServer` dispatches to after its own telemetry routes: the
telemetry endpoints (``/metrics``, ``/events``, ``/healthz``, ...) keep
working unchanged, and the service adds the study's data plane.

Endpoints
---------
- ``POST /ingest`` — fold one schema-versioned micro-batch into the
  standing state (:class:`repro.service.state.ServiceState`).  Malformed
  or mismatched payloads are a 400, injected/unexpected failures a 500;
  both count ``serve.ingest_failed`` and leave the state untouched.
- ``GET /ingest/status`` — wire schema, expected ``config_key``, layer
  versions, and row counts (the client handshake).
- ``GET /tables`` and ``GET /tables/<name>`` — the released tables
  (``catalog``, ``instances``), the streaming aggregates
  (``batch_rollup``, ``trust_cdf``, ``duration_hist``), and the enriched
  tables (``batch_table``, ``cluster_table``, ``labels``).
- ``GET /figures`` and ``GET /figures/<name>`` — every
  :class:`~repro.figures.suite.FigureSuite` entry point.
- ``GET /fidelity`` — the paper-vs-measured fidelity probes
  (:func:`repro.obs.ledger.fidelity_probes`).

Caching
-------
Every data response is cached in :class:`~repro.service.respcache.
ResponseCache` keyed by the versions of exactly the state layers the
route reads, and served with a strong sha-256 ``ETag``; a request whose
``If-None-Match`` equals the current ETag gets a bodyless 304.  Bodies
are canonical JSON (:func:`repro.service.codec.dumps_canonical`), so the
ETag changes *iff* the served bytes change.

The module-level ``table_body`` / ``figure_body`` / ``fidelity_body``
helpers are the entire rendering path — pure functions the differential
harness calls directly to predict served bytes from a batch study.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro import obs
from repro.service.codec import dumps_canonical, encode_table, encode_value
from repro.service.respcache import ResponseCache
from repro.service.state import IngestError, ServiceState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.figures.suite import FigureSuite
    from repro.simulator.config import SimulationConfig
    from repro.tables import Table

_INGEST_FAILED = obs.counter("serve.ingest_failed")
_NOT_MODIFIED = obs.counter("serve.not_modified")

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Streaming tables: name -> (ServiceState method, state layers read).
STREAM_TABLES: dict[str, tuple[str, tuple[str, ...]]] = {
    "catalog": ("catalog_table", ("catalog",)),
    "instances": ("instances_table", ("instances",)),
    "batch_rollup": ("rollup_table", ("instances",)),
    "trust_cdf": ("trust_cdf", ("instances",)),
    "duration_hist": ("duration_hist", ("instances",)),
}

#: Enriched tables (need the memoized snapshot, read every layer).
ENRICHED_TABLES = ("batch_table", "cluster_table", "labels")
_ALL_LAYERS = ("catalog", "instances", "html")


def figure_names() -> tuple[str, ...]:
    """Every servable figure/table entry point, in suite order."""
    from repro.figures.suite import _FIGURE_ENTRY_POINTS

    return _FIGURE_ENTRY_POINTS


# --------------------------------------------------------------------- #
# Pure rendering (tests predict served bytes with exactly these)
# --------------------------------------------------------------------- #


def table_body(table: "Table") -> bytes:
    return dumps_canonical(encode_table(table))


def figure_body(payload: Any) -> bytes:
    return dumps_canonical(encode_value(payload))


def fidelity_body(figures: "FigureSuite") -> bytes:
    from repro.obs import ledger

    return dumps_canonical(encode_value(ledger.fidelity_probes(figures)))


class ServiceApp:
    """Route table + standing state + response cache for one study."""

    def __init__(
        self,
        config: "SimulationConfig",
        *,
        scale: str | None = None,
        cache: ResponseCache | None = None,
    ):
        self.state = ServiceState(config)
        self.cache = cache if cache is not None else ResponseCache()
        self.scale = scale

    # ------------------------------------------------------------------ #
    # Dispatch (called by repro.obs.live._Handler)
    # ------------------------------------------------------------------ #

    def handle_get(self, handler, path: str, query: Mapping[str, str]) -> bool:
        """Serve a GET if the path is ours; returns whether it was."""
        if path == "/ingest/status":
            status = self.state.status()
            if self.scale is not None:
                status["scale"] = self.scale
            status["seed"] = self.state.config.seed
            handler._send_json(status)
            return True
        if path == "/tables":
            handler._send_json({
                "stream": sorted(STREAM_TABLES),
                "enriched": list(ENRICHED_TABLES),
            })
            return True
        if path == "/figures":
            handler._send_json({"figures": list(figure_names())})
            return True
        if path.startswith("/tables/"):
            self._route_table(handler, path, path[len("/tables/"):])
            return True
        if path.startswith("/figures/"):
            self._route_figure(handler, path, path[len("/figures/"):])
            return True
        if path == "/fidelity":
            self._serve_cached(
                handler, path, _ALL_LAYERS,
                lambda: fidelity_body(self.state.snapshot().figures),
            )
            return True
        return False

    def handle_post(self, handler, path: str, query: Mapping[str, str]) -> bool:
        """Serve a POST if the path is ours; returns whether it was."""
        if path != "/ingest":
            return False
        self._route_ingest(handler)
        return True

    # ------------------------------------------------------------------ #
    # Data-plane GETs
    # ------------------------------------------------------------------ #

    def _route_table(self, handler, path: str, name: str) -> None:
        stream = STREAM_TABLES.get(name)
        if stream is not None:
            method, layers = stream
            self._serve_cached(
                handler, path, layers,
                lambda: table_body(getattr(self.state, method)()),
            )
        elif name in ENRICHED_TABLES:
            self._serve_cached(
                handler, path, _ALL_LAYERS,
                lambda: table_body(
                    getattr(self.state.snapshot().enriched, name)
                ),
            )
        else:
            handler._send_json(
                {"error": f"no table {name!r}"}, status=404
            )

    def _route_figure(self, handler, path: str, name: str) -> None:
        if name not in figure_names():
            handler._send_json(
                {"error": f"no figure {name!r}"}, status=404
            )
            return
        self._serve_cached(
            handler, path, _ALL_LAYERS,
            lambda: figure_body(
                getattr(self.state.snapshot().figures, name)()
            ),
        )

    def _serve_cached(
        self,
        handler,
        path: str,
        layers: tuple[str, ...],
        render: Callable[[], bytes],
    ) -> None:
        """The cached-read flow: deps lookup, render on miss, ETag/304."""
        deps = self.state.version_of(*layers)
        entry = self.cache.get(path, deps)
        if entry is None:
            try:
                body = render()
            except IngestError as exc:
                handler._send_json({"error": str(exc)}, status=409)
                return
            entry = self.cache.put(path, deps, body, JSON_CONTENT_TYPE)
        etag = f'"{entry.etag}"'
        if handler.headers.get("If-None-Match") == etag:
            _NOT_MODIFIED.inc()
            handler.send_response(304)
            handler.send_header("ETag", etag)
            handler.end_headers()
            return
        handler.send_response(200)
        handler.send_header("Content-Type", entry.content_type)
        handler.send_header("Content-Length", str(len(entry.body)))
        handler.send_header("ETag", etag)
        handler.end_headers()
        handler.wfile.write(entry.body)

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def _route_ingest(self, handler) -> None:
        from repro import faults

        try:
            length = int(handler.headers.get("Content-Length") or 0)
            body = handler.rfile.read(length)
            kind = faults.fire("serve.ingest")
            if kind == "corrupt":
                # Physically truncate the upload: the real decode/validate
                # defenses are the thing under test, same discipline as
                # cache.load:corrupt.
                body = body[: len(body) // 2]
            elif kind == "fail":
                raise faults.InjectedFault(
                    "injected fault: serve.ingest:fail"
                )
            payload = json.loads(body.decode("utf-8"))
            summary = self.state.ingest(payload)
        except ValueError as exc:
            # IngestError, CodecError, JSON/unicode decode errors: the
            # client sent a bad micro-batch.  State is untouched.
            _INGEST_FAILED.inc()
            handler._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=400
            )
            return
        except Exception as exc:
            _INGEST_FAILED.inc()
            handler._send_json(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500
            )
            return
        handler._send_json({"status": "ok", **summary})
