"""The released-data layer: what the marketplace actually handed over (§2).

The simulator produces full ground truth; the paper's authors received only
(1) a catalog of *all* batches with title and creation date, (2) full
metadata plus one sample-task HTML for a ~21% batch sample, and (3) the
instance-level log (worker, item, times, trust, response) for sampled
batches.  :func:`~repro.dataset.release.release_dataset` applies exactly
that lens, and everything downstream (enrichment, analyses, figures)
consumes only the release.
"""

from repro.dataset.release import ReleasedDataset, release_dataset
from repro.dataset.store import StoreError, load_dataset, save_dataset

__all__ = [
    "ReleasedDataset",
    "StoreError",
    "load_dataset",
    "release_dataset",
    "save_dataset",
]
