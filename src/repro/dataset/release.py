"""Construct the released dataset from simulator ground truth (paper §2.2–2.3).

The release deliberately *omits* everything the paper says was missing:
requester ids, distinct-task ids (clustering must re-derive them), ground
truth answers, test questions, and payments.  Worker attributes are carried
per instance (worker id, source, country) exactly as §2.3 lists them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.htmlgen import render_task_html
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import MarketplaceState
from repro.tables import DictColumn, Table, dict_encode


@dataclass
class ReleasedDataset:
    """What the analysis layer is allowed to see.

    Attributes
    ----------
    batch_catalog:
        One row per batch in the *entire* marketplace: ``batch_id``,
        ``title``, ``created_at``, ``sampled``.  Mirrors the paper's
        "minimal data about the remaining [batches], consisting only of the
        title of the task and the creation date".
    batch_html:
        ``batch_id -> sample task HTML`` for sampled batches only.
    instances:
        Instance-level log for sampled batches: ``instance_id``,
        ``batch_id``, ``item_id``, ``worker_id``, ``source``, ``country``,
        ``start_time``, ``end_time``, ``trust``, ``response``.
    """

    batch_catalog: Table
    batch_html: dict[int, str]
    instances: Table

    @property
    def num_sampled_batches(self) -> int:
        return len(self.batch_html)


def _render_batch_html(
    state: MarketplaceState,
    batch_ids: np.ndarray,
    rng: np.random.Generator,
    render_mask: np.ndarray | None = None,
) -> dict[int, str]:
    """Render sample-task HTML for ``batch_ids`` (in order).

    The render loop consumes RNG draws *sequentially* (item token, footer
    coin, footer revision), so a shard cannot simply skip foreign batches.
    ``render_mask`` (bool per position in ``batch_ids``) makes non-owned
    batches *replay* exactly the draws a render would consume without
    building the string — keeping the stream, and therefore every rendered
    byte, identical to the monolithic run.
    """
    tasks = state.tasks
    html: dict[int, str] = {}
    for pos, batch_id in enumerate(batch_ids):
        if render_mask is not None and not render_mask[pos]:
            # Draw replay: mirror the render path's RNG consumption below.
            rng.integers(10**8)
            if rng.random() < 0.15:
                rng.integers(100)
            continue
        t = int(state.batches.task_idx[batch_id])
        item_token = f"unit-{int(rng.integers(10**8)):08d}"
        rendered = render_task_html(
            title=str(tasks.title[t]),
            goals=tasks.goals[t],
            operators=tasks.operators[t],
            data_types=tasks.data_types[t],
            num_words=int(tasks.num_words[t]),
            num_text_boxes=int(tasks.num_text_boxes[t]),
            num_examples=int(tasks.num_examples[t]),
            num_images=int(tasks.num_images[t]),
            num_choices=int(tasks.num_choices[t]),
            template_salt=int(tasks.template_salt[t]),
            item_token=item_token,
        )
        # Mild per-batch template drift (requesters tweak footers between
        # re-issues) so clustering must genuinely match near-duplicates.
        if rng.random() < 0.15:
            footer = f"<p>batch revision {int(rng.integers(100))} posted</p>"
            rendered = rendered.replace("</body>", footer + "</body>")
        html[int(batch_id)] = rendered
    return html


def release_dataset(
    state: MarketplaceState,
    config: SimulationConfig,
    *,
    shard: int | None = None,
    num_shards: int | None = None,
) -> ReleasedDataset:
    """Apply the §2.2 sampling lens to the simulated marketplace.

    With ``shard``/``num_shards`` set (matching the sharded
    :func:`repro.simulator.engine.simulate_marketplace` call that produced
    ``state``), the batch catalog and sampling mask are still computed in
    full — they are global and cheap — but HTML is rendered only for the
    shard's own sampled batches (foreign batches replay their RNG draws)
    and the instance table covers only the shard's rows.
    """
    from repro.simulator.engine import _validate_shard
    from repro.simulator.rng import StreamFactory

    sharded = _validate_shard(shard, num_shards)
    rng = StreamFactory(config.seed).stream("release")
    num_batches = state.batches.num_batches

    sampled = rng.random(num_batches) < config.batch_sample_prob
    if not sampled.any():
        sampled[rng.integers(num_batches)] = True
    sampled_ids = np.flatnonzero(sampled)

    render_mask = None
    if sharded:
        render_mask = sampled_ids % num_shards == shard

    batch_catalog = Table(
        {
            "batch_id": np.arange(num_batches, dtype=np.int64),
            "title": state.tasks.title[state.batches.task_idx],
            "created_at": state.batches.start_time,
            "sampled": sampled,
        },
        copy=False,
    )

    batch_html = _render_batch_html(state, sampled_ids, rng, render_mask)

    log = state.instances
    keep = sampled[log.batch_idx]
    worker = log.worker_id[keep]
    source_names = np.array(state.sources.names, dtype=object)
    # The simulator already holds per-worker source *codes*; carrying them
    # as a dictionary column means group-bys and joins on "source" (and
    # "country") never hash a string.
    source = DictColumn(
        state.workers.source_idx[worker].astype(np.int32), source_names
    )
    instances = Table(
        {
            "instance_id": log.global_ids[keep].astype(np.int64),
            "batch_id": log.batch_idx[keep],
            "item_id": log.item_id[keep],
            "worker_id": worker,
            "source": source,
            "country": dict_encode(state.workers.country[worker]),
            "start_time": log.start_time[keep],
            "end_time": log.end_time[keep],
            "trust": log.trust[keep],
            "response": log.response[keep],
        },
        copy=False,
    )
    return ReleasedDataset(
        batch_catalog=batch_catalog,
        batch_html=batch_html,
        instances=instances,
    )
