"""Persist a released dataset to disk and load it back.

Layout (one directory per dataset)::

    <root>/
      manifest.json           # counts + format version
      batch_catalog.csv       # all batches: id, title, created_at, sampled
      instances.csv           # sampled instance log
      html/<batch_id>.html    # one sample interface per sampled batch

Round-tripping through the store is exact for every column the analyses
read; tests verify the enrichment pipeline produces identical results from
a reloaded dataset.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import faults
from repro.dataset.release import ReleasedDataset
from repro.tables import read_csv, write_csv

FORMAT_VERSION = 1


class StoreError(RuntimeError):
    """Raised for malformed or incompatible on-disk datasets."""


def save_dataset(released: ReleasedDataset, root: str | Path) -> Path:
    """Write ``released`` under ``root`` (created if missing).

    Returns the dataset directory.  Refuses to overwrite a directory that
    already contains a manifest with different content shape.

    Failure-safe: any pre-existing manifest is removed *first* and the new
    one is written last (atomically), so a save that dies midway — disk
    full, or an injected ``dataset.save:fail`` fault (:mod:`repro.faults`)
    — can never pair a stale manifest with partial files; the partial
    directory fails :func:`load_dataset` loudly instead.
    """
    root = Path(root)
    html_dir = root / "html"
    html_dir.mkdir(parents=True, exist_ok=True)
    manifest_path = root / "manifest.json"
    manifest_path.unlink(missing_ok=True)
    faults.check("dataset.save")

    write_csv(released.batch_catalog, root / "batch_catalog.csv")
    write_csv(released.instances, root / "instances.csv")
    for batch_id, html in released.batch_html.items():
        (html_dir / f"{batch_id}.html").write_text(html)

    manifest = {
        "format_version": FORMAT_VERSION,
        "num_batches": released.batch_catalog.num_rows,
        "num_sampled_batches": released.num_sampled_batches,
        "num_instances": released.instances.num_rows,
    }
    tmp_path = root / ".manifest.json.tmp"
    tmp_path.write_text(json.dumps(manifest, indent=2))
    os.replace(tmp_path, manifest_path)
    return root


def load_dataset(root: str | Path) -> ReleasedDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    root = Path(root)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise StoreError(f"no manifest.json under {root}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"unsupported dataset format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )

    batch_catalog = read_csv(root / "batch_catalog.csv")
    instances = read_csv(root / "instances.csv")

    html: dict[int, str] = {}
    for path in sorted((root / "html").glob("*.html")):
        html[int(path.stem)] = path.read_text()

    released = ReleasedDataset(
        batch_catalog=batch_catalog,
        batch_html=html,
        instances=instances,
    )
    if released.num_sampled_batches != manifest["num_sampled_batches"]:
        raise StoreError(
            f"manifest promises {manifest['num_sampled_batches']} sampled "
            f"batches, found {released.num_sampled_batches} html files"
        )
    if released.instances.num_rows != manifest["num_instances"]:
        raise StoreError(
            f"manifest promises {manifest['num_instances']} instances, "
            f"found {released.instances.num_rows}"
        )
    return released
