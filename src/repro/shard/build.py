"""Orchestration: build shards, spill, load, and merge into one study.

The flow for ``K`` shards:

1. **Fan out** one task per shard over :func:`repro.parallel.map_chunks`
   (``REPRO_WORKERS`` controls the pool; serial by default).  Each task
   simulates its shard (full-size numeric RNG replay, shard-sliced
   materialization), applies the release lens, computes the per-batch
   enrichment parts (design, metrics, shingles), and **spills** the
   partial to the shard store — returning only a marker, so a serial
   build's peak memory is one shard's working set.  Pooled builds flow
   through the as-completed dispatcher in :mod:`repro.parallel` (an idle
   worker takes the next pending shard, so one straggler shard does not
   serialize the rest); serial builds instead overlap each shard's spill
   I/O with the next shard's compute through a double-buffered
   :class:`~repro.shard.store.SpillWriter` (overlap recorded in the
   ``shard.overlap_seconds`` histogram).
2. **Merge** loads the partials back *lean* — the per-batch pieces
   eagerly, the instance tables as read-on-demand views over the store
   (an entry that went missing or corrupt is quarantined and rebuilt in
   process) — runs the unchanged single-level clustering over the pooled
   shingles and frees them, streams the instance union together column
   by column in global order, and assembles the final tables through
   :func:`repro.enrichment.pipeline.assemble_enrichment` — the same code
   path the monolithic build uses, which is why the result is
   byte-identical.

Observability: ``shard.built`` counts shard builds, ``shard.rebuilt``
counts merge-time rebuilds after a failed load, and the merge wall time
lands in the ``shard.merge_seconds`` histogram plus the ``shard.merge``
span.  Each shard build also notes its busy interval with
:mod:`repro.obs.sampler` so a serial (in-process) build still produces a
per-shard utilization timeline; pooled builds get their intervals from the
chunk marks :mod:`repro.parallel` ships back instead.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING

import numpy as np

from repro import cache as study_cache
from repro import faults, obs
from repro.obs import live as obs_live
from repro.parallel import map_chunks, worker_count
from repro.shard import store
from repro.shard.store import ShardPartial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset
    from repro.simulator.config import SimulationConfig

_SHARDS_BUILT = obs.counter("shard.built")
_SHARDS_REBUILT = obs.counter("shard.rebuilt")
_MERGE_SECONDS = obs.histogram("shard.merge_seconds")


def build_shard_partial(
    config: "SimulationConfig", num_shards: int, shard: int
) -> ShardPartial:
    """Simulate, release, and pre-enrich one shard."""
    from repro.dataset.release import release_dataset
    from repro.enrichment.clustering import shingle_corpus
    from repro.enrichment.design import extract_design_parameters
    from repro.enrichment.metrics import compute_batch_metrics
    from repro.obs import sampler
    from repro.simulator.engine import simulate_marketplace

    t0 = time.perf_counter()
    with obs.span("shard.build", shard=shard, num_shards=num_shards) as sp:
        if faults.fire("shard.build") == "sleep":
            # Deterministic straggler: this shard takes SLOW_PHASE_SLEEP_S
            # longer, so skew-scheduling tests have a shard to steal around.
            time.sleep(faults.SLOW_PHASE_SLEEP_S)
        state = simulate_marketplace(
            config, shard=shard, num_shards=num_shards
        )
        released = release_dataset(
            state, config, shard=shard, num_shards=num_shards
        )
        catalog = released.batch_catalog if shard == 0 else None
        del state  # free the ground-truth world before enrichment parts
        design = extract_design_parameters(released.batch_html)
        metrics = compute_batch_metrics(released)
        shingle_ids, shingle_arrays = shingle_corpus(released.batch_html)
        sp.set("instances", released.instances.num_rows)
    sampler.note_interval(
        os.getpid(), t0, time.perf_counter(), f"shard {shard}"
    )
    _SHARDS_BUILT.inc()
    return ShardPartial(
        shard=shard,
        num_shards=num_shards,
        catalog=catalog,
        instances=released.instances,
        design=design,
        metrics=metrics,
        batch_html=released.batch_html,
        shingle_ids=np.asarray(shingle_ids, dtype=np.int64),
        shingle_arrays=shingle_arrays,
    )


def _shard_task(
    args: tuple["SimulationConfig", int, int, bool]
) -> tuple[str, int, ShardPartial | None]:
    """Build (or reuse) one shard; spill when the store is enabled.

    Returns ``(status, shard, partial-or-None)`` where a ``None`` partial
    means it was spilled and the merge should load it from the store —
    keeping both the fan-out pickling and the serial build's peak memory
    to one shard.
    """
    config, num_shards, shard, spill = args
    if spill:
        partial = store.load_partial(config, num_shards, shard)
        if partial is not None:
            return ("reused", shard, None)
    partial = build_shard_partial(config, num_shards, shard)
    if spill and store.store_partial(config, partial) is not None:
        return ("spilled", shard, None)
    return ("inline", shard, partial)


def _serial_shard_tasks(
    config: "SimulationConfig", num_shards: int, use_store: bool
) -> list[tuple[str, int, ShardPartial | None]]:
    """Serial shard loop with spill I/O overlapped via a background writer.

    Status-for-status equivalent to mapping :func:`_shard_task` over the
    shards serially; the only difference is *when* the spill I/O runs.
    Each built partial is handed to a :class:`~repro.shard.store.SpillWriter`
    which writes it on a background thread while the next shard simulates,
    so a serial build's wall time tends toward ``max(compute, spill)`` per
    shard instead of their sum.  The writer keeps at most one spill in
    flight, so peak memory stays bounded at two shards' working sets (the
    partial being built plus the one being written) — the same discipline
    the inline spill had, one buffer wider.

    Spill *outcomes* keep :func:`store_partial`'s posture: a failed spill
    hands the partial back here and it is carried inline, exactly as the
    non-overlapped path would.
    """
    results: list[tuple[str, int, ShardPartial | None]] = []
    submitted: list[int] = []
    with store.SpillWriter(config) as writer:
        for shard in range(num_shards):
            if use_store:
                if store.load_partial(config, num_shards, shard) is not None:
                    results.append(("reused", shard, None))
                    obs_live.publish(
                        "shard.progress", shard=shard, total=num_shards,
                        status="reused",
                    )
                    continue
            partial = build_shard_partial(config, num_shards, shard)
            obs_live.publish(
                "shard.progress", shard=shard, total=num_shards,
                status="built",
            )
            if use_store:
                writer.submit(partial)
                submitted.append(shard)
            else:
                results.append(("inline", shard, partial))
        outcomes = writer.finish()
    for shard in submitted:
        entry, partial = outcomes[shard]
        if entry is not None:
            results.append(("spilled", shard, None))
        else:
            results.append(("inline", shard, partial))
    return results


def build_released_enriched(
    config: "SimulationConfig",
    num_shards: int,
    *,
    spill: bool | None = None,
) -> tuple["ReleasedDataset", "EnrichedDataset"]:
    """Build the released + enriched layers over ``num_shards`` shards.

    Byte-identical to ``release_dataset(simulate_marketplace(config),
    config)`` + ``enrich_dataset(...)`` for any shard count (the
    differential suite pins this).  ``spill`` controls the on-disk shard
    store; ``None`` follows :func:`repro.cache.cache_enabled`.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    use_store = study_cache.cache_enabled(spill)

    with obs.span("shard.pipeline", num_shards=num_shards) as sp:
        if worker_count() > 1 and num_shards >= 2:
            # Pooled fan-out: one chunk per shard through the as-completed
            # dispatcher, spill inline inside each worker (a worker cannot
            # report "spilled" before its own store write finishes anyway).
            tasks = [
                (config, num_shards, shard, use_store)
                for shard in range(num_shards)
            ]
            results = map_chunks(
                _shard_task, tasks, chunk_size=1, min_items=2
            )
        else:
            # Serial build: overlap each shard's spill with the next
            # shard's compute instead.
            results = _serial_shard_tasks(config, num_shards, use_store)

        # One summary event per shard once every result is in (the pooled
        # path's live progress comes from the parallel chunk events; this
        # adds each shard's final status for SSE clients on either path).
        for done, (status, shard, _partial) in enumerate(
            sorted(results, key=lambda r: r[1]), start=1
        ):
            obs_live.publish(
                "shard.result", shard=shard, total=num_shards,
                status=status, done=done,
            )

        t0 = time.perf_counter()
        with obs.span("shard.merge", num_shards=num_shards):
            partials: list[ShardPartial] = []
            for status, shard, partial in sorted(
                results, key=lambda r: r[1]
            ):
                if partial is None:
                    partial = store.load_partial(
                        config, num_shards, shard, lean=True
                    )
                if partial is None:
                    # Spilled but unreadable at merge time (evicted,
                    # corrupt, injected fault): rebuild in process.
                    _SHARDS_REBUILT.inc()
                    partial = build_shard_partial(config, num_shards, shard)
                partials.append(partial)
            released, enriched = merge_partials(config, partials)
        _MERGE_SECONDS.observe(time.perf_counter() - t0)
        sp.set("instances", released.instances.num_rows)
        sp.set("clusters", enriched.num_clusters)
    return released, enriched


def merge_partials(
    config: "SimulationConfig", partials: list[ShardPartial]
) -> tuple["ReleasedDataset", "EnrichedDataset"]:
    """Merge shard partials into the monolithic released/enriched layers.

    Exactness per layer: instance rows are concatenated and stably sorted
    by global instance id (each shard is already internally ordered);
    design/metrics rows likewise by batch id; the batch catalog is global
    and carried verbatim by shard 0; clustering runs the unchanged
    single-level pass over the pooled shingle arrays in global sorted
    order; and the final tables come out of the same
    :func:`~repro.enrichment.pipeline.assemble_enrichment` the monolithic
    pipeline uses.

    Consumes ``partials`` destructively to keep the union-sized pieces
    from coexisting: the shingle pool is clustered and freed before the
    instance tables are merged, and the instance merge walks the union
    column by column — reading straight from the spill store when a
    partial was loaded lean — so the peak is roughly the merged output
    plus one column, not the output plus every shard's table.
    """
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.clustering import cluster_shingled
    from repro.enrichment.pipeline import assemble_enrichment
    from repro.tables import concat_tables

    if not partials:
        raise ValueError("cannot merge zero shard partials")
    catalog = next(
        (p.catalog for p in partials if p.catalog is not None), None
    )
    if catalog is None:
        raise ValueError("no shard partial carries the batch catalog")

    batch_html: dict[int, str] = {}
    for partial in partials:
        batch_html.update(partial.batch_html)
        partial.batch_html = {}

    shingle_ids = np.concatenate([p.shingle_ids for p in partials])
    shingle_arrays = [
        array for p in partials for array in p.shingle_arrays
    ]
    for partial in partials:
        partial.shingle_arrays = []
    order = np.argsort(shingle_ids, kind="stable")
    with obs.span("shard.merge.cluster", docs=len(order)):
        cluster_of_batch = cluster_shingled(
            [int(b) for b in shingle_ids[order]],
            [shingle_arrays[i] for i in order],
        )
    shingle_arrays.clear()

    design = concat_tables([p.design for p in partials])
    design = design.take(np.argsort(design["batch_id"], kind="stable"))
    metrics = concat_tables([p.metrics for p in partials])
    metrics = metrics.take(np.argsort(metrics["batch_id"], kind="stable"))

    instance_tables = [p.instances for p in partials]
    for partial in partials:
        partial.instances = None  # type: ignore[assignment]
    instances = _merge_sorted_by(instance_tables, "instance_id")

    released = ReleasedDataset(
        batch_catalog=catalog,
        batch_html=batch_html,
        instances=instances,
    )
    enriched = assemble_enrichment(
        released, config, cluster_of_batch, design, metrics
    )
    return released, enriched


def _merge_sorted_by(tables: list, key: str):
    """Concatenate tables and stable-sort the rows by ``key``, column-wise.

    Byte-identical to ``concat_tables(tables).take(argsort(table[key],
    kind="stable"))``, but each column of the union is fetched (for a
    :class:`~repro.shard.store.SpilledTable`, read from disk), placed into
    the output, and freed before the next one — peak memory is the merged
    output plus about one column, not two whole extra tables.  Consumes
    ``tables`` destructively.
    """
    from repro.tables import Table

    names = list(tables[0].column_names)
    key_column = np.concatenate([t[key] for t in tables])
    order = np.argsort(key_column, kind="stable")
    merged = {}
    for name in names:
        if name == key:
            column = key_column
        else:
            parts = [t[name] for t in tables]
            column = np.concatenate(parts)
            parts.clear()
        merged[name] = column[order]
        del column
    del key_column
    tables.clear()
    return Table(merged, copy=False)
