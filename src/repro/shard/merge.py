"""Mergeable partial aggregates: the out-of-core group-by merge algebra.

:class:`MergeableGroupBy` accumulates group-by partial states over table
*partitions* (shards, spills, streamed chunks) and finalizes them into one
result table — the streaming counterpart of
``repro.tables.group_by(t, key).agg(spec)``.

Algebra
-------
Two kinds of per-group state, chosen per aggregation:

- **Scalar states** (``count``, ``min``, ``max``): a running scalar.
  Exactly associative, commutative, and partition-invariant by integer /
  lattice arithmetic.
- **Value buffers** (``sum``, ``mean``, ``median``, ``p<NN>``,
  ``nunique``): the group's values, kept as a list of per-partition
  segments and only combined at :meth:`finalize`.  Order statistics and
  distinct counts *need* the multiset; sums use :func:`math.fsum` over the
  pooled values — the exactly rounded sum of the multiset — so even
  floating-point sums are invariant to partitioning and merge order.

Because every state is a function of the group's value *multiset* (plus
scalar lattices), ``merge`` is exactly associative and commutative, and
any partitioning of the input rows finalizes to identical bytes — the
property-based suite (``tests/test_shard_merge_properties.py``) pins all
three laws.  Relative to the in-memory ``group_by``, which accumulates
float sums with ``np.add.reduceat`` in row order, pooled ``sum``/``mean``
values may differ in the last ulp; order statistics, counts, and extrema
are bit-identical.

The CDF and histogram merge kernels live with their types
(:meth:`repro.stats.cdf.EmpiricalCDF.merge`,
:meth:`repro.stats.histogram.Histogram.merge`).

:class:`IncrementalTableFold` extends the same discipline from aggregates
to whole released tables: segments keyed by a unique column accumulate in
arrival order and finalize to concat + stable-argsort-by-key — the exact
construction ``repro.shard.build`` uses to prove sharded row order
byte-identical to the monolithic build, so any partitioning of the rows,
arriving in any order, folds to identical bytes.  This is the standing
state behind the incremental ingest service (:mod:`repro.service`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tables import Table

_TABLES_MERGED = obs.counter("shard.groupby_tables_merged")

#: Aggregations whose per-group state is a running scalar.
_SCALAR_AGGS = ("count", "min", "max")
#: Aggregations that need the group's value multiset at finalize time.
_BUFFER_AGGS = ("sum", "mean", "median", "nunique")


def _is_percentile(how: str) -> bool:
    return (
        how.startswith("p")
        and how[1:].replace(".", "", 1).isdigit()
        and 0.0 <= float(how[1:]) <= 100.0
    )


def _validate_spec(
    spec: Mapping[str, tuple[str, str]]
) -> dict[str, tuple[str, str]]:
    validated: dict[str, tuple[str, str]] = {}
    for out_name, (in_name, how) in spec.items():
        if (
            how not in _SCALAR_AGGS
            and how not in _BUFFER_AGGS
            and not _is_percentile(how)
        ):
            raise ValueError(
                f"aggregation {how!r} is not mergeable; expected one of "
                f"{', '.join(_SCALAR_AGGS + _BUFFER_AGGS)}, or p<NN>"
            )
        validated[out_name] = (in_name, how)
    return validated


class _GroupState:
    """Per-group partial state: scalars plus per-column value buffers."""

    __slots__ = ("count", "minimums", "maximums", "buffers")

    def __init__(self, buffer_cols: tuple[str, ...]):
        self.count = 0
        self.minimums: dict[str, object] = {}
        self.maximums: dict[str, object] = {}
        self.buffers: dict[str, list[np.ndarray]] = {
            col: [] for col in buffer_cols
        }

    def absorb(self, other: "_GroupState") -> None:
        self.count += other.count
        for col, value in other.minimums.items():
            mine = self.minimums.get(col)
            self.minimums[col] = value if mine is None else min(mine, value)
        for col, value in other.maximums.items():
            mine = self.maximums.get(col)
            self.maximums[col] = value if mine is None else max(mine, value)
        for col, segments in other.buffers.items():
            self.buffers[col].extend(segments)


class MergeableGroupBy:
    """Group-by partial aggregates that merge exactly across partitions.

    >>> part = MergeableGroupBy("batch_id", {"n": ("batch_id", "count"),
    ...                                      "t": ("task_time", "median")})
    >>> part.update(shard_table)          # any number of partitions
    >>> part.merge(other_part)            # any order, any grouping
    >>> result = part.finalize()          # one row per key, sorted by key
    """

    def __init__(self, key: str, spec: Mapping[str, tuple[str, str]]):
        self.key = key
        self.spec = _validate_spec(spec)
        # min/max track running scalars; only multiset aggs buffer values.
        # Deduplicated: several aggregations may read the same column, but
        # its values must be buffered exactly once.
        self._buffer_cols = tuple(sorted({
            in_name
            for in_name, how in self.spec.values()
            if how in _BUFFER_AGGS or _is_percentile(how)
        }))
        self._minmax_cols = tuple(sorted({
            in_name
            for in_name, how in self.spec.values()
            if how in ("min", "max")
        }))
        self._groups: dict[object, _GroupState] = {}

    def _state(self, key_value: object) -> _GroupState:
        state = self._groups.get(key_value)
        if state is None:
            state = self._groups[key_value] = _GroupState(self._buffer_cols)
        return state

    def update(self, table: "Table") -> "MergeableGroupBy":
        """Fold one partition (a :class:`~repro.tables.Table`) in."""
        _TABLES_MERGED.inc()
        keys = np.asarray(table[self.key])
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        n = len(sorted_keys)
        if n == 0:
            return self
        starts = np.flatnonzero(
            np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
        )
        ends = np.r_[starts[1:], n]
        sorted_cols = {
            col: np.asarray(table[col])[order]
            for col in set(self._buffer_cols) | set(self._minmax_cols)
        }
        for s, e in zip(starts, ends):
            state = self._state(sorted_keys[s].item())
            state.count += int(e - s)
            for col in self._minmax_cols:
                segment = sorted_cols[col][s:e]
                lo, hi = segment.min().item(), segment.max().item()
                mine = state.minimums.get(col)
                state.minimums[col] = lo if mine is None else min(mine, lo)
                mine = state.maximums.get(col)
                state.maximums[col] = hi if mine is None else max(mine, hi)
            for col in self._buffer_cols:
                state.buffers[col].append(sorted_cols[col][s:e])
        return self

    def merge(self, other: "MergeableGroupBy") -> "MergeableGroupBy":
        """Absorb ``other``'s partial states (same key and spec) in place."""
        if other.key != self.key or other.spec != self.spec:
            raise ValueError("cannot merge group-bys with different specs")
        for key_value, state in other._groups.items():
            self._state(key_value).absorb(state)
        return self

    def finalize(self) -> "Table":
        """One row per key, sorted ascending by key.

        The canonical ordering makes the result independent of partition
        arrival order; group-by's own output happens to share it because
        its groups come from sorted key codes.
        """
        from repro.tables import Table

        key_values = sorted(self._groups)
        states = [self._groups[k] for k in key_values]
        out: dict[str, np.ndarray] = {
            self.key: np.array(key_values)
        }
        pooled: dict[tuple[object, str], np.ndarray] = {}

        def pool(key_value: object, state: _GroupState, col: str) -> np.ndarray:
            cached = pooled.get((key_value, col))
            if cached is None:
                segments = state.buffers[col]
                cached = (
                    np.concatenate(segments)
                    if segments
                    else np.empty(0, dtype=np.float64)
                )
                pooled[(key_value, col)] = cached
            return cached

        for out_name, (in_name, how) in self.spec.items():
            if how == "count":
                out[out_name] = np.array(
                    [s.count for s in states], dtype=np.int64
                )
            elif how == "min":
                out[out_name] = np.array(
                    [s.minimums[in_name] for s in states]
                )
            elif how == "max":
                out[out_name] = np.array(
                    [s.maximums[in_name] for s in states]
                )
            elif how == "sum":
                out[out_name] = np.array([
                    math.fsum(pool(k, s, in_name).tolist())
                    for k, s in zip(key_values, states)
                ])
            elif how == "mean":
                out[out_name] = np.array([
                    math.fsum(values.tolist()) / values.size
                    for values in (
                        pool(k, s, in_name)
                        for k, s in zip(key_values, states)
                    )
                ])
            elif how == "median":
                out[out_name] = np.array([
                    float(np.median(pool(k, s, in_name)))
                    for k, s in zip(key_values, states)
                ])
            elif how == "nunique":
                out[out_name] = np.array([
                    len(np.unique(pool(k, s, in_name)))
                    for k, s in zip(key_values, states)
                ], dtype=np.int64)
            else:  # p<NN>
                q = float(how[1:])
                out[out_name] = np.array([
                    float(np.percentile(pool(k, s, in_name), q))
                    for k, s in zip(key_values, states)
                ])
        return Table(out, copy=False)


class IncrementalTableFold:
    """Standing fold of table segments into one canonically ordered table.

    Segments share a schema and carry a *unique* key column (``instance_id``
    for the instance log, ``batch_id`` for the catalog).  :meth:`finalize`
    concatenates every folded segment and stable-sorts the rows by key —
    because the keys are unique, the result depends only on the row
    *multiset*, never on how the rows were partitioned into segments or in
    which order they arrived.  The monolithic build emits these tables
    sorted ascending by the same key, so the finalized fold is
    byte-identical to the one-shot batch table (the construction
    ``repro.shard.build._merge_sorted_by`` already relies on).

    Columns are materialized on fold (:class:`~repro.tables.DictColumn`
    storage becomes its object array), so finalized bytes are independent
    of any segment's dictionary code layout.  ``finalize`` is memoized and
    invalidated by the next :meth:`fold`.
    """

    def __init__(self, key: str):
        self.key = key
        self._segments: list[dict[str, np.ndarray]] = []
        self._names: list[str] | None = None
        self._num_rows = 0
        self._final: "Table | None" = None

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def column_names(self) -> list[str] | None:
        """Schema seen so far, or ``None`` before the first fold."""
        return None if self._names is None else list(self._names)

    def fold(self, table: "Table") -> int:
        """Fold one segment in; returns the number of rows added.

        The first non-empty segment fixes the schema; later segments must
        match it exactly (names *and* order) — a mismatched segment raises
        ``ValueError`` and leaves the fold untouched.
        """
        names = list(table.column_names)
        if self.key not in names:
            raise ValueError(
                f"segment is missing key column {self.key!r} "
                f"(has: {names})"
            )
        if table.num_rows == 0:
            return 0
        if self._names is None:
            self._names = names
        elif names != self._names:
            raise ValueError(
                f"segment schema {names} does not match the standing "
                f"schema {self._names}"
            )
        # Materialize now: DictColumn code layout depends on arrival order
        # and must never leak into the finalized bytes.
        self._segments.append(
            {name: np.asarray(table[name]) for name in names}
        )
        self._num_rows += table.num_rows
        self._final = None
        return table.num_rows

    def key_values(self) -> np.ndarray:
        """Every folded key, in arrival order (for duplicate screening)."""
        if not self._segments:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([seg[self.key] for seg in self._segments])

    def finalize(self) -> "Table":
        """All folded rows, stable-sorted ascending by the key column."""
        from repro.tables import Table

        if self._final is not None:
            return self._final
        if not self._segments:
            raise ValueError("cannot finalize an empty fold")
        assert self._names is not None
        keys = np.concatenate([seg[self.key] for seg in self._segments])
        order = np.argsort(keys, kind="stable")
        merged: dict[str, np.ndarray] = {}
        for name in self._names:
            if name == self.key:
                merged[name] = keys[order]
            else:
                merged[name] = np.concatenate(
                    [seg[name] for seg in self._segments]
                )[order]
        self._final = Table(merged, copy=False)
        return self._final


def merge_group_by(
    tables: "Iterable[Table]",
    key: str,
    spec: Mapping[str, tuple[str, str]],
) -> "Table":
    """Group-by over partitioned tables via mergeable partial aggregates.

    Streaming convenience over :class:`MergeableGroupBy`: each table is
    folded in and released before the next is touched, so peak memory is
    one partition plus the (buffered) partial states.
    """
    partial = MergeableGroupBy(key, spec)
    for table in tables:
        partial.update(table)
    return partial.finalize()
