"""Shard partitioning key and ``REPRO_SHARDS`` resolution.

Batches are the partition unit: every analysis groups by batch (or by
cluster, which is a set of batches), items never span batches, and the
batch id is stable across the monolithic and sharded runs.  The key is
plain modulo — ``batch_id % num_shards`` — which balances shards well
because batch sizes are i.i.d. in batch id.

``simulate_marketplace`` keeps an inline copy of this expression (the
engine cannot import this package without a cycle); the differential
equivalence suite pins the two against each other.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro import obs

#: Environment variable selecting the shard count for ``build_study``.
SHARDS_ENV = "REPRO_SHARDS"

_MISCONFIGURED = obs.counter("shard.misconfigured")


def shard_of_batches(batch_ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Owning shard of each batch id (``batch_id % num_shards``)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return np.asarray(batch_ids, dtype=np.int64) % num_shards


def resolve_shards(explicit: int | None = None) -> int:
    """Resolve the effective shard count (``explicit`` overrides the env).

    Mirrors :func:`repro.parallel.worker_count`'s posture toward bad
    input: garbage or non-positive values in ``REPRO_SHARDS`` resolve to 1
    (monolithic) — but loudly, with a ``RuntimeWarning`` and a
    ``shard.misconfigured`` counter increment, never silently.
    """
    if explicit is not None:
        if explicit < 1:
            raise ValueError(f"shards must be >= 1, got {explicit}")
        return int(explicit)
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        _MISCONFIGURED.inc()
        warnings.warn(
            f"repro.shard: {SHARDS_ENV}={raw!r} is not a positive integer; "
            f"running monolithic",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return value
