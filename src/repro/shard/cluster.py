"""Two-level minhash/LSH clustering: within shards, then across them.

The sharded study pipeline gets *exact* clustering for free — shards
precompute shingles and the merge runs the unchanged single-level
:func:`repro.enrichment.clustering.cluster_shingled` over their union, so
the partition is identical by construction.  That global pass still holds
every signature at once, though, which eventually outgrows memory.

:func:`cluster_batches_two_level` is the scalable alternative: cluster
each shard independently, then run LSH + exact-Jaccard verification over
one *representative* document per within-shard cluster, and union the
clusters whose representatives match.  It is approximate — a cross-shard
pair merges only if their representatives are similar enough — but for
near-duplicate corpora (the regime HTML template reuse produces) the
representative is interchangeable with any member, so recall relative to
the single-level pass stays at least as high as the LSH candidate recall.
``tests/test_shard_merge_properties.py`` pins recall >= single-level on
generated near-duplicate batches.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro import obs
from repro.enrichment.clustering import (
    _jaccard_sorted,
    _UnionFind,
    _validate_lsh_params,
    cluster_shingled,
    minhash_signatures,
    shingle_corpus,
)
from repro.shard.partition import shard_of_batches

_LEVEL2_PAIRS = obs.counter("cluster.two_level_pairs")


def cluster_batches_two_level(
    html_by_batch: Mapping[int, str],
    *,
    num_shards: int,
    threshold: float = 0.60,
    num_perm: int = 64,
    bands: int = 16,
    seed: int = 1234,
) -> dict[int, int]:
    """Cluster batches in two levels: per shard, then shard representatives.

    Returns ``batch_id -> cluster_id`` with cluster ids dense from 0 in
    order of first appearance over the globally sorted batch ids — the
    same numbering convention as
    :func:`repro.enrichment.clustering.cluster_batches`.
    """
    _validate_lsh_params(threshold, num_perm, bands)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")

    all_ids = np.array(sorted(html_by_batch), dtype=np.int64)
    owner = shard_of_batches(all_ids, num_shards)

    # Level 1: cluster each shard's documents independently.  Nodes of the
    # second level are (shard, local cluster) pairs; each contributes its
    # first member (in sorted batch-id order) as representative.
    node_of_batch: dict[int, int] = {}
    rep_arrays: list[np.ndarray] = []
    with obs.span("cluster.two_level.local", shards=num_shards):
        for shard in range(num_shards):
            shard_ids = all_ids[owner == shard]
            if not len(shard_ids):
                continue
            corpus = {int(b): html_by_batch[int(b)] for b in shard_ids}
            batch_ids, arrays = shingle_corpus(corpus)
            local = cluster_shingled(
                batch_ids,
                arrays,
                threshold=threshold,
                num_perm=num_perm,
                bands=bands,
                seed=seed,
            )
            base = len(rep_arrays)
            seen: dict[int, int] = {}
            for batch_id, arr in zip(batch_ids, arrays):
                local_cluster = local[batch_id]
                node = seen.get(local_cluster)
                if node is None:
                    node = seen[local_cluster] = base + len(seen)
                    rep_arrays.append(arr)
                node_of_batch[batch_id] = node

    # Level 2: LSH over the representatives, exact-Jaccard verify, union.
    rows = num_perm // bands
    uf = _UnionFind(len(rep_arrays))
    with obs.span("cluster.two_level.reps", nodes=len(rep_arrays)):
        signatures = minhash_signatures(
            rep_arrays, num_perm=num_perm, seed=seed
        )
        candidates: set[tuple[int, int]] = set()
        for band in range(bands):
            lo, hi = band * rows, (band + 1) * rows
            buckets: dict[bytes, int] = {}
            for i in range(len(rep_arrays)):
                anchor = buckets.setdefault(
                    signatures[i, lo:hi].tobytes(), i
                )
                if anchor != i:
                    candidates.add((anchor, i))
        _LEVEL2_PAIRS.inc(len(candidates))
        for anchor, other in sorted(candidates):
            if uf.find(anchor) == uf.find(other):
                continue
            if _jaccard_sorted(rep_arrays[anchor], rep_arrays[other]) >= threshold:
                uf.union(anchor, other)

    cluster_of_root: dict[int, int] = {}
    result: dict[int, int] = {}
    for batch_id in all_ids.tolist():
        root = uf.find(node_of_batch[batch_id])
        if root not in cluster_of_root:
            cluster_of_root[root] = len(cluster_of_root)
        result[batch_id] = cluster_of_root[root]
    return result
