"""Sharded, memory-bounded execution of the study pipeline.

The paper's real dataset (~27M instances) does not fit the single-Table,
single-process assumption the rest of the repo makes.  This package runs
the simulator + study pipeline over ``K`` independent shards — partitioned
by **batch id**, the unit every analysis groups on — and merges the
per-shard partials into a study that is **byte-identical** to the
monolithic build (proven by ``tests/test_shard_equivalence.py``).

How the equivalence works
-------------------------
The generative model has cross-batch couplings (daily worker allocation,
weekly load factors, sequential HTML-render draws), so shards cannot draw
from independent RNG streams without changing the monolithic bytes.
Instead each shard build *replays* the monolithic run's cheap numeric
draws at full size — the RNG streams are identical — and materializes only
its own slice of the expensive object-heavy layers (response strings,
rendered HTML, the released instance table, the enrichment working set).
See :func:`repro.simulator.engine.simulate_marketplace` and
:func:`repro.dataset.release.release_dataset` for the two shard-aware
generation stages.

Modules
-------
:mod:`repro.shard.partition`
    The partition key (``batch_id % num_shards``) and ``REPRO_SHARDS``
    resolution.
:mod:`repro.shard.store`
    Spill-to-disk shard store under the cache dir (per-shard manifests,
    SHA-256 checksums, quarantine on damage — the :mod:`repro.cache`
    schema-v2 conventions).
:mod:`repro.shard.merge`
    Mergeable partial aggregates for group-by results (the out-of-core
    merge algebra; CDF/histogram merges live on the stats classes).
:mod:`repro.shard.cluster`
    Two-level minhash/LSH clustering (within shard, then across shard
    representatives) for when a single global clustering pass is too big.
:mod:`repro.shard.build`
    Orchestration: fan shard builds out over :mod:`repro.parallel`,
    spill, load, and merge into a released + enriched pair.
"""

from repro.shard.build import build_released_enriched, build_shard_partial
from repro.shard.cluster import cluster_batches_two_level
from repro.shard.merge import MergeableGroupBy, merge_group_by
from repro.shard.partition import (
    SHARDS_ENV,
    resolve_shards,
    shard_of_batches,
)
from repro.shard.store import ShardPartial, load_partial, store_partial

__all__ = [
    "SHARDS_ENV",
    "MergeableGroupBy",
    "ShardPartial",
    "build_released_enriched",
    "build_shard_partial",
    "cluster_batches_two_level",
    "load_partial",
    "merge_group_by",
    "resolve_shards",
    "shard_of_batches",
    "store_partial",
]
