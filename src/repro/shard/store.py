"""Spill-to-disk store for per-shard pipeline partials.

A shard partial is everything the merge needs from one shard: its slice of
the released instance table, the per-batch design/metrics tables, the
rendered HTML, and precomputed shingle arrays (so the global clustering
pass at merge time does not re-shingle).  Shard 0 additionally carries the
batch catalog, which is global and identical across shards.

Layout and failure handling follow the :mod:`repro.cache` schema-v2
conventions: entries live under a hidden ``.shards/`` directory inside the
cache root, keyed by ``study_key(config)`` (so any code or config change
invalidates automatically) plus the shard count; each entry is written to
a temp directory and atomically renamed; the manifest records a SHA-256
checksum per data file, verified before any byte is deserialized; a
damaged entry is quarantined and reported as a miss so the shard is
rebuilt in process.  A failed spill warns, counts in
``shard.store_failed``, and keeps the in-memory partial — degraded
environments never change the result.

Fault-injection sites (:mod:`repro.faults`): ``shard.save:fail`` makes the
spill raise, ``shard.load:fail`` makes reading an entry raise, and
``shard.load:corrupt`` truncates a data file on disk so the checksum and
quarantine defenses themselves are exercised.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro import faults, obs
from repro.cache import (
    _ENTRY_READ_ERRORS,
    _jsonable,
    _load_table,
    _quarantine_entry,
    _save_table,
    _sha256_file,
    cache_dir,
    study_key,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.config import SimulationConfig
    from repro.tables import Table

#: Bump when the shard-partial layout changes incompatibly.
SHARD_SCHEMA_VERSION = 1

_SPILLS = obs.counter("shard.spilled")
_LOAD_HITS = obs.counter("shard.load_hit")
_STORE_FAILED = obs.counter("shard.store_failed")
_CORRUPT = obs.counter("shard.corrupt")
_SPILL_SECONDS = obs.histogram("shard.spill_seconds")
_LOAD_SECONDS = obs.histogram("shard.load_seconds")
#: Seconds of spill I/O that ran concurrently with the next shard's
#: compute (per spill): the spill's wall time minus whatever the driver
#: actually had to wait for it.  Zero means the build was spill-bound.
_OVERLAP_SECONDS = obs.histogram("shard.overlap_seconds")

_TABLE_FILES = {
    "instances": "instances.npz",
    "design": "design.npz",
    "metrics": "metrics.npz",
}
_CATALOG_FILE = "catalog.npz"


class SpilledTable:
    """Read-on-demand view of one spilled table.

    Each column access opens the archive, reads that single member, and
    returns it without retaining a reference — so a merge that walks the
    union column by column holds one shard-column at a time instead of
    every shard's whole table.  Handed out only after the entry's
    checksums have been verified (:func:`load_partial` with ``lean``).
    """

    def __init__(self, path: Path, column_order: list[str]) -> None:
        self._path = path
        self._column_names = list(column_order)

    @property
    def column_names(self) -> list[str]:
        return list(self._column_names)

    def __getitem__(self, name: str) -> np.ndarray:
        with np.load(self._path, allow_pickle=True) as archive:
            return archive[name]


@dataclass
class ShardPartial:
    """One shard's contribution to the merged study."""

    shard: int
    num_shards: int
    #: The global batch catalog — identical across shards, carried only by
    #: shard 0 (``None`` elsewhere).
    catalog: "Table | None"
    instances: "Table | SpilledTable"
    design: "Table"
    metrics: "Table"
    batch_html: dict[int, str]
    #: Sorted batch ids with HTML, aligned with ``shingle_arrays``.
    shingle_ids: np.ndarray
    shingle_arrays: list[np.ndarray]


def shard_store_dir(config: "SimulationConfig", num_shards: int) -> Path:
    """Entry directory for ``(config, num_shards)`` under the cache root.

    Hidden (dot-prefixed) so :func:`repro.cache.list_entries` and
    ``clear_cache`` treat shard spills as internal scratch, not entries.
    """
    return cache_dir() / ".shards" / f"{study_key(config)[:32]}-k{num_shards}"


def _entry_dir(
    config: "SimulationConfig", num_shards: int, shard: int
) -> Path:
    return shard_store_dir(config, num_shards) / f"shard-{shard:04d}"


def store_partial(
    config: "SimulationConfig", partial: ShardPartial
) -> Path | None:
    """Spill ``partial`` to disk; returns the entry path, ``None`` on failure.

    Best-effort with the :mod:`repro.cache` posture: any I/O failure (or an
    injected ``shard.save:fail``) leaves the store unchanged and returns
    ``None`` — visibly, via a ``RuntimeWarning`` and ``shard.store_failed``
    — and the caller keeps using the in-memory partial.
    """
    t0 = time.perf_counter()
    final = _entry_dir(config, partial.num_shards, partial.shard)
    root = final.parent
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=f".{final.name}-", dir=root))
    except OSError:
        tmp = None
    entry: Path | None = None
    if tmp is not None:
        try:
            faults.check("shard.save")
            column_orders = {
                name: _save_table(getattr(partial, name), tmp / filename)
                for name, filename in _TABLE_FILES.items()
            }
            if partial.catalog is not None:
                column_orders["catalog"] = _save_table(
                    partial.catalog, tmp / _CATALOG_FILE
                )

            html_ids = np.array(sorted(partial.batch_html), dtype=np.int64)
            html_docs = np.array(
                [partial.batch_html[int(b)] for b in html_ids], dtype=object
            )
            np.savez(tmp / "html.npz", batch_id=html_ids, html=html_docs)

            counts = np.array(
                [len(a) for a in partial.shingle_arrays], dtype=np.int64
            )
            flat = (
                np.concatenate(partial.shingle_arrays)
                if partial.shingle_arrays
                else np.empty(0, dtype=np.uint64)
            )
            np.savez(
                tmp / "shingles.npz",
                batch_id=np.asarray(partial.shingle_ids, dtype=np.int64),
                counts=counts,
                flat=flat.astype(np.uint64, copy=False),
            )

            checksums = {f.name: _sha256_file(f) for f in sorted(tmp.iterdir())}
            manifest = {
                "schema": SHARD_SCHEMA_VERSION,
                "shard": partial.shard,
                "num_shards": partial.num_shards,
                "config": _jsonable(config),
                "column_orders": column_orders,
                "checksums": checksums,
                "num_instances": partial.instances.num_rows,
                "num_batches": len(partial.batch_html),
            }
            (tmp / "manifest.json").write_text(json.dumps(manifest, indent=2))
            if final.exists():
                shutil.rmtree(final, ignore_errors=True)
            os.replace(tmp, final)
            entry = final
        except OSError:
            entry = None
        finally:
            if tmp.exists() and tmp != final:
                shutil.rmtree(tmp, ignore_errors=True)
    if entry is None:
        _STORE_FAILED.inc()
        warnings.warn(
            f"repro.shard: failed to spill shard {partial.shard} of "
            f"{partial.num_shards} (keeping it in memory; the merged study "
            f"is unaffected)",
            RuntimeWarning,
            stacklevel=2,
        )
    else:
        _SPILLS.inc()
    _SPILL_SECONDS.observe(time.perf_counter() - t0)
    return entry


class SpillWriter:
    """Double-buffered background spill: at most one spill in flight.

    A serial shard build alternates *compute* (simulate + enrich one
    shard) with *spill I/O* (checksum + write the partial).  This writer
    overlaps the two: :meth:`submit` hands the just-built partial to a
    background thread and returns immediately, so shard ``k``'s spill
    runs while shard ``k+1`` simulates.  Submitting first **drains** any
    spill still in flight — exactly two buffers ever exist (the partial
    being built and the one being written), so peak memory is bounded at
    two shards' working sets regardless of shard count.

    Failure posture is :func:`store_partial`'s own: a failed spill keeps
    the partial referenced in the outcome (the caller folds it back in
    memory), warns, and counts ``shard.store_failed`` — the writer never
    swallows an outcome.  Each drained spill records how much of its wall
    time ran concurrently with compute in ``shard.overlap_seconds``.

    Single-producer: ``submit``/``finish`` must be called from one
    thread.  Use as a context manager or call :meth:`finish`; outcomes
    are ``{shard: (entry_path_or_None, partial)}``.
    """

    def __init__(self, config: "SimulationConfig") -> None:
        import threading

        self._config = config
        self._threading = threading
        self._thread: "threading.Thread | None" = None
        self._inflight: ShardPartial | None = None
        self._inflight_result: list = []
        self.outcomes: dict[int, tuple[Path | None, ShardPartial]] = {}

    def _drain(self) -> None:
        """Wait for the in-flight spill (if any) and record its outcome."""
        if self._thread is None:
            return
        wait_start = time.perf_counter()
        self._thread.join()
        waited = time.perf_counter() - wait_start
        entry, spill_wall = self._inflight_result[0]
        if isinstance(spill_wall, BaseException):
            # Re-raise on the driver thread, where the inline spill of the
            # pre-writer code path would have raised it.
            self._thread = None
            self._inflight = None
            raise spill_wall
        _OVERLAP_SECONDS.observe(max(0.0, spill_wall - waited))
        partial = self._inflight
        assert partial is not None
        self.outcomes[partial.shard] = (entry, partial)
        self._thread = None
        self._inflight = None
        self._inflight_result = []

    def submit(self, partial: ShardPartial) -> None:
        """Spill ``partial`` in the background (drains the previous one)."""
        self._drain()
        result = self._inflight_result = []
        config = self._config

        def _spill() -> None:
            t0 = time.perf_counter()
            try:
                entry = store_partial(config, partial)
            except BaseException as exc:  # re-raised by _drain
                result.append((None, exc))
                return
            result.append((entry, time.perf_counter() - t0))

        self._inflight = partial
        self._thread = self._threading.Thread(
            target=_spill, name="repro-spill-writer", daemon=True
        )
        self._thread.start()

    def finish(self) -> dict[int, tuple[Path | None, ShardPartial]]:
        """Drain the last spill and return every outcome by shard."""
        self._drain()
        return self.outcomes

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self._drain()


def _corrupt_entry(entry: Path) -> None:
    """Injected ``shard.load:corrupt``: truncate one data file on disk."""
    target = entry / _TABLE_FILES["metrics"]
    if not target.is_file():
        candidates = sorted(entry.glob("*.npz"))
        if not candidates:
            return
        target = candidates[0]
    data = target.read_bytes()
    target.write_bytes(data[: len(data) // 2])


def load_partial(
    config: "SimulationConfig", num_shards: int, shard: int, *,
    lean: bool = False,
) -> ShardPartial | None:
    """Load a spilled shard partial; ``None`` on miss or damage.

    Damage — a checksum mismatch, truncated archive, or injected
    ``shard.load`` fault — quarantines the entry (counted in
    ``shard.corrupt``) and reports a miss, so the caller rebuilds the
    shard in process instead of crashing or consuming bad bytes.

    With ``lean``, the (large) instance table comes back as a
    :class:`SpilledTable` read-on-demand view instead of an in-memory
    table, so a column-wise merge over many shards is bounded by one
    column's worth of shard data; everything else (design, metrics, HTML,
    shingles, catalog) is batch-sized and loads eagerly as usual.  The
    view is only handed out after the whole entry's checksums verify.
    """
    t0 = time.perf_counter()
    entry = _entry_dir(config, num_shards, shard)
    if not entry.is_dir():
        return None
    try:
        kind = faults.fire("shard.load")
        if kind == "corrupt":
            _corrupt_entry(entry)
        elif kind == "fail":
            raise faults.InjectedFault("injected fault: shard.load:fail")
        manifest = json.loads((entry / "manifest.json").read_text())
        if manifest.get("schema") != SHARD_SCHEMA_VERSION:
            return None
        for filename, expected in manifest["checksums"].items():
            if _sha256_file(entry / filename) != expected:
                raise ValueError(f"checksum mismatch in {filename}")
        orders = manifest["column_orders"]
        tables: dict[str, "Table | SpilledTable"] = {
            name: _load_table(entry / filename, orders[name])
            for name, filename in _TABLE_FILES.items()
            if not (lean and name == "instances")
        }
        if lean:
            tables["instances"] = SpilledTable(
                entry / _TABLE_FILES["instances"], orders["instances"]
            )
        catalog = None
        if "catalog" in orders:
            catalog = _load_table(entry / _CATALOG_FILE, orders["catalog"])
        with np.load(entry / "html.npz", allow_pickle=True) as archive:
            batch_html = {
                int(b): str(doc)
                for b, doc in zip(archive["batch_id"], archive["html"])
            }
        with np.load(entry / "shingles.npz") as archive:
            shingle_ids = archive["batch_id"].astype(np.int64)
            counts = archive["counts"]
            flat = archive["flat"].astype(np.uint64)
        shingle_arrays = [
            a for a in np.split(flat, np.cumsum(counts)[:-1])
        ] if len(counts) else []
    except _ENTRY_READ_ERRORS:
        _CORRUPT.inc()
        _quarantine_entry(entry)
        return None
    _LOAD_HITS.inc()
    _LOAD_SECONDS.observe(time.perf_counter() - t0)
    return ShardPartial(
        shard=shard,
        num_shards=num_shards,
        catalog=catalog,
        instances=tables["instances"],
        design=tables["design"],
        metrics=tables["metrics"],
        batch_html=batch_html,
        shingle_ids=shingle_ids,
        shingle_arrays=shingle_arrays,
    )


def clear_shards() -> int:
    """Remove every spilled shard set; returns how many were removed."""
    root = cache_dir() / ".shards"
    if not root.is_dir():
        return 0
    try:
        children = sorted(root.iterdir())
    except OSError:
        return 0
    removed = 0
    for entry in children:
        if not entry.is_dir():
            continue
        shutil.rmtree(entry, ignore_errors=True)
        if not entry.name.startswith("."):
            removed += 1
    return removed
