"""Machine-learning substrate for the §4.9 predictive study.

No sklearn exists in this environment, so this subpackage supplies the three
pieces the paper's "simple decision tree classifier" experiment needs:

- :class:`~repro.ml.decision_tree.DecisionTreeClassifier` — CART with Gini
  impurity on numeric features;
- :mod:`~repro.ml.bucketize` — metric bucketization by range and by
  percentiles (the two strategies of §4.9);
- :mod:`~repro.ml.crossval` — k-fold cross-validation with exact and
  within-``k``-buckets accuracy.
"""

from repro.ml.bucketize import Bucketization, bucketize_by_percentile, bucketize_by_range
from repro.ml.crossval import CrossValResult, cross_validate, kfold_indices
from repro.ml.decision_tree import DecisionTreeClassifier

__all__ = [
    "Bucketization",
    "CrossValResult",
    "DecisionTreeClassifier",
    "bucketize_by_percentile",
    "bucketize_by_range",
    "cross_validate",
    "kfold_indices",
]
