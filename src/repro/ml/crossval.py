"""k-fold cross-validation with the paper's two accuracy notions.

§4.9 reports both exact-bucket accuracy and accuracy "within a tolerance of
1 bucket"; :func:`cross_validate` computes both across the folds of a 5-fold
(by default) split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class CrossValResult:
    """Mean accuracies across folds."""

    exact_accuracy: float
    within_one_accuracy: float
    fold_exact: tuple[float, ...]
    fold_within_one: tuple[float, ...]

    @property
    def num_folds(self) -> int:
        return len(self.fold_exact)


def kfold_indices(
    n: int, *, k: int = 5, rng: np.random.Generator | None = None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train_idx, test_idx) pairs covering ``range(n)``."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} samples")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def cross_validate(
    model_factory: Callable[[], object],
    features,
    labels,
    *,
    k: int = 5,
    tolerance: int = 1,
    rng: np.random.Generator | None = None,
) -> CrossValResult:
    """k-fold CV of any fit/predict classifier on integer labels.

    ``model_factory`` must return a fresh model exposing ``fit(X, y)`` and
    ``predict(X)``.  Returns mean exact accuracy and mean within-``tolerance``
    accuracy (|predicted - true| <= tolerance), matching §4.9's "tolerance of
    1 bucket" metric.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"features ({X.shape[0]}) and labels ({y.shape[0]}) disagree on n"
        )
    fold_exact: list[float] = []
    fold_within: list[float] = []
    for train_idx, test_idx in kfold_indices(X.shape[0], k=k, rng=rng):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        predictions = np.asarray(model.predict(X[test_idx]))
        truth = y[test_idx]
        fold_exact.append(float(np.mean(predictions == truth)))
        fold_within.append(
            float(np.mean(np.abs(predictions - truth) <= tolerance))
        )
    return CrossValResult(
        exact_accuracy=float(np.mean(fold_exact)),
        within_one_accuracy=float(np.mean(fold_within)),
        fold_exact=tuple(fold_exact),
        fold_within_one=tuple(fold_within),
    )
