"""Metric bucketization for the §4.9 predictive setting.

The paper converts each continuous metric into a 10-class label two ways:

- *by range*: the metric's value range is split into equal-width buckets
  (highly skewed class sizes — most clusters land in bucket 0);
- *by percentiles*: bucket edges are value percentiles, so each bucket holds
  roughly the same number of clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Bucketization:
    """A fitted bucketization: upper bounds per bucket and assigned labels."""

    upper_bounds: np.ndarray = field(repr=False)
    labels: np.ndarray = field(repr=False)
    strategy: str = "range"

    @property
    def num_buckets(self) -> int:
        return int(self.upper_bounds.size)

    def bucket_counts(self) -> np.ndarray:
        """Number of observations assigned to each bucket."""
        return np.bincount(self.labels, minlength=self.num_buckets)

    def assign(self, values) -> np.ndarray:
        """Bucket labels for new values using the fitted bounds."""
        values = np.asarray(values, dtype=np.float64)
        labels = np.searchsorted(self.upper_bounds, values, side="left")
        return np.minimum(labels, self.num_buckets - 1).astype(np.int64)


def _validated(values) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    array = array[~np.isnan(array)] if np.isnan(array).any() else array
    if array.size == 0:
        raise ValueError("cannot bucketize an empty sample")
    return np.asarray(values, dtype=np.float64)


def bucketize_by_range(values, *, num_buckets: int = 10) -> Bucketization:
    """Equal-width buckets over [min, max]; labels for the input values."""
    if num_buckets < 2:
        raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
    array = _validated(values)
    finite = array[~np.isnan(array)]
    lo, hi = float(finite.min()), float(finite.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, num_buckets + 1)
    upper = edges[1:]
    labels = np.clip(
        np.searchsorted(upper, array, side="left"), 0, num_buckets - 1
    ).astype(np.int64)
    return Bucketization(upper_bounds=upper, labels=labels, strategy="range")


def bucketize_by_percentile(values, *, num_buckets: int = 10) -> Bucketization:
    """Equal-population buckets with percentile upper bounds.

    When the value distribution has heavy ties (e.g. many zero disagreement
    clusters), adjacent percentile edges can coincide; duplicate edges are
    nudged so the bucketization stays total, at the cost of imbalance — the
    same thing happens in the paper's skewed metrics.
    """
    if num_buckets < 2:
        raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
    array = _validated(values)
    finite = array[~np.isnan(array)]
    qs = np.linspace(0, 100, num_buckets + 1)[1:]
    upper = np.percentile(finite, qs)
    # Break ties between duplicate edges so searchsorted is well-defined.
    for i in range(1, upper.size):
        if upper[i] <= upper[i - 1]:
            upper[i] = np.nextafter(upper[i - 1], np.inf)
    labels = np.clip(
        np.searchsorted(upper, array, side="left"), 0, num_buckets - 1
    ).astype(np.int64)
    return Bucketization(upper_bounds=upper, labels=labels, strategy="percentile")
