"""A CART decision-tree classifier (Gini impurity, numeric features).

Matches the behavior needed for the paper's §4.9: a "simple decision tree
classifier" over 3–4 numeric design features predicting a 10-way bucket
label.  Splits are exhaustive over midpoints of consecutive distinct feature
values; growth stops at ``max_depth``, ``min_samples_split``, or purity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Internal tree node; leaves have ``feature is None``."""

    prediction: int
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.square(p).sum())


class DecisionTreeClassifier:
    """CART classifier with Gini splitting.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root at depth 0).
    min_samples_split:
        Nodes with fewer samples become leaves.
    min_impurity_decrease:
        Minimum Gini improvement required to accept a split.
    """

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 10,
        min_impurity_decrease: float = 1e-7,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        self._root: Optional[_Node] = None
        self._num_classes = 0

    # ------------------------------------------------------------------ #

    def fit(self, features, labels) -> "DecisionTreeClassifier":
        """Fit on ``features`` of shape (n, d) and integer ``labels`` >= 0."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"labels shape {y.shape} incompatible with {X.shape[0]} samples"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if np.any(y < 0):
            raise ValueError("labels must be non-negative integers")
        self._num_classes = int(y.max()) + 1
        self._root = self._grow(X, y, depth=0)
        return self

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self._num_classes)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(y)
        prediction = int(counts.argmax())
        node = _Node(prediction=prediction)
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or counts.max() == len(y)
        ):
            return node

        best = self._best_split(X, y, counts)
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, parent_counts: np.ndarray
    ) -> Optional[tuple[int, float]]:
        n = len(y)
        parent_impurity = _gini(parent_counts)
        best_gain = self.min_impurity_decrease
        best: Optional[tuple[int, float]] = None

        for feature in range(X.shape[1]):
            column = X[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            sorted_labels = y[order]

            # Cumulative class counts along the sorted order let us evaluate
            # every candidate split in O(n * classes).
            one_hot = np.zeros((n, self._num_classes), dtype=np.int64)
            one_hot[np.arange(n), sorted_labels] = 1
            left_counts = np.cumsum(one_hot, axis=0)

            # Candidate boundaries: positions where the value changes.
            boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
            if boundaries.size == 0:
                continue
            for b in boundaries:
                left = left_counts[b]
                right = parent_counts - left
                n_left = b + 1
                n_right = n - n_left
                weighted = (
                    n_left * _gini(left) + n_right * _gini(right)
                ) / n
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    threshold = (sorted_values[b] + sorted_values[b + 1]) / 2.0
                    best = (feature, float(threshold))
        return best

    # ------------------------------------------------------------------ #

    def predict(self, features) -> np.ndarray:
        """Predict integer class labels for shape-(n, d) features."""
        if self._root is None:
            raise RuntimeError("predict called before fit")
        X = np.asarray(features, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {X.shape}")
        out = np.empty(X.shape[0], dtype=np.int64)
        for i in range(X.shape[0]):
            node = self._root
            while not node.is_leaf:
                node = node.left if X[i, node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a stump/leaf-only tree)."""
        if self._root is None:
            raise RuntimeError("depth called before fit")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def num_leaves(self) -> int:
        if self._root is None:
            raise RuntimeError("num_leaves called before fit")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)
