"""Label categories: 7 task goals, 10 operators, 7 data types (paper §3.4).

The simple/complex classification follows §3.5 exactly:

- goals: {entity resolution, sentiment analysis, quality assurance} are
  simple; every other goal is complex;
- operators: {filter, rate} are simple, the other eight complex;
- data types: only text is simple.
"""

from __future__ import annotations

import enum


class Goal(str, enum.Enum):
    """End goal of a task (a task may carry one or more)."""

    ENTITY_RESOLUTION = "ER"
    HUMAN_BEHAVIOR = "HB"
    SEARCH_RELEVANCE = "SR"
    QUALITY_ASSURANCE = "QA"
    SENTIMENT_ANALYSIS = "SA"
    LANGUAGE_UNDERSTANDING = "LU"
    TRANSCRIPTION = "T"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Operator(str, enum.Enum):
    """Human-operator building block used to achieve a goal."""

    FILTER = "Filt"
    RATE = "Rate"
    SORT = "Sort"
    COUNT = "Count"
    TAG = "Tag"
    GATHER = "Gat"
    EXTRACT = "Ext"
    GENERATE = "Gen"
    LOCALIZE = "Loc"
    EXTERNAL = "Exter"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DataType(str, enum.Enum):
    """Type of data the task's questions operate on."""

    TEXT = "Text"
    IMAGE = "Image"
    AUDIO = "Audio"
    VIDEO = "Video"
    MAPS = "Map"
    SOCIAL_MEDIA = "Social"
    WEBPAGE = "Web"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


GOALS: tuple[Goal, ...] = tuple(Goal)
OPERATORS: tuple[Operator, ...] = tuple(Operator)
DATA_TYPES: tuple[DataType, ...] = tuple(DataType)

SIMPLE_GOALS = frozenset(
    {Goal.ENTITY_RESOLUTION, Goal.SENTIMENT_ANALYSIS, Goal.QUALITY_ASSURANCE}
)
SIMPLE_OPERATORS = frozenset({Operator.FILTER, Operator.RATE})
SIMPLE_DATA_TYPES = frozenset({DataType.TEXT})


def is_complex_goal(goal: Goal | str) -> bool:
    """§3.5 classification: ER/SA/QA are simple, everything else complex."""
    return Goal(goal) not in SIMPLE_GOALS


def is_complex_operator(operator: Operator | str) -> bool:
    """§3.5 classification: filter/rate are simple, everything else complex."""
    return Operator(operator) not in SIMPLE_OPERATORS


def is_complex_data(data_type: DataType | str) -> bool:
    """§3.5 classification: only text is simple."""
    return DataType(data_type) not in SIMPLE_DATA_TYPES
