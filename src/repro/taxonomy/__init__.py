"""The paper's label space for crowd tasks (§3.4) and the simple/complex split (§3.5)."""

from repro.taxonomy.labels import (
    DATA_TYPES,
    GOALS,
    OPERATORS,
    SIMPLE_DATA_TYPES,
    SIMPLE_GOALS,
    SIMPLE_OPERATORS,
    DataType,
    Goal,
    Operator,
    is_complex_data,
    is_complex_goal,
    is_complex_operator,
)
from repro.taxonomy.priors import (
    DATA_GIVEN_GOAL,
    GOAL_WEIGHTS,
    OPERATOR_GIVEN_GOAL,
    SECONDARY_OPERATOR_PROB,
)

__all__ = [
    "DATA_GIVEN_GOAL",
    "DATA_TYPES",
    "DataType",
    "GOALS",
    "GOAL_WEIGHTS",
    "Goal",
    "OPERATORS",
    "OPERATOR_GIVEN_GOAL",
    "Operator",
    "SECONDARY_OPERATOR_PROB",
    "SIMPLE_DATA_TYPES",
    "SIMPLE_GOALS",
    "SIMPLE_OPERATORS",
    "is_complex_data",
    "is_complex_goal",
    "is_complex_operator",
]
