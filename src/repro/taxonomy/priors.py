"""Label co-occurrence priors calibrated to the paper's Figures 9–11.

The paper reports (over ~24M labeled instances):

- goals: LU ≈17% and T ≈13% are the largest; ER/SA are smaller (Fig 9a);
- data: Text ≈40%, Image ≈26%; social/web/maps growing (Fig 9b);
- operators: Filter ≈33%, Rate ≈13%; Gather+Extract+Localize+Generate ≈22%
  combined (Fig 9c);
- conditionals (Figs 10–11): transcription is extraction-dominated; LU uses
  Generate ≈16% of the time; HB uses External ≈13% and Localize ≈9%; ER uses
  Web data ≈24%; SR uses Web ≈37%; SA uses Social ≈13%; LU uses Social ≈8%.

These numbers seed the *generative* distributions below.  Weights within each
mapping need not be normalized; the simulator normalizes at draw time.
"""

from __future__ import annotations

from repro.taxonomy.labels import DataType, Goal, Operator

#: Target *instance-level* popularity of each goal (Figure 9a: LU ≈17%,
#: T ≈13% lead).
GOAL_WEIGHTS: dict[Goal, float] = {
    Goal.ENTITY_RESOLUTION: 0.10,
    Goal.HUMAN_BEHAVIOR: 0.11,
    Goal.SEARCH_RELEVANCE: 0.13,
    Goal.QUALITY_ASSURANCE: 0.14,
    Goal.SENTIMENT_ANALYSIS: 0.13,
    Goal.LANGUAGE_UNDERSTANDING: 0.22,
    Goal.TRANSCRIPTION: 0.17,
}

#: Target *cluster-count* popularity of each goal.  Figure 12a shows far
#: more distinct complex-goal clusters (620 vs 80 by Jan 2016) even though
#: simple goals carry large instance volumes — simple goals run in fewer,
#: bigger clusters.  The simulator draws a task's goal from these weights
#: and compensates the per-batch item scale by GOAL_WEIGHTS/GOAL_CLUSTER_WEIGHTS
#: so Figure 9a still holds at the instance level.
GOAL_CLUSTER_WEIGHTS: dict[Goal, float] = {
    Goal.ENTITY_RESOLUTION: 0.055,
    Goal.HUMAN_BEHAVIOR: 0.13,
    Goal.SEARCH_RELEVANCE: 0.10,
    Goal.QUALITY_ASSURANCE: 0.075,
    Goal.SENTIMENT_ANALYSIS: 0.06,
    Goal.LANGUAGE_UNDERSTANDING: 0.32,
    Goal.TRANSCRIPTION: 0.26,
}

#: Probability that a task carries a second goal label ("tasks have one or
#: more label under each category").
SECONDARY_GOAL_PROB = 0.18

#: P(primary operator | goal), calibrated to Figure 10b.
OPERATOR_GIVEN_GOAL: dict[Goal, dict[Operator, float]] = {
    Goal.ENTITY_RESOLUTION: {
        Operator.FILTER: 0.62,
        Operator.RATE: 0.12,
        Operator.GATHER: 0.10,
        Operator.TAG: 0.08,
        Operator.SORT: 0.04,
        Operator.COUNT: 0.04,
    },
    Goal.HUMAN_BEHAVIOR: {
        Operator.FILTER: 0.30,
        Operator.RATE: 0.26,
        Operator.EXTERNAL: 0.13,
        Operator.LOCALIZE: 0.09,
        Operator.GATHER: 0.08,
        Operator.GENERATE: 0.08,
        Operator.TAG: 0.06,
    },
    Goal.SEARCH_RELEVANCE: {
        Operator.FILTER: 0.44,
        Operator.RATE: 0.36,
        Operator.SORT: 0.08,
        Operator.TAG: 0.06,
        Operator.GATHER: 0.06,
    },
    Goal.QUALITY_ASSURANCE: {
        Operator.FILTER: 0.58,
        Operator.RATE: 0.16,
        Operator.TAG: 0.10,
        Operator.COUNT: 0.06,
        Operator.LOCALIZE: 0.05,
        Operator.EXTRACT: 0.05,
    },
    Goal.SENTIMENT_ANALYSIS: {
        Operator.FILTER: 0.50,
        Operator.RATE: 0.32,
        Operator.TAG: 0.10,
        Operator.GENERATE: 0.08,
    },
    Goal.LANGUAGE_UNDERSTANDING: {
        Operator.FILTER: 0.34,
        Operator.RATE: 0.22,
        Operator.GENERATE: 0.16,
        Operator.TAG: 0.12,
        Operator.EXTRACT: 0.10,
        Operator.GATHER: 0.06,
    },
    Goal.TRANSCRIPTION: {
        Operator.EXTRACT: 0.58,
        Operator.TAG: 0.12,
        Operator.GENERATE: 0.10,
        Operator.FILTER: 0.08,
        Operator.LOCALIZE: 0.07,
        Operator.GATHER: 0.05,
    },
}

#: P(primary data type | goal), calibrated to Figure 10a.
DATA_GIVEN_GOAL: dict[Goal, dict[DataType, float]] = {
    Goal.ENTITY_RESOLUTION: {
        DataType.TEXT: 0.38,
        DataType.WEBPAGE: 0.24,
        DataType.IMAGE: 0.20,
        DataType.SOCIAL_MEDIA: 0.10,
        DataType.MAPS: 0.08,
    },
    Goal.HUMAN_BEHAVIOR: {
        DataType.TEXT: 0.48,
        DataType.IMAGE: 0.22,
        DataType.WEBPAGE: 0.12,
        DataType.VIDEO: 0.10,
        DataType.SOCIAL_MEDIA: 0.08,
    },
    Goal.SEARCH_RELEVANCE: {
        DataType.WEBPAGE: 0.37,
        DataType.TEXT: 0.33,
        DataType.IMAGE: 0.18,
        DataType.SOCIAL_MEDIA: 0.08,
        DataType.MAPS: 0.04,
    },
    Goal.QUALITY_ASSURANCE: {
        DataType.IMAGE: 0.30,
        DataType.TEXT: 0.40,
        DataType.WEBPAGE: 0.14,
        DataType.VIDEO: 0.08,
        DataType.SOCIAL_MEDIA: 0.08,
    },
    Goal.SENTIMENT_ANALYSIS: {
        DataType.TEXT: 0.52,
        DataType.SOCIAL_MEDIA: 0.13,
        DataType.IMAGE: 0.17,
        DataType.WEBPAGE: 0.12,
        DataType.VIDEO: 0.06,
    },
    Goal.LANGUAGE_UNDERSTANDING: {
        DataType.TEXT: 0.48,
        DataType.IMAGE: 0.24,
        DataType.SOCIAL_MEDIA: 0.08,
        DataType.AUDIO: 0.10,
        DataType.WEBPAGE: 0.10,
    },
    Goal.TRANSCRIPTION: {
        DataType.IMAGE: 0.30,
        DataType.AUDIO: 0.26,
        DataType.TEXT: 0.24,
        DataType.VIDEO: 0.14,
        DataType.MAPS: 0.06,
    },
}

#: Probability that a task uses a second operator in addition to its primary
#: (tasks "have one or more label under each category").
SECONDARY_OPERATOR_PROB = 0.22

#: Probability that a task operates on a second data type.
SECONDARY_DATA_PROB = 0.18
