"""Top-level convenience API: build the whole study pipeline in one call.

:func:`build_study` runs simulation → dataset release → enrichment and
returns a :class:`Study` whose attributes expose every layer, including a
bound :class:`repro.figures.FigureSuite` with one method per paper
figure/table.

Built studies are cached on disk (see :mod:`repro.cache`): a warm
``build_study`` for an already-seen ``(config, code)`` pair loads the
released + enriched layers instead of recomputing them, and defers the
simulation of ground truth until ``study.state`` is actually accessed
(figures and analyses only need it for verification-style entry points).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset
    from repro.figures.suite import FigureSuite
    from repro.simulator.config import SimulationConfig
    from repro.simulator.engine import MarketplaceState


class _LazyState:
    """Stand-in for :class:`MarketplaceState` that simulates on first use.

    Cache hits skip the simulator, but the ground-truth ``state`` layer must
    stay reachable (tests and ablations read it).  The config is served
    without simulating — it is all most consumers (``FigureSuite``) touch —
    and any other attribute access materializes the full state exactly once.
    Determinism in the seed guarantees the materialized state is identical
    to the one the cached entry was built from.
    """

    __slots__ = ("_config", "_state")

    def __init__(self, config: "SimulationConfig",
                 state: "MarketplaceState | None" = None):
        self._config = config
        self._state = state

    @property
    def config(self) -> "SimulationConfig":
        return self._config

    def materialize(self) -> "MarketplaceState":
        if self._state is None:
            from repro.simulator.engine import simulate_marketplace

            self._state = simulate_marketplace(self._config)
        return self._state

    def __getattr__(self, name: str):
        return getattr(self.materialize(), name)


class Study:
    """Everything needed to reproduce the paper's analyses.

    Attributes
    ----------
    config:
        The simulation configuration (scale preset + seed) that produced it.
    state:
        Full simulator ground truth (includes latent variables the analyses
        must not peek at; exposed for tests and ablations).  On a warm-cache
        build this is simulated lazily on first access.
    released:
        The "released dataset" — what the paper's authors actually received
        from the marketplace (sampled batches, instance metadata, HTML).
    enriched:
        The dataset after the paper's enrichment pipeline (clusters, labels,
        design parameters, performance metrics).
    figures:
        Figure/table entry points (``figures.fig03_weekday()``, ...).
    """

    def __init__(
        self,
        config: "SimulationConfig",
        state: "MarketplaceState | _LazyState | None",
        released: "ReleasedDataset",
        enriched: "EnrichedDataset",
        figures: "FigureSuite",
    ):
        self.config = config
        self._state = state if state is not None else _LazyState(config)
        self.released = released
        self.enriched = enriched
        self.figures = figures

    @property
    def state(self) -> "MarketplaceState":
        if isinstance(self._state, _LazyState):
            return self._state.materialize()
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Study(config={self.config!r}, "
            f"instances={self.released.instances.num_rows}, "
            f"clusters={self.enriched.num_clusters})"
        )


def build_study(
    scale: str = "tiny", seed: int = 7, *, cache: bool | None = None,
    shards: int | None = None,
) -> Study:
    """Simulate the marketplace and run the full enrichment pipeline.

    ``scale`` is one of ``"tiny"`` (unit tests, seconds), ``"small"``
    (examples), ``"medium"`` (benchmarks), ``"large"`` (out-of-core; built
    sharded).  The same seed always yields the same study.

    ``cache`` controls the on-disk study cache (:mod:`repro.cache`):
    ``True``/``False`` force it on/off; ``None`` (default) enables it unless
    the ``REPRO_NO_CACHE`` environment variable is set.  A warm hit loads
    the released + enriched layers from disk — byte-identical to a cold
    build — and defers simulation until ``study.state`` is touched.

    ``shards`` selects the sharded, memory-bounded executor
    (:mod:`repro.shard`): ``K > 1`` builds K batch-partitioned shards and
    merges them — byte-identical to the monolithic build, proven by the
    differential equivalence suite; ``None`` (default) reads the
    ``REPRO_SHARDS`` environment variable; 1 is the monolithic path.

    Degraded environments never change the result: a corrupt or unreadable
    cache entry is quarantined and rebuilt, a failed entry write keeps the
    in-memory study, a damaged shard spill is quarantined and the shard
    rebuilt in process, and pool failures in any fan-out degrade to
    serial — all counted in the metrics registry and provable with
    deterministic fault injection (:mod:`repro.faults`, ``REPRO_FAULTS``).
    """
    from repro import cache as study_cache
    from repro.figures.suite import FigureSuite
    from repro.shard.partition import resolve_shards
    from repro.simulator.config import SimulationConfig

    config = SimulationConfig.preset(scale, seed=seed)
    use_cache = study_cache.cache_enabled(cache)
    num_shards = resolve_shards(shards)

    with obs.span("study.build", scale=scale, seed=seed, cache=use_cache) as sp:
        if num_shards > 1:
            sp.set("shards", num_shards)
        if use_cache:
            loaded = study_cache.load_study(config)
            if loaded is not None:
                released, enriched = loaded
                sp.set("source", "cache")
                lazy = _LazyState(config)
                study = Study(
                    config=config,
                    state=lazy,
                    released=released,
                    enriched=enriched,
                    figures=FigureSuite(
                        state=lazy, released=released, enriched=enriched
                    ),
                )
                obs.ledger.note_study(study)
                return study

        from repro import faults
        from repro.dataset.release import release_dataset
        from repro.enrichment.pipeline import enrich_dataset
        from repro.simulator.engine import simulate_marketplace

        if num_shards > 1:
            from repro.shard.build import build_released_enriched

            released, enriched = build_released_enriched(config, num_shards)
            state = None  # never retain the full world; _LazyState covers it
        else:
            state = simulate_marketplace(config)
            with obs.span("release"):
                if faults.fire("phase.release") == "sleep":
                    # Deterministic phase slowdown: lets the acceptance
                    # tests (and reproduce_all.sh) prove drift detection
                    # flags the right phase without depending on a
                    # genuinely slow machine.
                    import time

                    time.sleep(faults.SLOW_PHASE_SLEEP_S)
                released = release_dataset(state, config)
            enriched = enrich_dataset(released, config)
        if use_cache:
            stored = study_cache.store_study(config, released, enriched)
            sp.set("cache_stored", stored is not None)
        sp.set("source", "built")
        sp.set("instances", released.instances.num_rows)
        if state is None:
            state = _LazyState(config)
        study = Study(
            config=config,
            state=state,
            released=released,
            enriched=enriched,
            figures=FigureSuite(
                state=state, released=released, enriched=enriched
            ),
        )
        obs.ledger.note_study(study)
        return study
