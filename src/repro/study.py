"""Top-level convenience API: build the whole study pipeline in one call.

:func:`build_study` runs simulation → dataset release → enrichment and
returns a :class:`Study` whose attributes expose every layer, including a
bound :class:`repro.figures.FigureSuite` with one method per paper
figure/table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.dataset.release import ReleasedDataset
    from repro.enrichment.pipeline import EnrichedDataset
    from repro.figures.suite import FigureSuite
    from repro.simulator.config import SimulationConfig
    from repro.simulator.engine import MarketplaceState


@dataclass
class Study:
    """Everything needed to reproduce the paper's analyses.

    Attributes
    ----------
    config:
        The simulation configuration (scale preset + seed) that produced it.
    state:
        Full simulator ground truth (includes latent variables the analyses
        must not peek at; exposed for tests and ablations).
    released:
        The "released dataset" — what the paper's authors actually received
        from the marketplace (sampled batches, instance metadata, HTML).
    enriched:
        The dataset after the paper's enrichment pipeline (clusters, labels,
        design parameters, performance metrics).
    figures:
        Figure/table entry points (``figures.fig03_weekday()``, ...).
    """

    config: "SimulationConfig"
    state: "MarketplaceState"
    released: "ReleasedDataset"
    enriched: "EnrichedDataset"
    figures: "FigureSuite"


def build_study(scale: str = "tiny", seed: int = 7) -> Study:
    """Simulate the marketplace and run the full enrichment pipeline.

    ``scale`` is one of ``"tiny"`` (unit tests, seconds), ``"small"``
    (examples), ``"medium"`` (benchmarks).  The same seed always yields the
    same study.
    """
    from repro.dataset.release import release_dataset
    from repro.enrichment.pipeline import enrich_dataset
    from repro.figures.suite import FigureSuite
    from repro.simulator.config import SimulationConfig
    from repro.simulator.engine import simulate_marketplace

    config = SimulationConfig.preset(scale, seed=seed)
    state = simulate_marketplace(config)
    released = release_dataset(state, config)
    enriched = enrich_dataset(released, config)
    return Study(
        config=config,
        state=state,
        released=released,
        enriched=enriched,
        figures=FigureSuite(state=state, released=released, enriched=enriched),
    )
