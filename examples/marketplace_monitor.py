"""Marketplace-administrator dashboard (the paper's Section 3 view).

Run:  python examples/marketplace_monitor.py [tiny|small|medium]

Prints weekly load and worker-availability sparklines, the day-of-week
profile, the cluster/heavy-hitter structure, and the label landscape —
everything a marketplace operator would watch.
"""

import sys

import numpy as np

from repro import build_study
from repro.reporting import (
    format_count,
    format_seconds,
    render_bar_chart,
    render_series,
)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    study = build_study(scale, seed=7)
    figures = study.figures

    arrivals = figures.fig02_arrivals()
    print(render_series(
        arrivals["instances_issued"], title="Task instances issued per week"
    ))
    print()
    print(render_series(
        figures.fig04_workers()["active_workers"],
        title="Distinct active workers per week",
    ))

    print("\nDay-of-week load profile (paper Figure 3):")
    weekday = figures.fig03_weekday()
    print(render_bar_chart(
        dict(zip(weekday["days"], weekday["instances"])), sort=False
    ))

    load = figures.headline_load_variation()
    print(
        f"\nLoad variation: median day {format_count(load['median_daily_instances'])}"
        f" instances; busiest {load['busiest_over_median']:.0f}x median,"
        f" lightest {load['lightest_over_median']:.2g}x."
    )

    pickup = arrivals["median_pickup_time"]
    active = ~np.isnan(pickup)
    print(
        f"Median weekly pickup time ranges "
        f"{format_seconds(float(np.nanmin(pickup[active])))} – "
        f"{format_seconds(float(np.nanmax(pickup[active])))}; "
        "high-load weeks move faster (§3.2)."
    )

    clusters = figures.fig06_cluster_sizes()
    tasks = figures.fig07_tasks_per_cluster()
    print(
        f"\nCluster structure: {clusters['num_clusters']} distinct tasks; "
        f"{clusters['clusters_over_100_batches']} heavy hitters span >100 "
        f"batches; median {format_count(tasks['median_instances_per_cluster'])} "
        "instances per cluster."
    )

    print("\nWhat requesters ask for (instance-weighted, paper Figure 9):")
    labels = figures.fig09_label_distributions()
    print("\nGoals:")
    print(render_bar_chart(labels["goals"]))
    print("\nOperators:")
    print(render_bar_chart(labels["operators"]))
    print("\nData types:")
    print(render_bar_chart(labels["data_types"]))

    print("\nSimple vs complex trend (cumulative clusters, paper Figure 12):")
    trends = figures.fig12_trends()
    for category, series in trends.items():
        print(
            f"  {category:11s} simple {int(series['simple'][-1]):4d} vs "
            f"complex {int(series['complex'][-1]):4d}"
        )


if __name__ == "__main__":
    main()
