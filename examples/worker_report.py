"""Worker-centric report (the paper's Section 5 view).

Run:  python examples/worker_report.py [tiny|small|medium]

Prints the labor-source league table, geography, workload concentration,
and engagement profile of the simulated marketplace.
"""

import sys

import numpy as np

from repro import build_study
from repro.analysis import workers as wk
from repro.reporting import render_bar_chart, render_table


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    study = build_study(scale, seed=7)
    figures = study.figures

    quality = figures.fig27_source_quality()
    print("Top sources by tasks performed (paper Figure 27d):")
    rows = [
        {
            "source": r["source"],
            "workers": r["num_workers"],
            "tasks": r["num_tasks"],
            "tasks/worker": round(r["tasks_per_worker"], 1),
            "trust": round(r["mean_trust"], 3),
            "rel_time": round(r["mean_relative_task_time"], 2),
        }
        for r in quality["top_by_tasks"].to_rows()
    ]
    print(render_table(rows))
    print(
        f"\nThese top-10 sources hold {quality['top10_task_share']:.0%} of tasks "
        f"and {quality['top10_worker_share']:.0%} of workers "
        "(paper: ~95% and ~86%)."
    )

    trust = quality["mean_trust_all"]
    rel = quality["mean_relative_time_all"]
    print(
        f"Across all {len(trust)} observed sources: "
        f"{(trust < 0.8).mean():.0%} have mean trust < 0.8; "
        f"{(rel >= 3).mean():.0%} are 3x+ slower than typical "
        f"({int((rel >= 10).sum())} sources are 10x+ slower)."
    )

    geo = figures.fig28_geography()
    print(f"\nGeography ({geo['num_countries']} countries, paper Figure 28):")
    top = {r["country"]: r["num_workers"] for r in geo["countries"].head(12).to_rows()}
    print(render_bar_chart(top))

    profiles = figures.profiles()
    concentration = wk.workload_concentration(profiles)
    print("\nWorkload concentration (paper §5.2–5.3):")
    print(
        f"  top-10% of workers perform {concentration.top10_task_share:.0%} of tasks\n"
        f"  {concentration.one_day_worker_fraction:.0%} of workers appear on one day "
        f"only (they do {concentration.one_day_task_share:.1%} of tasks)\n"
        f"  {concentration.active_worker_fraction:.0%} of workers have >10 working "
        f"days (they do {concentration.active_task_share:.0%} of tasks)"
    )

    hours = profiles.hours_per_working_day()
    print(
        f"  {np.mean(hours < 1.0):.0%} of workers spend under an hour per working "
        "day — the marketplace supports few full-timers (paper §5.4)."
    )
    print(
        f"  mean trust of the active workforce: "
        f"{profiles.mean_trust[profiles.working_days > 10].mean():.2f} "
        "(paper: above 0.91)"
    )

    sessions = wk.session_statistics(study.released)
    print(
        f"\nAttention spans (sessions with a 30-min gap rule): "
        f"{sessions.num_sessions:,} sessions; median "
        f"{sessions.median_session_minutes():.0f} min and "
        f"{sessions.median_tasks_per_session():.0f} tasks per session."
    )


if __name__ == "__main__":
    main()
