"""A/B-test the paper's §4.8 recommendations causally (paper §7 future work).

Run:  python examples/ab_testing.py

The paper's §4 findings are correlational; its conclusion notes that "with
full-fledged A/B testing, we may be able to solidify our correlation and
predictive claims with further causation-based evidence."  The simulator
makes such experiments possible: both arms share the same worker pool and
calendar window, so metric differences are caused by the design change.

This example A/B-tests each §4.8 recommendation in turn.
"""

from repro.abtest import TaskDesign, run_ab_test

EXPERIMENTS = [
    (
        "Add a prominent example",
        TaskDesign(num_examples=0),
        dict(num_examples=2),
        "paper: examples cut pickup time ~4.7x and reduce disagreement",
    ),
    (
        "Replace text boxes with multiple choice",
        TaskDesign(num_text_boxes=2),
        dict(num_text_boxes=0),
        "paper: text boxes raise disagreement and ~2.4x task time",
    ),
    (
        "Add images to the interface",
        TaskDesign(num_images=0),
        dict(num_images=3),
        "paper: images cut pickup ~3.2x and task time ~1.4x",
    ),
    (
        "Issue 8x more items per batch",
        TaskDesign(num_items=15),
        dict(num_items=120),
        "paper: more items cut disagreement and task time, raise pickup",
    ),
    (
        "Write detailed instructions (6x words)",
        TaskDesign(num_words=150),
        dict(num_words=900),
        "paper: longer instructions cut disagreement, no time penalty",
    ),
]


def main() -> None:
    for name, base, changes, reference in EXPERIMENTS:
        variant = base.varied(**changes)
        result = run_ab_test(base, variant, num_batches=60, seed=11)
        print(f"\n### {name}")
        print(f"    ({reference})")
        print(result.summary())


if __name__ == "__main__":
    main()
