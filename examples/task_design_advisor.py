"""Task-design advisor: score a task interface against the §4 findings.

Run:  python examples/task_design_advisor.py [path/to/interface.html]

Given a task interface (a built-in demo interface is used when no path is
supplied), the advisor:

1. extracts the §4 design parameters from the raw HTML;
2. trains the §4.9 decision trees on a freshly simulated marketplace;
3. predicts which disagreement / task-time / pickup-time bucket the task
   falls into; and
4. emits the paper's §4.8 recommendations that apply to this design.

This is the "requester-facing" use of the library: the same pipeline the
reproduction uses for Figure 14 doubles as a design linter.
"""

import sys
from pathlib import Path

import numpy as np

from repro import build_study
from repro.analysis.prediction import FEATURE_SETS, NUM_BUCKETS
from repro.analysis.taskdesign import analysis_clusters
from repro.html import extract_features
from repro.ml import DecisionTreeClassifier, bucketize_by_percentile

DEMO_INTERFACE = """
<html><head><title>Find business websites</title></head><body>
<h1>Find business websites</h1>
<div class="instructions"><h2>Instructions</h2>
<p>Search the web for each business below and paste the URL of its official
homepage. Prefer the canonical domain over social profiles.</p></div>
<div class="task-unit">
  <blockquote class="item-text">Blue Bottle Coffee, Oakland CA</blockquote>
  <p>Find the requested information on the web and enter it:</p>
  <input type="text" name="url" placeholder="type here">
</div>
<button type="submit">Submit</button>
</body></html>
"""

RECOMMENDATIONS = {
    "add_words": (
        "Add detailed instructions: tasks with more words in their interface "
        "show lower worker disagreement (paper Table 1: 0.147 vs 0.108)."
    ),
    "add_examples": (
        "Add a prominently displayed example: examples cut disagreement "
        "(0.128 vs 0.101) and reduce pickup time ~4.7x (6303s vs 1353s)."
    ),
    "avoid_text_boxes": (
        "Replace free-form text boxes with multiple choice where possible: "
        "text boxes raise disagreement (0.102 vs 0.160) and more than double "
        "task time (119s vs 286s)."
    ),
    "add_images": (
        "Add images: tasks with images are picked up ~3x faster (7838s vs "
        "2431s) and completed faster (184s vs 129s)."
    ),
    "batch_more_items": (
        "Issue more items per batch: larger batches attract experienced "
        "workers, halving disagreement (0.169 vs 0.086) and reducing task "
        "time (230s vs 136s) — at the cost of higher pickup time."
    ),
}


def advise(html: str) -> None:
    features = extract_features(html)
    print("Extracted design parameters:")
    for key, value in features.as_dict().items():
        print(f"  {key:18s} {value}")

    print("\nTraining §4.9 predictors on a simulated marketplace (small scale)...")
    study = build_study("small", seed=7)

    feature_row = {
        "num_items": 25.0,  # assume a modest batch; not derivable from HTML
        "num_words": float(features.num_words),
        "num_text_boxes": float(features.num_text_boxes),
        "has_example": float(features.num_examples > 0),
        "has_image": float(features.num_images > 0),
    }

    print("\nPredicted outcome buckets (percentile bucketization, 10 buckets):")
    for metric, names in FEATURE_SETS.items():
        clusters = analysis_clusters(study.enriched, metric=metric)
        values = clusters[metric].astype(np.float64)
        bucketization = bucketize_by_percentile(values, num_buckets=NUM_BUCKETS)
        matrix = np.column_stack(
            [
                (clusters["num_examples"] > 0).astype(float)
                if n == "has_example"
                else (clusters["num_images"] > 0).astype(float)
                if n == "has_image"
                else clusters[n].astype(float)
                for n in names
            ]
        )
        model = DecisionTreeClassifier(max_depth=10, min_samples_split=5)
        model.fit(matrix, bucketization.labels)
        x = np.array([[feature_row[n] for n in names]])
        bucket = int(model.predict(x)[0])
        upper = bucketization.upper_bounds
        lo = 0.0 if bucket == 0 else float(upper[bucket - 1])
        hi = float(upper[bucket])
        print(
            f"  {metric:13s} -> bucket {bucket}/{NUM_BUCKETS - 1} "
            f"(expected value in [{lo:.3g}, {hi:.3g}])"
        )

    print("\nRecommendations from the paper's findings (Section 4.8):")
    fired = []
    if features.num_words < 466:
        fired.append("add_words")
    if features.num_examples == 0:
        fired.append("add_examples")
    if features.num_text_boxes > 0:
        fired.append("avoid_text_boxes")
    if features.num_images == 0:
        fired.append("add_images")
    fired.append("batch_more_items")
    for key in fired:
        print(f"  * {RECOMMENDATIONS[key]}")


def main() -> None:
    if len(sys.argv) > 1:
        html = Path(sys.argv[1]).read_text()
        print(f"Analyzing {sys.argv[1]}...")
    else:
        html = DEMO_INTERFACE
        print("Analyzing the built-in demo interface (a web-gather task)...")
    advise(html)


if __name__ == "__main__":
    main()
