"""Quickstart: build a study and reproduce the paper's headline findings.

Run:  python examples/quickstart.py [tiny|small|medium]

Builds the synthetic marketplace at the chosen scale, runs the §2.4
enrichment pipeline, and prints one headline result from each section of the
paper.
"""

import sys

from repro import build_study
from repro.reporting import format_count, format_seconds, render_comparison_rows


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    print(f"Building the '{scale}' study (simulate -> release -> enrich)...")
    study = build_study(scale, seed=7)
    figures = study.figures

    released = study.released
    print(
        f"\nDataset: {released.instances.num_rows:,} task instances in "
        f"{released.num_sampled_batches:,} sampled batches, "
        f"{study.enriched.num_clusters} distinct tasks (clusters), "
        f"{len(set(released.instances['worker_id'])):,} workers."
    )

    print("\n--- Marketplace dynamics (Section 3) ---")
    load = figures.headline_load_variation()
    print(
        f"Median daily load {format_count(load['median_daily_instances'])} instances; "
        f"busiest day {load['busiest_over_median']:.0f}x the median, "
        f"lightest {load['lightest_over_median']:.2g}x."
    )
    weekday = figures.fig03_weekday()
    print(
        f"Weekdays carry {weekday['weekday_weekend_ratio']:.1f}x the weekend volume "
        "(Monday peaks, declining across the week)."
    )

    print("\n--- Task design (Section 4) ---")
    latency = figures.fig13_latency()
    print(
        f"Median pickup time {format_seconds(latency['median_pickup'])} vs "
        f"median task time {format_seconds(latency['median_task_time'])} — "
        f"latency is {latency['pickup_dominance_ratio']:.0f}x dominated by pickup."
    )
    tables = figures.tables_123()
    print("\nSignificant design effects on disagreement (paper Table 1):")
    print(render_comparison_rows(tables["disagreement"]))

    print("\n--- Workers (Section 5) ---")
    lifetimes = figures.fig30_lifetimes()
    workload = figures.fig29_workload()
    print(
        f"{lifetimes['one_day_worker_fraction']:.0%} of workers are active on a "
        f"single day yet complete only "
        f"{lifetimes['one_day_task_share']:.1%} of tasks; the top-10% of workers "
        f"complete {workload['top10_task_share']:.0%} of all tasks."
    )
    geo = figures.fig28_geography()
    top5 = ", ".join(r["country"] for r in geo["top5"])
    print(
        f"Workers come from {geo['num_countries']} countries; the top five "
        f"({top5}) hold {geo['top5_share']:.0%} of the workforce."
    )


if __name__ == "__main__":
    main()
