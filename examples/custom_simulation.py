"""Counterfactual simulation: what if examples did NOT help?

Run:  python examples/custom_simulation.py

The generative model exposes every paper effect as a calibration constant.
This example runs the enrichment + analysis pipeline twice — once with the
paper's calibration and once with the example/pickup and example/
disagreement effects switched off — and shows that the §4 analysis detects
the effect exactly when it exists.  This is the library's "ablation" mode:
the analysis layer is validated against worlds where the ground truth is
known by construction.
"""

import dataclasses

from repro.analysis.taskdesign import analysis_clusters, bin_comparison
from repro.dataset.release import release_dataset
from repro.enrichment.pipeline import enrich_dataset
from repro.simulator.config import Calibration, SimulationConfig
from repro.simulator.engine import simulate_marketplace


def run_world(name: str, calibration: Calibration) -> None:
    config = dataclasses.replace(
        SimulationConfig.preset("small", seed=11), calibration=calibration
    )
    state = simulate_marketplace(config)
    released = release_dataset(state, config)
    enriched = enrich_dataset(released, config)

    print(f"\n=== {name} ===")
    clusters = analysis_clusters(enriched, metric="pickup_time")
    c = bin_comparison(clusters, "num_examples", "pickup_time")
    print(
        f"pickup_time   examples=0: {c.median_low:8.0f}s   examples>0: "
        f"{c.median_high:8.0f}s   p={c.t_test.p_value:.3g}   "
        f"significant={c.significant}"
    )
    clusters = analysis_clusters(enriched, metric="disagreement")
    c = bin_comparison(clusters, "num_examples", "disagreement")
    print(
        f"disagreement  examples=0: {c.median_low:8.3f}    examples>0: "
        f"{c.median_high:8.3f}    p={c.t_test.p_value:.3g}   "
        f"significant={c.significant}"
    )


def main() -> None:
    # Boost example prevalence (5% -> 30%) so both worlds have enough
    # example clusters for a powered comparison at the "small" scale; the
    # *effect sizes* stay at the paper's calibration.
    paper_world = Calibration(example_prevalence=0.30)
    run_world("Paper calibration (examples help)", paper_world)

    no_example_effect = dataclasses.replace(
        paper_world,
        pickup_example_factor=1.0,
        disagreement_example_bonus=0.0,
    )
    run_world("Counterfactual (example effects off)", no_example_effect)

    print(
        "\nIn the paper-calibrated world the median-split analysis finds the "
        "example effect; in the counterfactual world it (correctly) finds "
        "nothing — the analysis pipeline does not hallucinate effects."
    )


if __name__ == "__main__":
    main()
