"""Marketplace-policy experiments (the paper's §3 administrator questions).

Run:  python examples/policy_experiments.py

§3.2 concludes that "attracting more 'active' workers can allow marketplaces
to handle fluctuating workloads better", and §2.1 suggests incentive
programs for engaged workers.  This example simulates those policies and
compares the operational metrics an administrator watches.
"""

from repro.policy import run_policy_experiment
from repro.reporting import render_table
from repro.simulator.config import SimulationConfig

POLICIES = {
    # §2.1's incentive program: convert casual workers into dedicated ones.
    "incentivize engagement (2x power pool)": {
        "engagement_mix": (0.44, 0.36, 0.08, 0.12),
    },
    # Route more volume through the casual pool (pull-heavy marketplace).
    "pull-heavy routing (2x casual share)": {
        "casual_share_target": 0.45,
        "casual_volume_cap": 0.80,
    },
    # Starve the casual pool (push-everything marketplace).
    "push-heavy routing (casual share -> 5%)": {
        "casual_share_target": 0.05,
        "casual_volume_cap": 0.15,
    },
}


def main() -> None:
    base = SimulationConfig.preset("small", seed=7)
    print("Simulating policies on the 'small' marketplace (same seed each)...")
    outcomes = run_policy_experiment(POLICIES, base=base)
    print()
    print(render_table([o.as_dict() for o in outcomes]))
    print(
        "\nReading: incentivizing engagement grows the weekly active pool "
        "and spreads work (lower top-10% share); pull-heavy routing shifts "
        "volume to casual labor; push-heavy routing concentrates almost "
        "everything on the dedicated core.  Pickup latency is identical "
        "across policies by construction — in this generative model pickup "
        "is driven by demand and task design, not pool composition (a "
        "documented model limitation; see repro.policy)."
    )


if __name__ == "__main__":
    main()
