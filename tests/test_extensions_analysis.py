"""Tests for extension analyses: internal/external split, completion
profiles, and Table.describe."""

import numpy as np
import pytest

from repro.analysis.marketplace import internal_external_split
from repro.analysis.taskdesign import batch_completion_profile
from repro.tables import Table


class TestInternalExternalSplit:
    def test_partitions_all_instances(self, study, released):
        internal, external = internal_external_split(
            released, num_weeks=study.config.num_weeks
        )
        assert internal.sum() + external.sum() == released.instances.num_rows

    def test_internal_is_small(self, study, released):
        """§3.2: internal workers account for a very small fraction."""
        internal, external = internal_external_split(
            released, num_weeks=study.config.num_weeks
        )
        total = internal.sum() + external.sum()
        assert internal.sum() / total < 0.15  # paper: ~2%

    def test_external_absorbs_flux(self, study, released):
        internal, external = internal_external_split(
            released, num_weeks=study.config.num_weeks
        )
        assert external.std() > internal.std()


class TestCompletionProfile:
    @pytest.fixture(scope="class")
    def profile(self, released):
        return batch_completion_profile(released)

    def test_covers_all_batches(self, profile, released):
        assert len(profile.batch_id) == released.num_sampled_batches

    def test_quantiles_ordered(self, profile):
        assert np.all(profile.time_to_half <= profile.time_to_90 + 1e-9)
        assert np.all(profile.time_to_90 <= profile.time_to_full + 1e-9)

    def test_all_positive(self, profile):
        assert np.all(profile.time_to_half > 0)

    def test_medians_dict(self, profile):
        medians = profile.medians()
        assert set(medians) == {"time_to_half", "time_to_90", "time_to_full"}
        assert medians["time_to_full"] >= medians["time_to_half"]

    def test_pickup_dominates_completion(self, profile, enriched):
        """Even full-batch completion is pickup-dominated (§4.1)."""
        median_task_time = float(np.median(enriched.batch_table["task_time"]))
        assert profile.medians()["time_to_half"] > 3 * median_task_time


class TestDescribe:
    def test_numeric_columns_only(self):
        t = Table({"a": [1, 2, 3], "b": ["x", "y", "z"], "c": [1.0, 2.0, 3.0]})
        d = t.describe()
        assert sorted(d["column"]) == ["a", "c"]

    def test_values(self):
        t = Table({"a": [1.0, 2.0, 3.0, 4.0]})
        row = t.describe().row(0)
        assert row["count"] == 4
        assert row["mean"] == 2.5
        assert row["median"] == 2.5
        assert row["min"] == 1.0 and row["max"] == 4.0

    def test_no_numeric_columns(self):
        t = Table({"s": ["a", "b"]})
        assert t.describe().num_rows == 0
