"""Tests for the SVG chart builders and the figure-rendering pipeline."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.reporting.svg import (
    SvgChart,
    bar_chart,
    cdf_chart,
    line_chart,
    scatter_log_log,
)


def _valid_xml(svg: str) -> bool:
    xml.dom.minidom.parseString(svg)
    return True


class TestSvgChart:
    def test_basic_document(self):
        chart = SvgChart(title="t", x_min=0, x_max=10, y_min=0, y_max=5)
        svg = chart.render()
        assert svg.startswith("<svg")
        assert _valid_xml(svg)
        assert "<title" not in svg  # title is a text element
        assert ">t<" in svg

    def test_line_produces_polyline(self):
        chart = SvgChart(title="t", x_min=0, x_max=3, y_min=0, y_max=3)
        chart.add_line([0, 1, 2, 3], [0, 1, 2, 3], label="demo")
        svg = chart.render()
        assert "polyline" in svg
        assert "demo" in svg

    def test_nan_breaks_segments(self):
        chart = SvgChart(title="t", x_min=0, x_max=4, y_min=0, y_max=4)
        chart.add_line([0, 1, 2, 3, 4], [1, 2, float("nan"), 3, 4])
        svg = chart.render()
        assert svg.count("polyline") == 2

    def test_points(self):
        chart = SvgChart(title="t", x_min=0, x_max=2, y_min=0, y_max=2)
        chart.add_points([0.5, 1.5], [0.5, 1.5])
        assert chart.render().count("<circle") == 2

    def test_log_axes_positive_mapping(self):
        chart = SvgChart(
            title="t", x_min=1, x_max=1000, y_min=1, y_max=100,
            x_log=True, y_log=True,
        )
        mid = chart.frame._tx(31.6)  # geometric midpoint of 1..1000
        left = chart.frame._tx(1)
        right = chart.frame._tx(1000)
        assert left < mid < right
        assert abs((mid - left) - (right - mid)) < 2.0

    def test_title_escaped(self):
        chart = SvgChart(title="a < b & c", x_min=0, x_max=1, y_min=0, y_max=1)
        assert _valid_xml(chart.render())

    def test_marker(self):
        chart = SvgChart(title="t", x_min=0, x_max=10, y_min=0, y_max=1)
        chart.add_vertical_marker(5.0, label="here")
        svg = chart.render()
        assert "stroke-dasharray" in svg and "here" in svg


class TestConvenienceCharts:
    def test_line_chart(self):
        svg = line_chart(
            {"a": ([0, 1, 2], [1, 2, 3]), "b": ([0, 1, 2], [3, 2, 1])},
            title="two series", x_label="x", y_label="y",
        )
        assert _valid_xml(svg)
        assert svg.count("polyline") == 2

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, title="empty")

    def test_line_chart_log_y(self):
        svg = line_chart(
            {"s": ([0, 1, 2], [1.0, 100.0, 10000.0])}, title="log", y_log=True
        )
        assert _valid_xml(svg)

    def test_bar_chart(self):
        svg = bar_chart({"Mon": 5.0, "Tue": 3.0}, title="bars")
        assert _valid_xml(svg)
        assert svg.count("<rect") >= 3  # frame + background + 2 bars

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({}, title="none")

    def test_scatter_log_log(self):
        svg = scatter_log_log([1, 10, 100], [100, 10, 1], title="scatter")
        assert _valid_xml(svg)
        assert svg.count("<circle") == 3

    def test_cdf_chart(self):
        xs = np.linspace(0, 1, 20)
        svg = cdf_chart(
            {"low": (xs, xs), "high": (xs, xs**2)},
            title="cdfs", x_label="metric",
        )
        assert _valid_xml(svg)


class TestRenderAllFigures:
    def test_full_pipeline(self, figures, tmp_path):
        from repro.figures.render_svg import render_all_figures

        paths = render_all_figures(figures, tmp_path)
        assert len(paths) >= 30
        names = {p.name for p in paths}
        for expected in (
            "fig01_sampling.svg", "fig03_weekday.svg", "fig08_heavy_hitters.svg",
            "fig13_latency.svg", "fig28_geography.svg", "fig30a_lifetimes.svg",
        ):
            assert expected in names
        for path in paths:
            assert _valid_xml(path.read_text())

    def test_cli_figures_command(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(
            ["figures", "--scale", "tiny", "--seed", "7",
             "--out", str(tmp_path / "figs")]
        )
        assert rc == 0
        assert "SVG figures" in capsys.readouterr().out
        assert (tmp_path / "figs" / "fig03_weekday.svg").exists()


class TestStackedBarChart:
    def test_basic(self):
        from repro.reporting.svg import stacked_bar_chart

        svg = stacked_bar_chart(
            {"ER": {"Filt": 60.0, "Rate": 40.0}, "SA": {"Filt": 30.0, "Gen": 70.0}},
            title="stacked",
        )
        assert _valid_xml(svg)
        # Two bars x two segments each + frame/background rects + legend.
        assert svg.count("<rect") >= 6

    def test_empty_rejected(self):
        from repro.reporting.svg import stacked_bar_chart

        with pytest.raises(ValueError):
            stacked_bar_chart({}, title="none")

    def test_zero_segments_skipped(self):
        from repro.reporting.svg import stacked_bar_chart

        svg = stacked_bar_chart(
            {"A": {"x": 0.0, "y": 100.0}}, title="zeros"
        )
        assert _valid_xml(svg)
