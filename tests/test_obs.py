"""Tests for :mod:`repro.obs`: spans, metrics, exporters, worker folding.

Tracing is process-global, so every test here runs under the autouse
``_tracing_off`` fixture, which guarantees the tracer is disabled and the
trace cleared after each test regardless of outcome.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import build_study, obs
from repro.parallel import map_chunks


@pytest.fixture(autouse=True)
def _tracing_off():
    yield
    obs.finish()


def _double(x):
    return x * 2


# --------------------------------------------------------------------- #
# Span tracing
# --------------------------------------------------------------------- #


class TestSpans:
    def test_disabled_is_noop(self):
        assert not obs.enabled()
        handle = obs.span("anything", key="value")
        assert handle is obs.span("something else")  # shared singleton
        with handle as sp:
            sp.set("ignored", 1)  # must not raise
        assert obs.current_trace() is None

    def test_nesting_records_parent_indices(self):
        obs.enable(name="t")
        with obs.span("outer", scale="tiny"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        trace = obs.finish()
        assert not obs.enabled()
        assert [s.name for s in trace.spans] == ["outer", "inner", "inner"]
        outer, first, second = trace.spans
        assert outer.parent == -1
        assert first.parent == outer.index == 0
        assert second.parent == 0
        assert outer.attrs == {"scale": "tiny"}
        assert outer.wall_s >= first.wall_s >= 0.0

    def test_none_attrs_are_dropped(self):
        obs.enable()
        with obs.span("s", kept=1, dropped=None):
            pass
        trace = obs.finish()
        assert trace.spans[0].attrs == {"kept": 1}

    def test_set_attaches_attrs(self):
        obs.enable()
        with obs.span("s") as sp:
            sp.set("rows", 42)
        trace = obs.finish()
        assert trace.spans[0].attrs["rows"] == 42

    def test_exception_annotates_and_propagates(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("failing"):
                    raise ValueError("boom")
        with obs.span("after"):
            pass
        trace = obs.finish()
        by_name = {s.name: s for s in trace.spans}
        assert by_name["failing"].attrs["error"] == "ValueError"
        assert by_name["outer"].attrs["error"] == "ValueError"
        # The stack unwound cleanly: the next span is a root, not a child.
        assert by_name["after"].parent == -1

    def test_traced_decorator(self):
        @obs.traced()
        def plain(x):
            return x + 1

        @obs.traced("custom.name", flavor="test")
        def named(x):
            return x - 1

        assert plain(1) == 2  # disabled: direct call, no trace
        obs.enable()
        assert plain(1) == 2
        assert named(1) == 0
        trace = obs.finish()
        names = [s.name for s in trace.spans]
        assert any("plain" in n for n in names)
        assert "custom.name" in names
        custom = next(s for s in trace.spans if s.name == "custom.name")
        assert custom.attrs == {"flavor": "test"}

    def test_threads_get_independent_stacks(self):
        obs.enable()
        done = threading.Event()

        def worker():
            with obs.span("thread.child"):
                done.wait(timeout=5)

        with obs.span("main.parent"):
            t = threading.Thread(target=worker)
            t.start()
            done.set()
            t.join()
        trace = obs.finish()
        child = next(s for s in trace.spans if s.name == "thread.child")
        # Spawned from another thread: a root, not nested under main.parent.
        assert child.parent == -1

    def test_mem_tracking(self):
        obs.enable(mem=True)
        with obs.span("alloc"):
            buf = np.zeros(1_000_000, dtype=np.float64)
        del buf
        trace = obs.finish()
        record = trace.spans[0]
        assert record.mem_peak_bytes is not None
        assert record.mem_peak_bytes > 0
        assert record.mem_alloc_bytes is not None


# --------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------- #


class TestMetricsThreadSafety:
    """The registry races /metrics scrapes against the sampler daemon
    thread and main-thread increments; these hammer tests pin the
    consistent-snapshot guarantees."""

    N_THREADS = 8
    N_OPS = 4000

    def test_hammer_exact_totals_and_consistent_snapshots(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("hammer.count")
        hist = registry.histogram("hammer.hist", bounds=(0.5,))
        stop = threading.Event()
        bad_snapshots: list[dict] = []

        def snapshotter() -> None:
            while not stop.is_set():
                snap = registry.snapshot()
                h = snap["histograms"]["hammer.hist"]
                # Internal consistency: the +Inf cumulative bucket must
                # equal the observation count in *every* mid-flight
                # snapshot, not just the final one.
                if h["buckets"][-1]["count"] != h["count"]:
                    bad_snapshots.append(h)

        def worker(tid: int) -> None:
            for i in range(self.N_OPS):
                counter.inc()
                hist.observe(0.25 if i % 2 else 0.75)
                if i % 1000 == 0:
                    # Registering new names mutates the instrument dict
                    # under the iterating snapshotters.
                    registry.counter(f"hammer.new.{tid}.{i}").inc()

        snapshotters = [
            threading.Thread(target=snapshotter) for _ in range(2)
        ]
        workers = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.N_THREADS)
        ]
        for t in snapshotters + workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        for t in snapshotters:
            t.join()

        assert not bad_snapshots
        total = self.N_THREADS * self.N_OPS
        assert counter.value == total  # no lost increments
        final = hist.snapshot()
        assert final["count"] == total
        assert final["buckets"][-1]["count"] == total
        # Every pair of observations contributes exactly 1.0 to the sum.
        assert final["sum"] == pytest.approx(total * 0.5)

    def test_snapshot_during_merge_raw_stays_consistent(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("hammer.merge", bounds=(1.0,))
        delta = {"bounds": [1.0], "counts": [3, 1], "sum": 5.0, "count": 4}
        stop = threading.Event()
        bad: list[dict] = []

        def merger() -> None:
            while not stop.is_set():
                hist.merge_raw(delta)

        def checker() -> None:
            while not stop.is_set():
                snap = hist.snapshot()
                if snap["buckets"][-1]["count"] != snap["count"]:
                    bad.append(snap)

        threads = [threading.Thread(target=merger)] + [
            threading.Thread(target=checker) for _ in range(2)
        ]
        for t in threads:
            t.start()
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert not bad
        assert hist.count % 4 == 0  # whole deltas only, never a torn merge


class TestMetrics:
    def test_counter_gauge_roundtrip(self):
        c = obs.counter("test.counter")
        start = c.value
        c.inc()
        c.inc(4)
        assert c.value == start + 5
        assert obs.counter("test.counter") is c  # same instrument
        g = obs.gauge("test.gauge")
        g.set(17)
        assert obs.metrics_snapshot()["gauges"]["test.gauge"] == 17

    def test_histogram_cumulative_buckets(self):
        h = obs.REGISTRY.histogram("test.hist", bounds=(0.1, 1.0, 10.0))
        h.reset()
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        counts = {b["le"]: b["count"] for b in snap["buckets"]}
        assert counts == {0.1: 1, 1.0: 3, 10.0: 4, "+Inf": 5}

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            obs.Histogram("bad", bounds=(1.0, 0.5))

    def test_kind_conflict_raises(self):
        obs.counter("test.conflicted")
        with pytest.raises(TypeError):
            obs.gauge("test.conflicted")

    def test_merge_counter_deltas(self):
        c = obs.counter("test.merge")
        start = c.value
        obs.merge_counter_deltas({"test.merge": 3, "test.merge.zero": 0})
        assert c.value == start + 3
        # Zero deltas must not materialize new instruments.
        assert "test.merge.zero" not in obs.metrics_snapshot()["counters"]

    def test_snapshot_shape(self):
        snap = obs.metrics_snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert all(isinstance(v, int) for v in snap["counters"].values())


class TestHistogramShipping:
    """Raw export / merge: how worker-process histograms reach the parent."""

    def test_raw_merge_raw_roundtrip(self):
        src = obs.Histogram("ship.src", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            src.observe(value)
        dst = obs.Histogram("ship.dst", bounds=(0.1, 1.0))
        dst.observe(0.5)
        dst.merge_raw(src.raw())
        snap = dst.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        counts = {b["le"]: b["count"] for b in snap["buckets"]}
        assert counts == {0.1: 1, 1.0: 3, "+Inf": 4}

    def test_merge_raw_rejects_mismatched_bounds(self):
        a = obs.Histogram("ship.a", bounds=(0.1, 1.0))
        b = obs.Histogram("ship.b", bounds=(0.5, 2.0))
        b.observe(1.0)
        with pytest.raises(ValueError):
            a.merge_raw(b.raw())

    def test_histogram_deltas_only_observed(self):
        h = obs.REGISTRY.histogram("ship.delta", bounds=(0.1, 1.0))
        before = obs.REGISTRY.histogram_values()
        h.observe(0.5)
        h.observe(2.0)
        deltas = obs.histogram_deltas(before, obs.REGISTRY.histogram_values())
        assert set(deltas) == {"ship.delta"}
        assert deltas["ship.delta"]["count"] == 2
        # Nothing observed → nothing shipped.
        assert obs.histogram_deltas(
            obs.REGISTRY.histogram_values(), obs.REGISTRY.histogram_values()
        ) == {}

    def test_merge_histogram_deltas_creates_unknown_instrument(self):
        src = obs.Histogram("ship.fresh", bounds=(0.25, 4.0))
        src.observe(1.0)
        obs.merge_histogram_deltas({"ship.fresh": src.raw()})
        snap = obs.metrics_snapshot()["histograms"]["ship.fresh"]
        assert snap["count"] >= 1

    def test_worker_collector_ships_histogram_deltas(self):
        obs.REGISTRY.histogram("ship.worker", bounds=(0.1, 1.0))
        obs.enable(name="hist")
        try:
            with obs.worker_collector() as collector:
                obs.REGISTRY.histogram("ship.worker", bounds=(0.1, 1.0)).observe(0.5)
        finally:
            obs.finish()
        assert collector.histogram_deltas["ship.worker"]["count"] == 1

    def test_histograms_in_trace_export_and_summary(self):
        obs.REGISTRY.histogram("ship.export", bounds=(0.1, 1.0)).observe(0.5)
        obs.enable(name="hist")
        with obs.span("root"):
            pass
        doc = obs.trace_to_dict(obs.finish())
        assert doc["metrics"]["histograms"]["ship.export"]["count"] >= 1
        summary = obs.summarize_histograms(doc)
        assert "ship.export" in summary
        assert "mean" in summary and "p50" in summary

    def test_summarize_histograms_empty_when_nothing_observed(self):
        obs.enable(name="hist")
        doc = obs.trace_to_dict(obs.finish())
        unobserved = {
            name: snap
            for name, snap in doc["metrics"]["histograms"].items()
            if not snap["count"]
        }
        doc["metrics"]["histograms"] = unobserved
        assert obs.summarize_histograms(doc) == ""


# --------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------- #


class TestExport:
    def _make_trace(self):
        obs.enable(name="unit")
        with obs.span("root", scale="tiny"):
            with obs.span("child"):
                pass
        return obs.finish()

    def test_json_roundtrip(self, tmp_path):
        trace = self._make_trace()
        doc = obs.trace_to_dict(trace)
        assert doc["schema"] == obs.TRACE_SCHEMA_VERSION
        assert doc["name"] == "unit"
        assert {"counters", "gauges", "histograms"} <= set(doc["metrics"])
        assert doc["spans"][0]["parent"] == -1
        assert doc["spans"][1]["parent"] == 0
        path = obs.write_trace_json(trace, tmp_path / "t.json")
        loaded = obs.load_trace(path)
        assert loaded["spans"] == json.loads(json.dumps(doc["spans"]))

    def test_load_trace_rejects_garbage(self, tmp_path):
        not_trace = tmp_path / "x.json"
        not_trace.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            obs.load_trace(not_trace)
        wrong_schema = tmp_path / "y.json"
        wrong_schema.write_text('{"schema": 999, "spans": []}')
        with pytest.raises(ValueError):
            obs.load_trace(wrong_schema)

    def test_render_tree_nests_and_collapses(self):
        obs.enable(name="tree")
        with obs.span("parent"):
            with obs.span("lonely"):
                pass
            for _ in range(5):
                with obs.span("repeated"):
                    pass
        rendered = obs.render_tree(obs.finish())
        assert rendered.splitlines()[0].startswith("trace 'tree': 7 spans")
        assert "parent" in rendered and "lonely" in rendered
        # Five childless same-name siblings fold into one aggregate line.
        assert "repeated x5" in rendered
        assert rendered.count("repeated") == 1

    def test_summarize_and_aggregate(self):
        trace = self._make_trace()
        totals = obs.aggregate_by_name(trace)
        assert totals["root"]["count"] == 1
        assert totals["child"]["count"] == 1
        summary = obs.summarize_trace(trace, top=1)
        assert "root" in summary
        assert "1 more span names" in summary


# --------------------------------------------------------------------- #
# Worker-process folding
# --------------------------------------------------------------------- #


class TestWorkerFolding:
    def test_pool_spans_fold_under_parallel_map(self):
        pool_maps = obs.counter("parallel.pool_maps")
        before = pool_maps.value
        obs.enable(name="fold")
        try:
            result = map_chunks(_double, list(range(100)), workers=2)
        finally:
            trace = obs.finish()
        assert result == [x * 2 for x in range(100)]
        if pool_maps.value == before:
            pytest.skip("process pool unavailable in this environment")
        by_name = {}
        for record in trace.spans:
            by_name.setdefault(record.name, []).append(record)
        (map_span,) = by_name["parallel.map"]
        chunks = by_name["parallel.chunk"]
        assert len(chunks) >= 2
        assert all(c.parent == map_span.index for c in chunks)
        assert sum(c.attrs["items"] for c in chunks) == 100
        # Worker spans keep their worker pid (fork: different from parent).
        assert any(c.pid != map_span.pid for c in chunks)

    def test_worker_collector_restores_state(self):
        obs.enable(name="outer")
        with obs.span("outer.span"):
            with obs.worker_collector() as collector:
                with obs.span("inner.span"):
                    obs.counter("test.collector").inc(2)
            assert [s.name for s in collector.spans] == ["inner.span"]
            assert collector.counter_deltas["test.collector"] == 2
            # Back in the parent trace: recording resumes where it left off.
            with obs.span("outer.child"):
                pass
        trace = obs.finish()
        names = [s.name for s in trace.spans]
        assert names == ["outer.span", "outer.child"]
        assert trace.spans[1].parent == 0


# --------------------------------------------------------------------- #
# Acceptance: cache counters and tracing transparency
# --------------------------------------------------------------------- #


def _cache_counts():
    counters = obs.metrics_snapshot()["counters"]
    return {
        name: counters.get(f"cache.{name}", 0)
        for name in ("hit", "miss", "write")
    }


def _diff(after, before):
    return {name: after[name] - before[name] for name in after}


class TestCacheCounters:
    def test_cold_warm_and_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

        before = _cache_counts()
        build_study("tiny", seed=7, cache=True)
        assert _diff(_cache_counts(), before) == {
            "hit": 0, "miss": 1, "write": 1,
        }, "cold build must record one miss and one write"
        assert obs.counter("cache.bytes_written").value > 0

        before = _cache_counts()
        build_study("tiny", seed=7, cache=True)
        assert _diff(_cache_counts(), before) == {
            "hit": 1, "miss": 0, "write": 0,
        }, "warm rebuild must record exactly one hit"

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        before = _cache_counts()
        build_study("tiny", seed=7)
        assert _diff(_cache_counts(), before) == {
            "hit": 0, "miss": 0, "write": 0,
        }, "REPRO_NO_CACHE builds must not touch the cache at all"


class TestTracingTransparency:
    def test_tables_identical_with_tracing_on(self, study):
        """A traced build must produce byte-identical tables to an untraced one."""
        obs.enable(name="transparency")
        try:
            traced_study = build_study("tiny", seed=7, cache=False)
        finally:
            trace = obs.finish()
        assert len(trace.spans) > 10  # the build really was traced
        pairs = [
            (study.released.instances, traced_study.released.instances),
            (study.released.batch_catalog, traced_study.released.batch_catalog),
            (study.enriched.batch_table, traced_study.enriched.batch_table),
            (study.enriched.cluster_table, traced_study.enriched.cluster_table),
            (study.enriched.labels, traced_study.enriched.labels),
        ]
        for expected, actual in pairs:
            assert list(expected.column_names) == list(actual.column_names)
            for name in expected.column_names:
                a, b = expected[name], actual[name]
                assert a.dtype == b.dtype
                if a.dtype == object:
                    assert a.tolist() == b.tolist()
                else:
                    assert a.tobytes() == b.tobytes()
