"""Tests for §3 marketplace analyses on the tiny study."""

import numpy as np
import pytest

from repro.analysis import marketplace as mkt
from repro.taxonomy.labels import (
    is_complex_data,
    is_complex_goal,
    is_complex_operator,
)


@pytest.fixture(scope="module")
def num_weeks(study):
    return study.config.num_weeks


class TestArrivals:
    def test_series_lengths(self, released, enriched, num_weeks):
        a = mkt.weekly_arrivals(released, enriched, num_weeks=num_weeks)
        for series in (a.instances_issued, a.instances_completed,
                       a.batches_issued, a.distinct_tasks_issued,
                       a.median_pickup_time):
            assert len(series) == num_weeks

    def test_issued_total_matches_sample(self, released, enriched, num_weeks):
        a = mkt.weekly_arrivals(released, enriched, num_weeks=num_weeks)
        assert a.instances_issued.sum() == released.instances.num_rows

    def test_completions_conserve_instances(self, released, enriched, num_weeks):
        a = mkt.weekly_arrivals(released, enriched, num_weeks=num_weeks)
        assert a.instances_completed.sum() == released.instances.num_rows

    def test_post_regime_dominates(self, study, released, enriched, num_weeks):
        a = mkt.weekly_arrivals(released, enriched, num_weeks=num_weeks)
        switch = study.config.regime_switch_week
        assert a.instances_issued[switch:].sum() > 5 * a.instances_issued[:switch].sum()

    def test_pickup_anticorrelated_with_load(self, study, released, enriched):
        """High-load weeks move faster (§3.2)."""
        a = mkt.weekly_arrivals(
            released, enriched, num_weeks=study.config.num_weeks
        )
        switch = study.config.regime_switch_week
        issued = a.instances_issued[switch:]
        pickup = a.median_pickup_time[switch:]
        ok = ~np.isnan(pickup) & (issued > 0)
        if ok.sum() < 10:
            pytest.skip("too few active weeks")
        correlation = np.corrcoef(np.log1p(issued[ok]), np.log1p(pickup[ok]))[0, 1]
        # Tiny scale is noisy; the medium-scale benchmark asserts < 0.05.
        assert correlation < 0.35

    def test_load_variation_signs(self, study, enriched):
        lv = mkt.load_variation(
            enriched,
            start_week=study.config.regime_switch_week,
            num_weeks=study.config.num_weeks,
        )
        assert lv.busiest_over_median > 3
        assert lv.lightest_over_median < 0.3
        assert lv.median_daily_instances > 0

    def test_weekday_totals(self, enriched):
        totals = mkt.weekday_totals(enriched)
        assert len(totals) == 7
        assert totals[:5].mean() > totals[5:].mean()


class TestWorkers:
    def test_active_workers_stability(self, study, released):
        """Worker availability varies far less than load (Figure 4)."""
        num_weeks = study.config.num_weeks
        switch = study.config.regime_switch_week
        workers = mkt.weekly_active_workers(released, num_weeks=num_weeks)[switch:]
        a = study.figures.arrivals().instances_issued[switch:]
        active = workers > 0
        cv_workers = workers[active].std() / workers[active].mean()
        cv_load = a[active].std() / a[active].mean()
        assert cv_workers < cv_load

    def test_engagement_split_partitions_tasks(self, study, released):
        split = mkt.engagement_split(released, num_weeks=study.config.num_weeks)
        total = split.tasks_top10.sum() + split.tasks_bottom90.sum()
        assert total == released.instances.num_rows

    def test_top10_carry_most_flux(self, study, released):
        split = mkt.engagement_split(released, num_weeks=study.config.num_weeks)
        assert split.tasks_top10.sum() > 2 * split.tasks_bottom90.sum()


class TestClusters:
    def test_cluster_sizes_sum_to_batches(self, enriched):
        sizes = mkt.cluster_size_distribution(enriched)
        assert sizes.sum() == enriched.batch_table.num_rows

    def test_tasks_per_cluster_sum(self, enriched):
        counts = mkt.tasks_per_cluster_distribution(enriched)
        assert counts.sum() == enriched.batch_table["num_instances"].sum()

    def test_heavy_hitter_curves_monotone(self, study, enriched):
        curves = mkt.heavy_hitter_curves(
            enriched, num_weeks=study.config.num_weeks, top=5
        )
        assert len(curves) <= 5
        for series in curves.values():
            assert np.all(np.diff(series) >= 0)


class TestLabels:
    def test_distribution_weights_are_instances(self, enriched):
        dist = mkt.label_distribution(enriched, "goals")
        ct = enriched.cluster_table
        # Single-label clusters contribute exactly their instances, so the
        # total is at least the single-label sum.
        assert sum(dist.values()) >= ct["num_instances"].sum() * 0.99

    def test_unknown_category(self, enriched):
        with pytest.raises(ValueError):
            mkt.label_distribution(enriched, "colors")

    def test_correlation_rows_sum_to_100(self, enriched):
        corr = mkt.label_correlation(enriched, rows="goals", columns="operators")
        for goal, breakdown in corr.items():
            assert sum(breakdown.values()) == pytest.approx(100.0)

    def test_trend_cumulative_monotone(self, study, enriched):
        for category in ("goals", "operators", "data_types"):
            simple, complex_ = mkt.simple_complex_trend(
                enriched, category, num_weeks=study.config.num_weeks
            )
            assert np.all(np.diff(simple) >= 0)
            assert np.all(np.diff(complex_) >= 0)

    def test_trend_counts_clusters_once(self, study, enriched):
        simple, complex_ = mkt.simple_complex_trend(
            enriched, "goals", num_weeks=study.config.num_weeks
        )
        labeled = sum(
            1 for g in enriched.cluster_table["goals"] if g
        )
        assert simple[-1] + complex_[-1] == labeled


class TestComplexityPredicates:
    def test_goal_split(self):
        assert not is_complex_goal("ER")
        assert not is_complex_goal("SA")
        assert not is_complex_goal("QA")
        assert is_complex_goal("LU")
        assert is_complex_goal("T")

    def test_operator_split(self):
        assert not is_complex_operator("Filt")
        assert not is_complex_operator("Rate")
        assert is_complex_operator("Gat")

    def test_data_split(self):
        assert not is_complex_data("Text")
        assert is_complex_data("Image")
