"""Differential equivalence: the sharded pipeline vs the monolithic one.

The contract of :mod:`repro.shard` is *byte identity*: for any shard count
K, building the study over K batch-partitioned shards and merging must
produce exactly the bytes the monolithic simulate → release → enrich
pipeline produces — same tables (dtype and byte level), same HTML, same
clustering, same figures data, same fidelity probes.  These tests are the
proof the rest of the repo relies on; everything here compares with
``tobytes()``, never ``allclose``.

Also pinned here: the partition key (``batch_id % K``) — the simulator
keeps an inline copy to avoid an import cycle, and this suite is what
keeps the two in sync — plus equivalence under a process pool
(``REPRO_WORKERS=2``) and under every ``shard.*`` fault class.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_study, faults, obs
from repro.shard import (
    build_released_enriched,
    build_shard_partial,
    load_partial,
    shard_of_batches,
    store_partial,
)
from repro.simulator.config import SimulationConfig


# --------------------------------------------------------------------- #
# Strict comparison helpers (Table.__eq__ uses allclose; we must not)
# --------------------------------------------------------------------- #


def assert_tables_byte_identical(a, b, *, label=""):
    assert a.column_names == b.column_names, label
    for name in a.column_names:
        ca, cb = np.asarray(a[name]), np.asarray(b[name])
        assert ca.dtype == cb.dtype, f"{label}.{name}: dtype"
        assert ca.shape == cb.shape, f"{label}.{name}: shape"
        if ca.dtype == object:
            assert ca.tolist() == cb.tolist(), f"{label}.{name}: values"
        else:
            assert ca.tobytes() == cb.tobytes(), f"{label}.{name}: bytes"


def assert_figure_data_identical(a, b, *, label=""):
    """Strict equality over nested figure payloads (dicts/arrays/scalars)."""
    assert type(a) is type(b), label
    if isinstance(a, dict):
        assert a.keys() == b.keys(), label
        for key in a:
            assert_figure_data_identical(a[key], b[key], label=f"{label}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), label
        for i, (xa, xb) in enumerate(zip(a, b)):
            assert_figure_data_identical(xa, xb, label=f"{label}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape, label
        if a.dtype == object:
            assert a.tolist() == b.tolist(), label
        else:
            assert a.tobytes() == b.tobytes(), label
    else:
        assert a == b, label


def assert_studies_byte_identical(sharded, mono):
    assert_tables_byte_identical(
        sharded.released.batch_catalog,
        mono.released.batch_catalog,
        label="batch_catalog",
    )
    assert sharded.released.batch_html == mono.released.batch_html
    assert_tables_byte_identical(
        sharded.released.instances, mono.released.instances,
        label="instances",
    )
    assert sharded.enriched.cluster_of_batch == mono.enriched.cluster_of_batch
    assert_tables_byte_identical(
        sharded.enriched.batch_table, mono.enriched.batch_table,
        label="batch_table",
    )
    assert_tables_byte_identical(
        sharded.enriched.cluster_table, mono.enriched.cluster_table,
        label="cluster_table",
    )
    assert_tables_byte_identical(
        sharded.enriched.labels, mono.enriched.labels, label="labels"
    )


@pytest.fixture(autouse=True)
def _isolated_shard_store(tmp_path, monkeypatch):
    """Per-test cache dir: every build is cold, no cross-test spill reuse."""
    from repro import cache

    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    faults.configure(None)
    yield
    faults.configure(None)


@pytest.fixture(scope="module")
def tiny_config():
    return SimulationConfig.preset("tiny", seed=7)


@pytest.fixture(scope="module")
def tiny_mono():
    """Monolithic tiny reference, built outside any cache."""
    return build_study("tiny", seed=7, cache=False)


# --------------------------------------------------------------------- #
# Byte identity across shard counts and scales
# --------------------------------------------------------------------- #


class TestStudyEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_tiny_byte_identical(self, tiny_mono, num_shards):
        if num_shards == 1:
            # build_study(shards=1) takes the monolithic path by design;
            # exercise the shard executor's K=1 case directly instead.
            config = SimulationConfig.preset("tiny", seed=7)
            released, enriched = build_released_enriched(config, 1)

            class _Pair:
                pass

            sharded = _Pair()
            sharded.released, sharded.enriched = released, enriched
        else:
            sharded = build_study(
                "tiny", seed=7, cache=False, shards=num_shards
            )
        assert_studies_byte_identical(sharded, tiny_mono)

    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_small_byte_identical(self, num_shards):
        mono = build_study("small", seed=11, cache=False)
        sharded = build_study(
            "small", seed=11, cache=False, shards=num_shards
        )
        assert_studies_byte_identical(sharded, mono)

    def test_figures_and_fidelity_identical(self, tiny_mono):
        from repro.obs.ledger import fidelity_probes

        sharded = build_study("tiny", seed=7, cache=False, shards=3)
        for method in ("fig03_weekday", "fig13_latency", "tables_123"):
            assert_figure_data_identical(
                getattr(sharded.figures, method)(),
                getattr(tiny_mono.figures, method)(),
                label=method,
            )
        assert fidelity_probes(sharded.figures) == fidelity_probes(
            tiny_mono.figures
        )

    def test_parallel_workers_byte_identical(self, tiny_mono, monkeypatch):
        from repro import parallel

        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        sharded = build_study("tiny", seed=7, cache=False, shards=3)
        assert_studies_byte_identical(sharded, tiny_mono)

    def test_study_cache_round_trip_byte_identical(self, tiny_mono):
        # A sharded build populates the same study cache entry a monolithic
        # build would; the warm load must be byte-identical to both.
        cold = build_study("tiny", seed=7, cache=True, shards=2)
        warm = build_study("tiny", seed=7, cache=True)
        assert obs.counter("cache.hit").value > 0
        assert_studies_byte_identical(cold, tiny_mono)
        assert_studies_byte_identical(warm, tiny_mono)


# --------------------------------------------------------------------- #
# The partition key: engine's inline copy vs repro.shard.partition
# --------------------------------------------------------------------- #


class TestPartition:
    def test_engine_partition_matches_shard_of_batches(self, tiny_config):
        num_shards = 3
        partials = [
            build_shard_partial(tiny_config, num_shards, shard)
            for shard in range(num_shards)
        ]
        for shard, partial in enumerate(partials):
            batch_ids = np.unique(np.asarray(partial.instances["batch_id"]))
            owners = shard_of_batches(batch_ids, num_shards)
            assert (owners == shard).all()
            html_ids = np.array(sorted(partial.batch_html), dtype=np.int64)
            assert (shard_of_batches(html_ids, num_shards) == shard).all()
        # Shards partition the sampled batches: disjoint and exhaustive.
        all_html = sorted(
            b for p in partials for b in p.batch_html
        )
        assert len(all_html) == len(set(all_html))

    def test_only_shard_zero_carries_catalog(self, tiny_config):
        for shard in range(2):
            partial = build_shard_partial(tiny_config, 2, shard)
            assert (partial.catalog is not None) == (shard == 0)

    def test_shard_union_reconstructs_monolithic_release(
        self, tiny_config, tiny_mono
    ):
        # The instance_id column is a *global* log id: each shard's slice is
        # internally ordered by it, ids are disjoint across shards, and the
        # concat + stable sort reconstructs the monolithic released table
        # byte for byte — the invariant merge_partials relies on.
        from repro.tables import concat_tables

        num_shards = 4
        partials = [
            build_shard_partial(tiny_config, num_shards, shard)
            for shard in range(num_shards)
        ]
        for partial in partials:
            ids = np.asarray(partial.instances["instance_id"])
            assert (np.diff(ids) > 0).all()
        union = concat_tables([p.instances for p in partials])
        union = union.take(
            np.argsort(union["instance_id"], kind="stable")
        )
        ids = np.asarray(union["instance_id"])
        assert len(np.unique(ids)) == len(ids)
        assert_tables_byte_identical(
            union, tiny_mono.released.instances, label="union"
        )


class TestResolveShards:
    def test_explicit_overrides_env(self, monkeypatch):
        from repro.shard.partition import SHARDS_ENV, resolve_shards

        monkeypatch.setenv(SHARDS_ENV, "7")
        assert resolve_shards(3) == 3

    def test_env_value(self, monkeypatch):
        from repro.shard.partition import SHARDS_ENV, resolve_shards

        monkeypatch.setenv(SHARDS_ENV, "4")
        assert resolve_shards(None) == 4

    def test_defaults_to_monolithic(self, monkeypatch):
        from repro.shard.partition import SHARDS_ENV, resolve_shards

        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert resolve_shards() == 1

    def test_invalid_explicit_raises(self):
        from repro.shard.partition import resolve_shards

        with pytest.raises(ValueError, match="shards must be"):
            resolve_shards(0)

    @pytest.mark.parametrize("raw", ["banana", "0", "-2"])
    def test_garbage_env_degrades_loudly(self, monkeypatch, raw):
        from repro.shard.partition import SHARDS_ENV, resolve_shards

        monkeypatch.setenv(SHARDS_ENV, raw)
        before = obs.counter("shard.misconfigured").value
        with pytest.warns(RuntimeWarning, match="not a positive integer"):
            assert resolve_shards(None) == 1
        assert obs.counter("shard.misconfigured").value == before + 1

    def test_shard_of_batches_rejects_bad_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_of_batches(np.arange(4), 0)


# --------------------------------------------------------------------- #
# Spill store round-trip
# --------------------------------------------------------------------- #


class TestSpillStore:
    def test_round_trip_byte_identical(self, tiny_config):
        partial = build_shard_partial(tiny_config, 2, 0)
        assert store_partial(tiny_config, partial) is not None
        loaded = load_partial(tiny_config, 2, 0)
        assert loaded is not None
        assert_tables_byte_identical(
            loaded.instances, partial.instances, label="instances"
        )
        assert_tables_byte_identical(
            loaded.design, partial.design, label="design"
        )
        assert_tables_byte_identical(
            loaded.metrics, partial.metrics, label="metrics"
        )
        assert_tables_byte_identical(
            loaded.catalog, partial.catalog, label="catalog"
        )
        assert loaded.batch_html == partial.batch_html
        assert np.array_equal(loaded.shingle_ids, partial.shingle_ids)
        assert len(loaded.shingle_arrays) == len(partial.shingle_arrays)
        for a, b in zip(loaded.shingle_arrays, partial.shingle_arrays):
            assert np.array_equal(a, b)

    def test_missing_entry_is_a_miss(self, tiny_config):
        assert load_partial(tiny_config, 2, 1) is None


# --------------------------------------------------------------------- #
# Fault injection: every shard.* fault class leaves the bytes unchanged
# --------------------------------------------------------------------- #


class TestShardFaults:
    NUM_SHARDS = 3

    def _faulted_build(self, spec):
        faults.configure(spec)
        try:
            return build_study(
                "tiny", seed=7, cache=False, shards=self.NUM_SHARDS
            )
        finally:
            faults.configure(None)

    def test_save_fail_keeps_in_memory_partials(self, tiny_mono, monkeypatch):
        # Serial build: under a process pool the spill (and its warning)
        # happens inside a worker, where pytest.warns cannot observe it.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        before = obs.counter("shard.store_failed").value
        with pytest.warns(RuntimeWarning, match="failed to spill"):
            sharded = self._faulted_build("shard.save:fail")
        assert (
            obs.counter("shard.store_failed").value - before
            == self.NUM_SHARDS
        )
        assert_studies_byte_identical(sharded, tiny_mono)

    def test_load_fail_rebuilds_in_process(self, tiny_mono):
        corrupt = obs.counter("shard.corrupt").value
        rebuilt = obs.counter("shard.rebuilt").value
        sharded = self._faulted_build("shard.load:fail")
        assert obs.counter("shard.corrupt").value - corrupt == self.NUM_SHARDS
        assert obs.counter("shard.rebuilt").value - rebuilt == self.NUM_SHARDS
        assert_studies_byte_identical(sharded, tiny_mono)

    def test_load_corrupt_quarantines_and_rebuilds(self, tiny_mono):
        corrupt = obs.counter("shard.corrupt").value
        rebuilt = obs.counter("shard.rebuilt").value
        sharded = self._faulted_build("shard.load:corrupt")
        assert obs.counter("shard.corrupt").value - corrupt == self.NUM_SHARDS
        assert obs.counter("shard.rebuilt").value - rebuilt == self.NUM_SHARDS
        assert_studies_byte_identical(sharded, tiny_mono)

    def test_corrupt_spill_is_detected_by_checksum(self, tiny_config):
        # Damage a spilled entry on disk directly (no injected fault on the
        # load path): the checksum must catch it and report a miss.
        from repro.shard.store import _entry_dir

        partial = build_shard_partial(tiny_config, 2, 0)
        assert store_partial(tiny_config, partial) is not None
        victim = _entry_dir(tiny_config, 2, 0) / "metrics.npz"
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        before = obs.counter("shard.corrupt").value
        assert load_partial(tiny_config, 2, 0) is None
        assert obs.counter("shard.corrupt").value == before + 1
