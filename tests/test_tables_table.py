"""Unit tests for repro.tables.table."""

import numpy as np
import pytest

from repro.tables import Table, concat_tables
from repro.tables.table import SchemaError


def make_table():
    return Table(
        {
            "id": [1, 2, 3, 4],
            "name": ["a", "b", "a", "c"],
            "score": [1.0, 2.5, 3.0, 4.5],
            "flag": [True, False, True, False],
        }
    )


class TestConstruction:
    def test_schema_kinds(self):
        t = make_table()
        assert t.schema() == {
            "id": "int", "name": "str", "score": "float", "flag": "bool"
        }

    def test_num_rows_and_columns(self):
        t = make_table()
        assert t.num_rows == 4
        assert t.num_columns == 4
        assert len(t) == 4

    def test_empty_table(self):
        t = Table({})
        assert t.num_rows == 0
        assert t.column_names == []

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError, match="length"):
            Table({"a": [1, 2], "b": [1]})

    def test_bad_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Table({"": [1, 2]})

    def test_from_rows(self):
        t = Table.from_rows([{"x": 1, "y": "p"}, {"x": 2, "y": "q"}])
        assert t.num_rows == 2
        assert list(t["x"]) == [1, 2]

    def test_from_rows_missing_key_rejected(self):
        with pytest.raises(SchemaError, match="missing column"):
            Table.from_rows([{"x": 1}, {"y": 2}])

    def test_from_rows_empty(self):
        assert Table.from_rows([]).num_rows == 0

    def test_empty_with_schema(self):
        t = Table.empty({"a": "int", "b": "str"})
        assert t.num_rows == 0
        assert t.schema() == {"a": "int", "b": "str"}

    def test_empty_with_bad_kind(self):
        with pytest.raises(SchemaError, match="unknown column kind"):
            Table.empty({"a": "complex"})

    def test_constructor_copies_by_default(self):
        source = np.array([1, 2, 3], dtype=np.int64)
        t = Table({"a": source})
        source[0] = 99
        assert t["a"][0] == 1

    def test_mixed_int_float_promotes(self):
        t = Table({"a": [1, 2.5]})
        assert t.schema()["a"] == "float"

    def test_none_among_numbers_becomes_nan(self):
        t = Table({"a": [1, None, 3]})
        assert np.isnan(t["a"][1])


class TestAccess:
    def test_getitem_unknown_column(self):
        with pytest.raises(SchemaError, match="no column"):
            make_table()["nope"]

    def test_contains(self):
        t = make_table()
        assert "id" in t and "nope" not in t

    def test_row(self):
        assert make_table().row(1) == {
            "id": 2, "name": "b", "score": 2.5, "flag": False
        }

    def test_row_negative_index(self):
        assert make_table().row(-1)["id"] == 4

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make_table().row(10)

    def test_to_rows_round_trip(self):
        t = make_table()
        assert Table.from_rows(t.to_rows()) == t

    def test_repr_mentions_columns(self):
        assert "score:float" in repr(make_table())


class TestOperations:
    def test_select_order(self):
        t = make_table().select(["score", "id"])
        assert t.column_names == ["score", "id"]

    def test_select_unknown(self):
        with pytest.raises(SchemaError):
            make_table().select(["nope"])

    def test_drop(self):
        t = make_table().drop(["flag", "name"])
        assert t.column_names == ["id", "score"]

    def test_drop_unknown(self):
        with pytest.raises(SchemaError):
            make_table().drop(["nope"])

    def test_rename(self):
        t = make_table().rename({"id": "key"})
        assert "key" in t and "id" not in t

    def test_rename_collision_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            make_table().rename({"id": "name"})

    def test_with_column_adds(self):
        t = make_table().with_column("double", [2, 4, 6, 8])
        assert list(t["double"]) == [2, 4, 6, 8]

    def test_with_column_replaces(self):
        t = make_table().with_column("id", [9, 8, 7, 6])
        assert list(t["id"]) == [9, 8, 7, 6]

    def test_with_column_wrong_length(self):
        with pytest.raises(SchemaError):
            make_table().with_column("x", [1])

    def test_filter_mask(self):
        t = make_table().filter(np.array([True, False, True, False]))
        assert list(t["id"]) == [1, 3]

    def test_filter_callable(self):
        t = make_table().filter(lambda t: t["score"] > 2.0)
        assert list(t["id"]) == [2, 3, 4]

    def test_filter_bad_mask(self):
        with pytest.raises(SchemaError):
            make_table().filter(np.array([1, 0, 1, 0]))

    def test_take_reorders_and_duplicates(self):
        t = make_table().take([3, 0, 0])
        assert list(t["id"]) == [4, 1, 1]

    def test_head(self):
        assert make_table().head(2).num_rows == 2
        assert make_table().head(100).num_rows == 4

    def test_sort_by_single(self):
        t = make_table().sort_by("score", descending=True)
        assert list(t["id"]) == [4, 3, 2, 1]

    def test_sort_by_multiple_primary_first(self):
        t = Table({"a": [2, 1, 2, 1], "b": [1, 2, 0, 1]})
        s = t.sort_by(["a", "b"])
        assert list(zip(s["a"], s["b"])) == [(1, 1), (1, 2), (2, 0), (2, 1)]

    def test_sort_by_string_column(self):
        t = make_table().sort_by("name")
        assert list(t["name"]) == ["a", "a", "b", "c"]

    def test_distinct_full_rows(self):
        t = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert t.distinct().num_rows == 2

    def test_distinct_subset_keeps_first(self):
        t = make_table().distinct(["name"])
        assert list(t["id"]) == [1, 2, 4]

    def test_map_rows(self):
        t = make_table().map_rows(lambda r: r["id"] * 10, name="tens")
        assert list(t["tens"]) == [10, 20, 30, 40]


class TestEquality:
    def test_equal_tables(self):
        assert make_table() == make_table()

    def test_different_values(self):
        other = make_table().with_column("id", [1, 2, 3, 5])
        assert make_table() != other

    def test_nan_equal(self):
        a = Table({"x": [1.0, float("nan")]})
        b = Table({"x": [1.0, float("nan")]})
        assert a == b


class TestConcat:
    def test_concat_two(self):
        t = make_table()
        c = concat_tables([t, t])
        assert c.num_rows == 8

    def test_concat_schema_mismatch(self):
        with pytest.raises(SchemaError):
            concat_tables([make_table(), make_table().drop(["flag"])])

    def test_concat_empty_list(self):
        assert concat_tables([]).num_rows == 0

    def test_concat_preserves_object_dtype(self):
        c = concat_tables([make_table(), make_table()])
        assert c["name"].dtype == object
