"""Welch t-test verified against scipy plus property-based checks."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import welch_t_test
from repro.stats.ttest import (
    regularized_incomplete_beta,
    student_t_sf,
)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scipy_random_samples(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(rng.uniform(-2, 2), rng.uniform(0.5, 3), size=rng.integers(5, 200))
        b = rng.normal(rng.uniform(-2, 2), rng.uniform(0.5, 3), size=rng.integers(5, 200))
        mine = welch_t_test(a, b)
        ref = scipy.stats.ttest_ind(a, b, equal_var=False)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-10)
        assert mine.p_value == pytest.approx(ref.pvalue, rel=1e-8)

    def test_identical_samples_not_significant(self):
        a = np.arange(50, dtype=float)
        result = welch_t_test(a, a)
        assert result.p_value > 0.99
        assert not result.significant()

    def test_obviously_different_samples_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 200)
        b = rng.normal(5, 1, 200)
        assert welch_t_test(a, b).significant()

    def test_nan_handling(self):
        a = [1.0, 2.0, float("nan"), 3.0]
        b = [4.0, 5.0, 6.0]
        result = welch_t_test(a, b)
        ref = scipy.stats.ttest_ind([1, 2, 3], [4, 5, 6], equal_var=False)
        assert result.statistic == pytest.approx(ref.statistic)

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_zero_variance_equal_means(self):
        result = welch_t_test([2.0, 2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0

    def test_zero_variance_different_means(self):
        result = welch_t_test([2.0, 2.0, 2.0], [3.0, 3.0])
        assert result.p_value == 0.0


class TestSpecialFunctions:
    @pytest.mark.parametrize("a,b,x", [
        (0.5, 0.5, 0.3), (2.0, 3.0, 0.7), (10.0, 0.5, 0.99), (1.0, 1.0, 0.5),
    ])
    def test_incomplete_beta_vs_scipy(self, a, b, x):
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            scipy.stats.beta.cdf(x, a, b), rel=1e-10
        )

    def test_incomplete_beta_bounds(self):
        assert regularized_incomplete_beta(2, 2, 0.0) == 0.0
        assert regularized_incomplete_beta(2, 2, 1.0) == 1.0
        with pytest.raises(ValueError):
            regularized_incomplete_beta(2, 2, 1.5)

    @pytest.mark.parametrize("t,dof", [
        (0.0, 5), (1.5, 3), (-2.0, 10), (4.0, 1), (0.3, 100),
    ])
    def test_t_sf_vs_scipy(self, t, dof):
        assert student_t_sf(t, dof) == pytest.approx(
            scipy.stats.t.sf(t, dof), rel=1e-9
        )

    def test_t_sf_bad_dof(self):
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0)


@given(
    st.lists(st.floats(-100, 100), min_size=3, max_size=50),
    st.lists(st.floats(-100, 100), min_size=3, max_size=50),
)
@settings(max_examples=50, deadline=None)
def test_properties_hold(a, b):
    a, b = np.asarray(a), np.asarray(b)
    result = welch_t_test(a, b)
    # p-value is a probability.
    assert 0.0 <= result.p_value <= 1.0
    # Symmetry: swapping samples flips the statistic, keeps the p-value.
    swapped = welch_t_test(b, a)
    assert swapped.p_value == pytest.approx(result.p_value, abs=1e-12)
    assert swapped.statistic == pytest.approx(-result.statistic, abs=1e-9)
