"""Fault injection into the ingest path (``serve.ingest:fail|corrupt``).

Same discipline as the ``serve.request`` trio in ``test_live.py``, with
one more obligation: ingest is a *write*, so beyond surviving and
counting (``serve.ingest_failed``), a faulted request must leave every
standing aggregate **byte-identical** — the atomic accept-or-reject
contract of :meth:`repro.service.state.ServiceState.ingest`.

``corrupt`` physically truncates the uploaded body before parsing, so
what is exercised is the server's real decode/validate defenses, not a
synthetic error branch.
"""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.obs import live
from repro.service import ServiceApp, ServiceClient, split_study
from repro.service.client import ServiceError
from repro.study import build_study


@pytest.fixture(autouse=True)
def _clean_slate(tmp_path, monkeypatch):
    from repro import cache

    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    faults.configure(None)
    yield
    obs.finish()
    faults.configure(None)
    server = live.active_server()
    if server is not None:
        server.stop()


@pytest.fixture(scope="module")
def tiny_study():
    return build_study("tiny", seed=7, cache=False)


@pytest.fixture
def served(tiny_study):
    app = ServiceApp(tiny_study.config)
    server = live.serve_background(app=app)
    client = ServiceClient("127.0.0.1", server.port)
    yield app, client
    server.stop()


def _table_reads(client):
    """(status, body) for every streaming route — the identity probe."""
    out = {}
    for name in ("catalog", "instances", "batch_rollup",
                 "trust_cdf", "duration_hist"):
        status, _, body = client.get(f"/tables/{name}")
        out[name] = (status, body)
    return out


class TestIngestFaults:
    def test_fail_500s_counts_and_state_is_untouched(
        self, served, tiny_study
    ):
        app, client = served
        failed = obs.counter("serve.ingest_failed")
        payloads = split_study(tiny_study, 3, seed=1)
        client.ingest(payloads[0])
        before_reads = _table_reads(client)
        before_status = client.status()
        before_failed = failed.value

        faults.configure("serve.ingest:fail@1")
        with pytest.raises(ServiceError) as err:
            client.ingest(payloads[1])
        assert err.value.status == 500
        assert "InjectedFault" in str(err.value.doc)
        assert failed.value == before_failed + 1
        # Rejected write: versions, counts, and served bytes all frozen.
        assert client.status() == before_status
        assert _table_reads(client) == before_reads

        # The fault fired exactly once; the retry lands and serves.
        client.ingest(payloads[1])
        assert client.status()["ingested_batches"] == 2

    def test_corrupt_400s_counts_and_state_is_untouched(
        self, served, tiny_study
    ):
        app, client = served
        failed = obs.counter("serve.ingest_failed")
        payloads = split_study(tiny_study, 3, seed=2)
        client.ingest(payloads[0])
        before_reads = _table_reads(client)
        before_status = client.status()
        before_failed = failed.value

        faults.configure("serve.ingest:corrupt@1")
        with pytest.raises(ServiceError) as err:
            client.ingest(payloads[1])
        assert err.value.status == 400
        assert failed.value == before_failed + 1
        assert client.status() == before_status
        assert _table_reads(client) == before_reads

        client.ingest(payloads[1])
        client.ingest(payloads[2])
        assert client.status()["instance_rows"] == (
            tiny_study.released.instances.num_rows
        )

    def test_every_ingest_faulted_still_never_kills_server(
        self, served, tiny_study
    ):
        app, client = served
        payload = split_study(tiny_study, 1, seed=0)[0]
        faults.configure("serve.ingest:fail")
        for _ in range(3):
            with pytest.raises(ServiceError) as err:
                client.ingest(payload)
            assert err.value.status == 500
        faults.configure(None)
        client.ingest(payload)
        status, _, _ = client.get("/tables/catalog")
        assert status == 200

    def test_recovery_after_faults_is_byte_identical(
        self, served, tiny_study
    ):
        """Faults mid-stream leave the final study equal to a clean one."""
        from repro.service.app import table_body

        app, client = served
        payloads = split_study(tiny_study, 3, seed=4)
        client.ingest(payloads[0])
        faults.configure("serve.ingest:corrupt@1")
        with pytest.raises(ServiceError):
            client.ingest(payloads[1])
        faults.configure("serve.ingest:fail@1")
        with pytest.raises(ServiceError):
            client.ingest(payloads[1])
        faults.configure(None)
        client.ingest(payloads[1])
        client.ingest(payloads[2])

        status, _, body = client.get("/tables/instances")
        assert status == 200
        assert body == table_body(tiny_study.released.instances)
        status, _, body = client.get("/tables/catalog")
        assert status == 200
        assert body == table_body(tiny_study.released.batch_catalog)
